"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture
def item_files(tmp_path):
    a = tmp_path / "a.txt"
    b = tmp_path / "b.txt"
    a.write_text("\n".join(["7"] * 30 + [str(i) for i in range(20)]))
    b.write_text("\n".join(["7"] * 20 + [str(i) for i in range(20, 40)]))
    return a, b


class TestBuild:
    def test_build_misra_gries(self, item_files, tmp_path, capsys):
        a, _ = item_files
        out = tmp_path / "s.json"
        assert main(["build", "--type", "misra_gries", "--arg", "k=8",
                     "--input", str(a), "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["type"] == "misra_gries"
        assert "n=50" in capsys.readouterr().out

    def test_build_unknown_type_fails(self, item_files, tmp_path, capsys):
        a, _ = item_files
        assert main(["build", "--type", "nope", "--input", str(a),
                     "--out", str(tmp_path / "x.json")]) == 1
        assert "unknown summary name" in capsys.readouterr().err

    def test_build_quantile_summary_with_float_items(self, tmp_path):
        data = tmp_path / "vals.txt"
        data.write_text("\n".join(str(i / 10) for i in range(100)))
        out = tmp_path / "q.json"
        assert main(["build", "--type", "mergeable_quantiles", "--arg", "s=16",
                     "--input", str(data), "--out", str(out)]) == 0

    def test_bad_arg_format_exits(self, item_files, tmp_path):
        a, _ = item_files
        with pytest.raises(SystemExit):
            main(["build", "--type", "misra_gries", "--arg", "k:8",
                  "--input", str(a), "--out", str(tmp_path / "x.json")])

    def test_missing_input_file(self, tmp_path, capsys):
        assert main(["build", "--type", "misra_gries", "--arg", "k=8",
                     "--input", str(tmp_path / "nothere.txt"),
                     "--out", str(tmp_path / "x.json")]) == 1

    def test_build_with_weights(self, tmp_path, capsys):
        data = tmp_path / "items.txt"
        wfile = tmp_path / "weights.txt"
        data.write_text("7\n8\n9\n")
        wfile.write_text("10\n20\n30\n")
        out = tmp_path / "w.json"
        assert main(["build", "--type", "exact_counter",
                     "--input", str(data), "--weights", str(wfile),
                     "--out", str(out)]) == 0
        assert "n=60" in capsys.readouterr().out
        assert main(["query", str(out), "--estimate", "8"]) == 0
        assert capsys.readouterr().out.strip() == "20"

    def test_build_weights_length_mismatch_exits(self, tmp_path):
        data = tmp_path / "items.txt"
        wfile = tmp_path / "weights.txt"
        data.write_text("7\n8\n9\n")
        wfile.write_text("10\n20\n")
        with pytest.raises(SystemExit):
            main(["build", "--type", "exact_counter",
                  "--input", str(data), "--weights", str(wfile),
                  "--out", str(tmp_path / "x.json")])

    def test_build_non_integer_weights_exits(self, tmp_path):
        data = tmp_path / "items.txt"
        wfile = tmp_path / "weights.txt"
        data.write_text("7\n")
        wfile.write_text("1.5\n")
        with pytest.raises(SystemExit):
            main(["build", "--type", "exact_counter",
                  "--input", str(data), "--weights", str(wfile),
                  "--out", str(tmp_path / "x.json")])


class TestMergeAndQuery:
    def _build_two(self, item_files, tmp_path):
        a, b = item_files
        s1, s2 = tmp_path / "s1.json", tmp_path / "s2.json"
        for src, dst in ((a, s1), (b, s2)):
            assert main(["build", "--type", "misra_gries", "--arg", "k=8",
                         "--input", str(src), "--out", str(dst)]) == 0
        return s1, s2

    def test_merge_and_heavy_hitters(self, item_files, tmp_path, capsys):
        s1, s2 = self._build_two(item_files, tmp_path)
        merged = tmp_path / "m.json"
        assert main(["merge", str(s1), str(s2), "--out", str(merged)]) == 0
        capsys.readouterr()
        assert main(["query", str(merged), "--heavy-hitters", "0.2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("7\t")  # item 7 holds 50/100 of the stream

    def test_merge_incompatible_fails(self, item_files, tmp_path, capsys):
        a, _ = item_files
        s1, s2 = tmp_path / "s1.json", tmp_path / "s2.json"
        main(["build", "--type", "misra_gries", "--arg", "k=8",
              "--input", str(a), "--out", str(s1)])
        main(["build", "--type", "misra_gries", "--arg", "k=16",
              "--input", str(a), "--out", str(s2)])
        assert main(["merge", str(s1), str(s2), "--out",
                     str(tmp_path / "m.json")]) == 1
        assert "k mismatch" in capsys.readouterr().err

    def test_query_estimate(self, item_files, tmp_path, capsys):
        s1, _ = self._build_two(item_files, tmp_path)
        capsys.readouterr()
        assert main(["query", str(s1), "--estimate", "7"]) == 0
        assert int(capsys.readouterr().out.strip()) >= 25

    def test_query_quantile_on_quantile_summary(self, tmp_path, capsys):
        data = tmp_path / "vals.txt"
        data.write_text("\n".join(str(i) for i in range(1000)))
        out = tmp_path / "q.json"
        main(["build", "--type", "exact_quantiles", "--input", str(data),
              "--out", str(out)])
        capsys.readouterr()
        assert main(["query", str(out), "--quantile", "0.5"]) == 0
        assert float(capsys.readouterr().out.strip()) == 499.0

    def test_query_distinct_on_kmv(self, item_files, tmp_path, capsys):
        a, _ = item_files
        out = tmp_path / "kmv.json"
        main(["build", "--type", "k_min_values", "--arg", "k=32",
              "--input", str(a), "--out", str(out)])
        capsys.readouterr()
        assert main(["query", str(out), "--distinct"]) == 0
        # file `a` holds {0..19} (7 is among them): 20 distinct items,
        # counted exactly because k=32 exceeds the cardinality
        assert float(capsys.readouterr().out.strip()) == 20.0

    def test_query_without_selector_exits(self, item_files, tmp_path):
        s1, _ = self._build_two(item_files, tmp_path)
        with pytest.raises(SystemExit):
            main(["query", str(s1)])

    def test_query_unsupported_operation(self, item_files, tmp_path, capsys):
        s1, _ = self._build_two(item_files, tmp_path)
        assert main(["query", str(s1), "--quantile", "0.5"]) == 1
        assert "unsupported" in capsys.readouterr().err


class TestSimulate:
    @pytest.fixture
    def stream_file(self, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("\n".join(str(i % 37) for i in range(2000)))
        return path

    def test_simulate_clean_run(self, stream_file, tmp_path, capsys):
        out = tmp_path / "root.json"
        assert main(["simulate", "--type", "misra_gries", "--arg", "k=64",
                     "--input", str(stream_file), "--nodes", "8",
                     "--seed", "1", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "n=2000" in text
        assert "coverage: 100.00%" in text
        payload = json.loads(out.read_text())
        assert payload["type"] == "misra_gries"

    def test_simulate_with_faults_reports_coverage(self, stream_file, capsys):
        assert main(["simulate", "--type", "misra_gries", "--arg", "k=32",
                     "--input", str(stream_file), "--nodes", "8",
                     "--loss", "0.2", "--crash", "0.1", "--duplicate", "0.2",
                     "--corruption", "0.05", "--seed", "7"]) == 0
        text = capsys.readouterr().out
        assert "coverage:" in text
        assert "faults:" in text
        assert "duplicates=" in text

    def test_simulate_invalid_probability_fails(self, stream_file, capsys):
        assert main(["simulate", "--type", "misra_gries", "--arg", "k=8",
                     "--input", str(stream_file), "--loss", "1.5"]) == 1
        assert "loss" in capsys.readouterr().err

    def test_simulate_more_nodes_than_records_fails(self, tmp_path, capsys):
        small = tmp_path / "small.txt"
        small.write_text("1\n2\n3\n")
        assert main(["simulate", "--type", "misra_gries", "--arg", "k=8",
                     "--input", str(small), "--nodes", "16"]) == 1
        assert "error" in capsys.readouterr().err


class TestStore:
    @pytest.fixture
    def keyed_stream(self, tmp_path):
        items = tmp_path / "items.txt"
        keys = tmp_path / "keys.txt"
        values = [i % 11 for i in range(640)]
        items.write_text("\n".join(str(v) for v in values))
        keys.write_text("\n".join(str(i // 10) for i in range(640)))
        return items, keys, values

    def _ingest(self, tmp_path, items, keys):
        return main(["store", "ingest", "--dir", str(tmp_path / "st"),
                     "--type", "misra_gries", "--arg", "k=16",
                     "--width", "1", "--input", str(items),
                     "--keys", str(keys), "--codec", "binary.v1"])

    def test_ingest_compact_query(self, keyed_stream, tmp_path, capsys):
        items, keys, values = keyed_stream
        assert self._ingest(tmp_path, items, keys) == 0
        assert "ingested 640 records" in capsys.readouterr().out
        assert main(["store", "compact", "--dir", str(tmp_path / "st")]) == 0
        assert "roll-ups" in capsys.readouterr().out
        assert main(["store", "query", "--dir", str(tmp_path / "st"),
                     "--lo", "0", "--hi", "64", "--estimate", "3",
                     "--explain"]) == 0
        out = capsys.readouterr().out
        assert "fan_in=1" in out  # full span collapses to one roll-up
        assert out.strip().endswith(str(values.count(3)))

    def test_query_range_and_no_rollups_agree(self, keyed_stream, tmp_path, capsys):
        items, keys, values = keyed_stream
        self._ingest(tmp_path, items, keys)
        main(["store", "compact", "--dir", str(tmp_path / "st")])
        capsys.readouterr()
        answers = []
        for extra in ([], ["--no-rollups"]):
            assert main(["store", "query", "--dir", str(tmp_path / "st"),
                         "--lo", "5", "--hi", "61", "--estimate", "3",
                         *extra]) == 0
            answers.append(capsys.readouterr().out.strip())
        assert answers[0] == answers[1]
        assert int(answers[0]) == sum(
            1 for i, v in enumerate(values) if v == 3 and 50 <= i < 610
        )

    def test_second_ingest_appends(self, keyed_stream, tmp_path, capsys):
        items, keys, _ = keyed_stream
        self._ingest(tmp_path, items, keys)
        # re-ingest into existing store: --type no longer needed
        assert main(["store", "ingest", "--dir", str(tmp_path / "st"),
                     "--input", str(items), "--keys", str(keys)]) == 0
        capsys.readouterr()
        assert main(["store", "stats", "--dir", str(tmp_path / "st")]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["records"] == 1280
        assert stats["members"]["value"]["type"] == "misra_gries"

    def test_new_store_without_type_exits(self, keyed_stream, tmp_path):
        items, keys, _ = keyed_stream
        with pytest.raises(SystemExit, match="--type"):
            main(["store", "ingest", "--dir", str(tmp_path / "st"),
                  "--input", str(items), "--keys", str(keys)])

    def test_key_length_mismatch_exits(self, keyed_stream, tmp_path):
        items, _, _ = keyed_stream
        short = tmp_path / "short.txt"
        short.write_text("1\n2\n")
        with pytest.raises(SystemExit, match="--keys"):
            main(["store", "ingest", "--dir", str(tmp_path / "st"),
                  "--type", "exact_counter", "--input", str(items),
                  "--keys", str(short)])

    def test_query_missing_store_fails(self, tmp_path, capsys):
        assert main(["store", "query", "--dir", str(tmp_path / "nowhere"),
                     "--lo", "0", "--hi", "1", "--distinct"]) == 1
        assert "error" in capsys.readouterr().err

    def test_query_without_selector_exits(self, keyed_stream, tmp_path):
        items, keys, _ = keyed_stream
        self._ingest(tmp_path, items, keys)
        with pytest.raises(SystemExit):
            main(["store", "query", "--dir", str(tmp_path / "st"),
                  "--lo", "0", "--hi", "64"])


class TestStoreDurability:
    @pytest.fixture
    def small_store(self, tmp_path):
        items = tmp_path / "items.txt"
        keys = tmp_path / "keys.txt"
        items.write_text("\n".join(str(i % 5) for i in range(40)))
        keys.write_text("\n".join(str(i // 10) for i in range(40)))
        target = tmp_path / "st"
        assert main(["store", "ingest", "--dir", str(target),
                     "--type", "misra_gries", "--arg", "k=8",
                     "--width", "1", "--input", str(items),
                     "--keys", str(keys)]) == 0
        return target, items, keys

    def test_ingest_with_wal_logs_and_retires(self, small_store, capsys):
        target, items, keys = small_store
        capsys.readouterr()
        assert main(["store", "ingest", "--dir", str(target), "--wal",
                     "--input", str(items), "--keys", str(keys)]) == 0
        out = capsys.readouterr().out
        assert "wal seq 1" in out
        assert "retired 1 file(s)" in out  # save covered the batch
        assert not list((target / "wal").glob("*.log"))

    def test_wal_batch_survives_a_kill_before_save(self, small_store, capsys):
        target, items, keys = small_store
        from repro.store import SegmentStore

        # a process that logged an ingest but died before save
        store = SegmentStore.open_durable(target)
        store.ingest([{"value": 3}] * 4, [9.0, 9.1, 9.2, 9.3])
        del store  # no save
        capsys.readouterr()
        assert main(["store", "stats", "--dir", str(target)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["records"] == 44  # replayed from the WAL

    def test_verify_clean_and_damaged(self, small_store, capsys):
        target, _items, _keys = small_store
        capsys.readouterr()
        assert main(["store", "verify", "--dir", str(target)]) == 0
        assert capsys.readouterr().out.startswith("ok:")
        victim = sorted((target / "segments").iterdir())[0]
        victim.write_bytes(victim.read_bytes()[:10])
        assert main(["store", "verify", "--dir", str(target)]) == 1
        out = capsys.readouterr().out
        assert "NOT ok" in out and "corrupt segment" in out
        assert main(["store", "verify", "--dir", str(target),
                     "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert len(report["segments"]["corrupt"]) == 1

    def test_recover_quarantines_torn_wal(self, small_store, capsys):
        target, _items, _keys = small_store
        from repro.store import SegmentStore

        store = SegmentStore.open_durable(target)
        store.ingest([{"value": 1}], [20.0])
        store.ingest([{"value": 2}], [21.0])
        wal_path = store.wal.path
        blob = open(wal_path, "rb").read()
        with open(wal_path, "wb") as handle:
            handle.write(blob[:-3])  # tear the last frame
        capsys.readouterr()
        # strict open refuses and points at recover
        assert main(["store", "stats", "--dir", str(target)]) == 1
        assert "recover" in capsys.readouterr().err
        assert main(["store", "recover", "--dir", str(target)]) == 0
        out = capsys.readouterr().out
        assert "replayed 1 WAL batch(es)" in out
        assert "quarantined WAL" in out
        assert list((target / "quarantine").glob("wal-*.log"))
        assert list((target / "quarantine").glob("recovery-*.json"))
        # idempotent: a second recovery is clean, and the store serves
        assert main(["store", "recover", "--dir", str(target)]) == 0
        assert "clean" in capsys.readouterr().out
        assert main(["store", "stats", "--dir", str(target)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["records"] == 41  # 40 + first batch; torn one lost

    def test_recover_json_report(self, small_store, capsys):
        target, _items, _keys = small_store
        capsys.readouterr()
        assert main(["store", "recover", "--dir", str(target),
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is True
        assert report["path"] == str(target)


class TestCubeCli:
    """recover/verify/stats are kind-generic: the CLI sniffs the kind
    from the manifest, so the same subcommands serve cube directories."""

    @pytest.fixture
    def small_cube(self, tmp_path):
        records = tmp_path / "records.jsonl"
        records.write_text(
            "\n".join(
                json.dumps(
                    {
                        "value": i % 5,
                        "region": ("eu", "us")[i % 2],
                    }
                )
                for i in range(40)
            )
        )
        keys = tmp_path / "keys.txt"
        keys.write_text("\n".join(str(i // 10) for i in range(40)))
        target = tmp_path / "cube"
        assert main(["store", "ingest", "--dir", str(target),
                     "--dims", "region", "--type", "misra_gries",
                     "--arg", "k=8", "--width", "1",
                     "--input", str(records), "--keys", str(keys)]) == 0
        return target, records, keys

    def test_ingest_reports_cells(self, small_cube, capsys):
        target, records, keys = small_cube
        capsys.readouterr()
        assert main(["store", "ingest", "--dir", str(target),
                     "--input", str(records), "--keys", str(keys)]) == 0
        out = capsys.readouterr().out
        assert "ingested 40 records" in out
        assert "cells" in out  # the cube's unit, same report shape

    def test_stats_schema_matches_flat_store(self, small_cube, tmp_path, capsys):
        target, _records, _keys = small_cube
        items = tmp_path / "items.txt"
        items.write_text("\n".join(str(i % 5) for i in range(10)))
        flat = tmp_path / "flat"
        assert main(["store", "ingest", "--dir", str(flat),
                     "--type", "misra_gries", "--arg", "k=8",
                     "--width", "1", "--input", str(items)]) == 0
        capsys.readouterr()
        assert main(["store", "stats", "--dir", str(target)]) == 0
        cube_stats = json.loads(capsys.readouterr().out)
        assert main(["store", "stats", "--dir", str(flat)]) == 0
        flat_stats = json.loads(capsys.readouterr().out)
        assert cube_stats["kind"] == "cube"
        assert flat_stats["kind"] == "store"
        # one schema: both kinds report the same shared keys, and the
        # planner/view-cache sub-schemas are identical
        shared = set(flat_stats) & set(cube_stats)
        assert {"kind", "width", "codec", "members", "records",
                "generation", "key_span", "view_cache",
                "planner"} <= shared
        assert set(cube_stats["planner"]) == set(flat_stats["planner"])
        assert set(cube_stats["view_cache"]) == set(flat_stats["view_cache"])
        assert cube_stats["records"] == 40

    def test_verify_clean_and_damaged(self, small_cube, capsys):
        target, _records, _keys = small_cube
        capsys.readouterr()
        assert main(["store", "verify", "--dir", str(target)]) == 0
        assert capsys.readouterr().out.startswith("ok:")
        victim = sorted((target / "cells").iterdir())[0]
        victim.write_bytes(victim.read_bytes()[:10])
        assert main(["store", "verify", "--dir", str(target)]) == 1
        out = capsys.readouterr().out
        assert "NOT ok" in out and "corrupt segment" in out

    def test_recover_replays_cube_wal(self, small_cube, capsys):
        target, records, keys = small_cube
        capsys.readouterr()
        assert main(["store", "ingest", "--dir", str(target), "--wal",
                     "--input", str(records), "--keys", str(keys)]) == 0
        out = capsys.readouterr().out
        assert "wal seq 1" in out
        assert "retired 1 file(s)" in out
        from repro.store import CubeStore

        # a process that logged an ingest but died before save
        cube = CubeStore.open_durable(target)
        cube.ingest([{"value": 3, "region": "eu"}] * 4,
                    [9.0, 9.1, 9.2, 9.3])
        del cube  # no save
        assert main(["store", "recover", "--dir", str(target)]) == 0
        out = capsys.readouterr().out
        assert "replayed 1 WAL batch(es)" in out
        assert main(["store", "stats", "--dir", str(target)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["records"] == 84  # 40 + 40 + the replayed 4


class TestInspectAndTypes:
    def test_inspect(self, item_files, tmp_path, capsys):
        a, _ = item_files
        out = tmp_path / "s.json"
        main(["build", "--type", "misra_gries", "--arg", "k=8",
              "--input", str(a), "--out", str(out)])
        capsys.readouterr()
        assert main(["inspect", str(out)]) == 0
        text = capsys.readouterr().out
        assert "type: misra_gries" in text
        assert "k: 8" in text

    def test_types_lists_registry(self, capsys):
        assert main(["types"]) == 0
        out = capsys.readouterr().out
        assert "misra_gries" in out
        assert "hyperloglog" in out


class TestWindowedCli:
    """The sliding-window surface: build --window/--eps, types --kind,
    plan --windowed, store query --window/--window-eps."""

    def test_build_windowed(self, item_files, tmp_path, capsys):
        a, _ = item_files
        out = tmp_path / "w.json"
        assert main(["build", "--type", "misra_gries", "--arg", "k=8",
                     "--window", "40", "--eps", "0.25",
                     "--input", str(a), "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["type"] == "windowed.misra_gries"
        text = capsys.readouterr().out
        assert "built windowed.misra_gries" in text
        # the window retains roughly the trailing 40 of 50 items
        assert "n=4" in text

    def test_build_eps_alone_windows_without_expiry(
        self, item_files, tmp_path, capsys
    ):
        a, _ = item_files
        out = tmp_path / "w.json"
        assert main(["build", "--type", "exact_counter", "--eps", "0.5",
                     "--input", str(a), "--out", str(out)]) == 0
        assert "built windowed.exact_counter: n=50" in capsys.readouterr().out

    def test_windowed_summary_round_trips_through_inspect(
        self, item_files, tmp_path, capsys
    ):
        a, _ = item_files
        out = tmp_path / "w.json"
        main(["build", "--type", "misra_gries", "--arg", "k=8",
              "--window", "40", "--input", str(a), "--out", str(out)])
        capsys.readouterr()
        assert main(["inspect", str(out)]) == 0
        assert "type: windowed.misra_gries" in capsys.readouterr().out

    def test_query_answers_from_the_window_view(
        self, item_files, tmp_path, capsys
    ):
        # items: 30x "7" then 0..19; a 20-item window covers the tail,
        # so 7 must NOT dominate the windowed answer
        a, _ = item_files
        out = tmp_path / "w.json"
        main(["build", "--type", "exact_counter", "--window", "20",
              "--granularity", "5", "--input", str(a), "--out", str(out)])
        capsys.readouterr()
        assert main(["query", str(out), "--estimate", "7"]) == 0
        windowed_sevens = int(capsys.readouterr().out.strip())
        assert windowed_sevens < 30
        # an explicit narrower --window narrows further
        assert main(["query", str(out), "--window", "5",
                     "--estimate", "7"]) == 0
        assert int(capsys.readouterr().out.strip()) <= windowed_sevens

    def test_query_window_flag_rejected_on_flat_summary(
        self, item_files, tmp_path, capsys
    ):
        a, _ = item_files
        out = tmp_path / "s.json"
        main(["build", "--type", "exact_counter",
              "--input", str(a), "--out", str(out)])
        capsys.readouterr()
        assert main(["query", str(out), "--window", "10",
                     "--estimate", "7"]) == 1
        assert "windowed summary" in capsys.readouterr().err

    def test_types_kind_filter(self, capsys):
        assert main(["types", "--kind", "windowed"]) == 0
        windowed = capsys.readouterr().out.split()
        assert windowed
        assert all(
            name.startswith("windowed.") or name == "windowed_misra_gries"
            for name in windowed
        )
        assert main(["types", "--kind", "base"]) == 0
        base = capsys.readouterr().out.split()
        assert "misra_gries" in base
        assert not any(name.startswith("windowed.") for name in base)
        assert main(["types"]) == 0
        assert set(capsys.readouterr().out.split()) == set(windowed) | set(base)

    def test_plan_windowed_fold(self, capsys):
        assert main(["plan", "--windowed", "--count", "4", "--waves"]) == 0
        out = capsys.readouterr().out
        assert "fold:windowed[4x" in out
        assert "groupable" in out
        assert "wave 0" in out

    @pytest.fixture
    def window_store(self, tmp_path):
        items = tmp_path / "items.txt"
        keys = tmp_path / "keys.txt"
        values = [i % 11 for i in range(640)]
        items.write_text("\n".join(str(v) for v in values))
        keys.write_text("\n".join(str(i // 10) for i in range(640)))
        assert main(["store", "ingest", "--dir", str(tmp_path / "st"),
                     "--type", "exact_counter", "--width", "1",
                     "--input", str(items), "--keys", str(keys)]) == 0
        assert main(["store", "compact", "--dir", str(tmp_path / "st")]) == 0
        return tmp_path / "st", values

    def test_store_window_query_equals_explicit_range(
        self, window_store, capsys
    ):
        store_dir, values = window_store
        capsys.readouterr()
        answers = []
        for flags in (["--window", "16"], ["--lo", "48", "--hi", "64"]):
            assert main(["store", "query", "--dir", str(store_dir),
                         *flags, "--estimate", "3"]) == 0
            answers.append(capsys.readouterr().out.strip())
        assert answers[0] == answers[1]
        assert int(answers[0]) == sum(
            1 for i, v in enumerate(values) if v == 3 and i >= 480
        )

    def test_store_window_eps_absorbs_rollup(self, window_store, capsys):
        store_dir, _ = window_store
        capsys.readouterr()
        assert main(["store", "query", "--dir", str(store_dir),
                     "--window", "48", "--window-eps", "0.5",
                     "--estimate", "3", "--explain"]) == 0
        relaxed = capsys.readouterr().out
        assert main(["store", "query", "--dir", str(store_dir),
                     "--window", "48", "--estimate", "3", "--explain"]) == 0
        exact = capsys.readouterr().out
        # the relaxed plan serves the whole-store roll-up: one segment
        assert "fan_in=1" in relaxed
        assert "fan_in=1" not in exact

    def test_store_window_and_range_mutually_exclusive(
        self, window_store, capsys
    ):
        store_dir, _ = window_store
        assert main(["store", "query", "--dir", str(store_dir),
                     "--lo", "0", "--window", "8", "--estimate", "3"]) == 1
        assert "not both" in capsys.readouterr().err

    def test_store_window_validation(self, window_store, capsys):
        store_dir, _ = window_store
        assert main(["store", "query", "--dir", str(store_dir),
                     "--window", "-4", "--estimate", "3"]) == 1
        assert "window must be positive" in capsys.readouterr().err
        assert main(["store", "query", "--dir", str(store_dir),
                     "--window", "8", "--window-eps", "3",
                     "--estimate", "3"]) == 1
        assert "eps must be in" in capsys.readouterr().err
