"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture
def item_files(tmp_path):
    a = tmp_path / "a.txt"
    b = tmp_path / "b.txt"
    a.write_text("\n".join(["7"] * 30 + [str(i) for i in range(20)]))
    b.write_text("\n".join(["7"] * 20 + [str(i) for i in range(20, 40)]))
    return a, b


class TestBuild:
    def test_build_misra_gries(self, item_files, tmp_path, capsys):
        a, _ = item_files
        out = tmp_path / "s.json"
        assert main(["build", "--type", "misra_gries", "--arg", "k=8",
                     "--input", str(a), "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["type"] == "misra_gries"
        assert "n=50" in capsys.readouterr().out

    def test_build_unknown_type_fails(self, item_files, tmp_path, capsys):
        a, _ = item_files
        assert main(["build", "--type", "nope", "--input", str(a),
                     "--out", str(tmp_path / "x.json")]) == 1
        assert "unknown summary name" in capsys.readouterr().err

    def test_build_quantile_summary_with_float_items(self, tmp_path):
        data = tmp_path / "vals.txt"
        data.write_text("\n".join(str(i / 10) for i in range(100)))
        out = tmp_path / "q.json"
        assert main(["build", "--type", "mergeable_quantiles", "--arg", "s=16",
                     "--input", str(data), "--out", str(out)]) == 0

    def test_bad_arg_format_exits(self, item_files, tmp_path):
        a, _ = item_files
        with pytest.raises(SystemExit):
            main(["build", "--type", "misra_gries", "--arg", "k:8",
                  "--input", str(a), "--out", str(tmp_path / "x.json")])

    def test_missing_input_file(self, tmp_path, capsys):
        assert main(["build", "--type", "misra_gries", "--arg", "k=8",
                     "--input", str(tmp_path / "nothere.txt"),
                     "--out", str(tmp_path / "x.json")]) == 1

    def test_build_with_weights(self, tmp_path, capsys):
        data = tmp_path / "items.txt"
        wfile = tmp_path / "weights.txt"
        data.write_text("7\n8\n9\n")
        wfile.write_text("10\n20\n30\n")
        out = tmp_path / "w.json"
        assert main(["build", "--type", "exact_counter",
                     "--input", str(data), "--weights", str(wfile),
                     "--out", str(out)]) == 0
        assert "n=60" in capsys.readouterr().out
        assert main(["query", str(out), "--estimate", "8"]) == 0
        assert capsys.readouterr().out.strip() == "20"

    def test_build_weights_length_mismatch_exits(self, tmp_path):
        data = tmp_path / "items.txt"
        wfile = tmp_path / "weights.txt"
        data.write_text("7\n8\n9\n")
        wfile.write_text("10\n20\n")
        with pytest.raises(SystemExit):
            main(["build", "--type", "exact_counter",
                  "--input", str(data), "--weights", str(wfile),
                  "--out", str(tmp_path / "x.json")])

    def test_build_non_integer_weights_exits(self, tmp_path):
        data = tmp_path / "items.txt"
        wfile = tmp_path / "weights.txt"
        data.write_text("7\n")
        wfile.write_text("1.5\n")
        with pytest.raises(SystemExit):
            main(["build", "--type", "exact_counter",
                  "--input", str(data), "--weights", str(wfile),
                  "--out", str(tmp_path / "x.json")])


class TestMergeAndQuery:
    def _build_two(self, item_files, tmp_path):
        a, b = item_files
        s1, s2 = tmp_path / "s1.json", tmp_path / "s2.json"
        for src, dst in ((a, s1), (b, s2)):
            assert main(["build", "--type", "misra_gries", "--arg", "k=8",
                         "--input", str(src), "--out", str(dst)]) == 0
        return s1, s2

    def test_merge_and_heavy_hitters(self, item_files, tmp_path, capsys):
        s1, s2 = self._build_two(item_files, tmp_path)
        merged = tmp_path / "m.json"
        assert main(["merge", str(s1), str(s2), "--out", str(merged)]) == 0
        capsys.readouterr()
        assert main(["query", str(merged), "--heavy-hitters", "0.2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("7\t")  # item 7 holds 50/100 of the stream

    def test_merge_incompatible_fails(self, item_files, tmp_path, capsys):
        a, _ = item_files
        s1, s2 = tmp_path / "s1.json", tmp_path / "s2.json"
        main(["build", "--type", "misra_gries", "--arg", "k=8",
              "--input", str(a), "--out", str(s1)])
        main(["build", "--type", "misra_gries", "--arg", "k=16",
              "--input", str(a), "--out", str(s2)])
        assert main(["merge", str(s1), str(s2), "--out",
                     str(tmp_path / "m.json")]) == 1
        assert "k mismatch" in capsys.readouterr().err

    def test_query_estimate(self, item_files, tmp_path, capsys):
        s1, _ = self._build_two(item_files, tmp_path)
        capsys.readouterr()
        assert main(["query", str(s1), "--estimate", "7"]) == 0
        assert int(capsys.readouterr().out.strip()) >= 25

    def test_query_quantile_on_quantile_summary(self, tmp_path, capsys):
        data = tmp_path / "vals.txt"
        data.write_text("\n".join(str(i) for i in range(1000)))
        out = tmp_path / "q.json"
        main(["build", "--type", "exact_quantiles", "--input", str(data),
              "--out", str(out)])
        capsys.readouterr()
        assert main(["query", str(out), "--quantile", "0.5"]) == 0
        assert float(capsys.readouterr().out.strip()) == 499.0

    def test_query_distinct_on_kmv(self, item_files, tmp_path, capsys):
        a, _ = item_files
        out = tmp_path / "kmv.json"
        main(["build", "--type", "k_min_values", "--arg", "k=32",
              "--input", str(a), "--out", str(out)])
        capsys.readouterr()
        assert main(["query", str(out), "--distinct"]) == 0
        # file `a` holds {0..19} (7 is among them): 20 distinct items,
        # counted exactly because k=32 exceeds the cardinality
        assert float(capsys.readouterr().out.strip()) == 20.0

    def test_query_without_selector_exits(self, item_files, tmp_path):
        s1, _ = self._build_two(item_files, tmp_path)
        with pytest.raises(SystemExit):
            main(["query", str(s1)])

    def test_query_unsupported_operation(self, item_files, tmp_path, capsys):
        s1, _ = self._build_two(item_files, tmp_path)
        assert main(["query", str(s1), "--quantile", "0.5"]) == 1
        assert "unsupported" in capsys.readouterr().err


class TestSimulate:
    @pytest.fixture
    def stream_file(self, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("\n".join(str(i % 37) for i in range(2000)))
        return path

    def test_simulate_clean_run(self, stream_file, tmp_path, capsys):
        out = tmp_path / "root.json"
        assert main(["simulate", "--type", "misra_gries", "--arg", "k=64",
                     "--input", str(stream_file), "--nodes", "8",
                     "--seed", "1", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "n=2000" in text
        assert "coverage: 100.00%" in text
        payload = json.loads(out.read_text())
        assert payload["type"] == "misra_gries"

    def test_simulate_with_faults_reports_coverage(self, stream_file, capsys):
        assert main(["simulate", "--type", "misra_gries", "--arg", "k=32",
                     "--input", str(stream_file), "--nodes", "8",
                     "--loss", "0.2", "--crash", "0.1", "--duplicate", "0.2",
                     "--corruption", "0.05", "--seed", "7"]) == 0
        text = capsys.readouterr().out
        assert "coverage:" in text
        assert "faults:" in text
        assert "duplicates=" in text

    def test_simulate_invalid_probability_fails(self, stream_file, capsys):
        assert main(["simulate", "--type", "misra_gries", "--arg", "k=8",
                     "--input", str(stream_file), "--loss", "1.5"]) == 1
        assert "loss" in capsys.readouterr().err

    def test_simulate_more_nodes_than_records_fails(self, tmp_path, capsys):
        small = tmp_path / "small.txt"
        small.write_text("1\n2\n3\n")
        assert main(["simulate", "--type", "misra_gries", "--arg", "k=8",
                     "--input", str(small), "--nodes", "16"]) == 1
        assert "error" in capsys.readouterr().err


class TestInspectAndTypes:
    def test_inspect(self, item_files, tmp_path, capsys):
        a, _ = item_files
        out = tmp_path / "s.json"
        main(["build", "--type", "misra_gries", "--arg", "k=8",
              "--input", str(a), "--out", str(out)])
        capsys.readouterr()
        assert main(["inspect", str(out)]) == 0
        text = capsys.readouterr().out
        assert "type: misra_gries" in text
        assert "k: 8" in text

    def test_types_lists_registry(self, capsys):
        assert main(["types"]) == 0
        out = capsys.readouterr().out
        assert "misra_gries" in out
        assert "hyperloglog" in out
