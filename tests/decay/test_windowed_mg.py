"""Unit tests for the sliding-window Misra-Gries extension."""

from __future__ import annotations

import pytest

from repro.core import MergeError, ParameterError, QueryError
from repro.decay import WindowedMisraGries

# the class under test is a deprecated alias; constructing it warns by
# design (tests/windows/test_windowed.py pins the warning itself)
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _build(events, **kwargs):
    summary = WindowedMisraGries(**kwargs)
    for item, t in events:
        summary.observe(item, t)
    return summary


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            WindowedMisraGries(0, 1.0, 4)
        with pytest.raises(ParameterError):
            WindowedMisraGries(4, 0.0, 4)
        with pytest.raises(ParameterError):
            WindowedMisraGries(4, 1.0, 0)


class TestBucketing:
    def test_events_land_in_buckets(self):
        w = _build([("a", 0.5), ("b", 1.5), ("c", 2.5)], k=4,
                   bucket_width=1.0, num_buckets=10)
        assert w.live_buckets() == {0: 1, 1: 1, 2: 1}

    def test_expired_buckets_evicted(self):
        w = WindowedMisraGries(4, bucket_width=1.0, num_buckets=3)
        for t in range(10):
            w.observe("x", float(t))
        assert min(w.live_buckets()) == 7
        assert w.n == 3  # only the retained buckets count

    def test_space_bounded(self):
        w = WindowedMisraGries(4, bucket_width=1.0, num_buckets=5)
        for t in range(1000):
            w.observe(t, float(t % 100))
        assert w.size() <= 5 * 4

    def test_update_without_timestamp_uses_latest_bucket(self):
        w = _build([("a", 5.0)], k=4, bucket_width=1.0, num_buckets=10)
        w.update("b")
        assert w.live_buckets()[5] == 2


class TestQueries:
    def test_window_covers_only_recent_items(self):
        events = [("cold", float(t)) for t in range(60)] + [
            ("hot", float(t)) for t in range(60, 100)
        ]
        w = _build(events, k=8, bucket_width=10.0, num_buckets=10)
        result = w.query(window_end=99.0, window_length=30.0)
        assert result.estimate("hot") >= 30
        assert result.estimate("cold") == 0

    def test_window_rounded_outward_to_buckets(self):
        w = _build([("a", 5.0), ("b", 15.0)], k=4, bucket_width=10.0,
                   num_buckets=10)
        result = w.query(window_end=19.0, window_length=5.0)
        assert result.window_start == 10.0
        assert result.window_end == 20.0
        assert result.buckets_covered == 1

    def test_heavy_hitters_guarantee_over_window(self):
        events = []
        for t in range(1000):
            events.append((0 if t % 2 else t + 100, float(t) / 10))
        w = _build(events, k=16, bucket_width=10.0, num_buckets=10)
        result = w.query(window_end=99.9, window_length=100.0)
        assert 0 in result.heavy_hitters(0.3)
        assert result.error_bound == result.n / 17

    def test_query_beyond_horizon_raises(self):
        w = WindowedMisraGries(4, bucket_width=1.0, num_buckets=3)
        for t in range(10):
            w.observe("x", float(t))
        with pytest.raises(QueryError, match="horizon"):
            w.query(window_end=9.0, window_length=8.0)

    def test_query_empty_raises(self):
        with pytest.raises(QueryError):
            WindowedMisraGries(4, 1.0, 4).query(1.0, 1.0)

    def test_invalid_window_length(self):
        w = _build([("a", 0.0)], k=4, bucket_width=1.0, num_buckets=4)
        with pytest.raises(ParameterError):
            w.query(0.0, 0.0)


class TestMerge:
    def test_merge_aligns_absolute_buckets(self):
        a = _build([("x", 5.0)], k=4, bucket_width=10.0, num_buckets=10)
        b = _build([("y", 5.0), ("z", 25.0)], k=4, bucket_width=10.0,
                   num_buckets=10)
        a.merge(b)
        assert a.live_buckets() == {0: 2, 2: 1}
        result = a.query(window_end=9.0, window_length=10.0)
        assert result.estimate("x") == 1
        assert result.estimate("y") == 1

    def test_merge_does_not_mutate_other(self):
        a = _build([("x", 0.0)], k=4, bucket_width=1.0, num_buckets=4)
        b = _build([("y", 0.0)], k=4, bucket_width=1.0, num_buckets=4)
        a.merge(b)
        assert b.n == 1
        assert b.live_buckets() == {0: 1}

    def test_merge_evicts_against_joint_horizon(self):
        a = _build([("old", 0.0)], k=4, bucket_width=1.0, num_buckets=3)
        b = _build([("new", 10.0)], k=4, bucket_width=1.0, num_buckets=3)
        a.merge(b)
        assert 0 not in a.live_buckets()
        assert a.n == 1

    def test_geometry_mismatch_refused(self):
        with pytest.raises(MergeError, match="geometry"):
            WindowedMisraGries(4, 1.0, 4).merge(WindowedMisraGries(4, 2.0, 4))

    def test_serialization_roundtrip(self):
        from repro.core import dumps, loads

        w = _build([("a", 1.0), ("b", 2.0), ("a", 2.5)], k=4,
                   bucket_width=1.0, num_buckets=8)
        restored = loads(dumps(w))
        assert restored.live_buckets() == w.live_buckets()
        assert restored.query(2.9, 2.0).estimate("a") == w.query(
            2.9, 2.0
        ).estimate("a")
