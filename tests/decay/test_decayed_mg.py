"""Unit and property tests for the time-decayed Misra-Gries extension."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MergeError, ParameterError
from repro.decay import DecayedMisraGries


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            DecayedMisraGries(0, 1.0)
        with pytest.raises(ParameterError):
            DecayedMisraGries(4, 0.0)


class TestDecaySemantics:
    def test_no_time_passing_behaves_like_mg(self):
        dmg = DecayedMisraGries(4, half_life=100.0)
        for item in [1, 1, 2, 3]:
            dmg.observe(item, 0.0)
        assert dmg.estimate(1) == pytest.approx(2.0)
        assert dmg.decayed_total == pytest.approx(4.0)

    def test_weight_halves_per_half_life(self):
        dmg = DecayedMisraGries(4, half_life=10.0)
        dmg.observe("x", 0.0)
        dmg.advance_to(10.0)
        assert dmg.estimate("x") == pytest.approx(0.5)
        dmg.advance_to(30.0)
        assert dmg.estimate("x") == pytest.approx(0.125)

    def test_out_of_order_arrival_decays_incoming(self):
        dmg = DecayedMisraGries(4, half_life=10.0)
        dmg.observe("a", 20.0)
        dmg.observe("late", 10.0)  # arrives after time 20
        assert dmg.reference_time == 20.0
        assert dmg.estimate("late") == pytest.approx(0.5)

    def test_advance_never_rewinds(self):
        dmg = DecayedMisraGries(4, half_life=10.0)
        dmg.observe("x", 50.0)
        dmg.advance_to(10.0)
        assert dmg.reference_time == 50.0

    def test_query_at_future_time(self):
        dmg = DecayedMisraGries(4, half_life=10.0)
        dmg.observe("x", 0.0)
        assert dmg.estimate("x", at=10.0) == pytest.approx(0.5)

    def test_query_in_past_raises(self):
        dmg = DecayedMisraGries(4, half_life=10.0)
        dmg.observe("x", 100.0)
        with pytest.raises(ParameterError):
            dmg.estimate("x", at=50.0)

    def test_old_items_fade_from_heavy_hitters(self):
        dmg = DecayedMisraGries(8, half_life=5.0)
        for t in range(20):
            dmg.observe("old", float(t))
        for t in range(200, 220):
            dmg.observe("new", float(t))
        hh = dmg.heavy_hitters(0.5)
        assert "new" in hh
        assert "old" not in hh

    def test_size_bounded(self):
        dmg = DecayedMisraGries(4, half_life=10.0)
        for t in range(100):
            dmg.observe(t, float(t))
        assert dmg.size() <= 4


class TestGuarantee:
    def test_deduction_within_bound(self):
        dmg = DecayedMisraGries(8, half_life=20.0)
        for t in range(500):
            dmg.observe(t % 40, float(t) * 0.5)
        assert dmg.deduction <= dmg.error_bound + 1e-9

    def test_estimate_underestimates_decayed_truth(self):
        half_life = 15.0
        dmg = DecayedMisraGries(6, half_life=half_life)
        events = [(t % 9, float(t)) for t in range(300)]
        for item, t in events:
            dmg.observe(item, t)
        now = dmg.reference_time
        for item in range(9):
            truth = sum(
                0.5 ** ((now - t) / half_life) for i, t in events if i == item
            )
            estimate = dmg.estimate(item)
            assert estimate <= truth + 1e-9
            assert truth - estimate <= dmg.deduction + 1e-9


class TestMerge:
    def test_merge_aligns_reference_times(self):
        a = DecayedMisraGries(4, 10.0)
        b = DecayedMisraGries(4, 10.0)
        a.observe("x", 0.0)
        b.observe("y", 30.0)
        a.merge(b)
        assert a.reference_time == 30.0
        assert a.estimate("x") == pytest.approx(0.125)
        assert a.estimate("y") == pytest.approx(1.0)

    def test_merge_does_not_mutate_other(self):
        a = DecayedMisraGries(4, 10.0)
        b = DecayedMisraGries(4, 10.0)
        a.observe("x", 100.0)
        b.observe("y", 0.0)
        a.merge(b)
        assert b.reference_time == 0.0
        assert b.estimate("y") == pytest.approx(1.0)

    def test_merge_guarantee_holds(self):
        half_life = 25.0
        events_a = [(t % 7, float(t)) for t in range(200)]
        events_b = [(t % 11, float(t) + 50) for t in range(200)]
        a = DecayedMisraGries(6, half_life)
        b = DecayedMisraGries(6, half_life)
        for item, t in events_a:
            a.observe(item, t)
        for item, t in events_b:
            b.observe(item, t)
        a.merge(b)
        now = a.reference_time
        assert a.deduction <= a.error_bound + 1e-9
        for item in range(11):
            truth = sum(
                0.5 ** ((now - t) / half_life)
                for i, t in events_a + events_b
                if i == item
            )
            estimate = a.estimate(item)
            assert estimate <= truth + 1e-9
            assert truth - estimate <= a.deduction + 1e-9

    def test_half_life_mismatch_refused(self):
        with pytest.raises(MergeError, match="half_life"):
            DecayedMisraGries(4, 10.0).merge(DecayedMisraGries(4, 20.0))

    def test_k_mismatch_refused(self):
        with pytest.raises(MergeError, match="k mismatch"):
            DecayedMisraGries(4, 10.0).merge(DecayedMisraGries(8, 10.0))


@given(
    events=st.lists(
        st.tuples(st.integers(0, 10), st.floats(0, 100, allow_nan=False)),
        min_size=1,
        max_size=150,
    ),
    k=st.integers(1, 8),
    split=st.integers(0, 150),
)
@settings(max_examples=80, deadline=None)
def test_decayed_merge_invariant_property(events, k, split):
    """For any event sequence and split: estimates underestimate the
    decayed truth by at most the deduction, which respects the bound."""
    half_life = 10.0
    split = split % (len(events) + 1)
    a = DecayedMisraGries(k, half_life)
    b = DecayedMisraGries(k, half_life)
    for item, t in events[:split]:
        a.observe(item, t)
    for item, t in events[split:]:
        b.observe(item, t)
    merged = a.merge(b) if events[split:] or True else a
    now = merged.reference_time
    assert merged.deduction <= merged.error_bound + 1e-6
    for item in {i for i, _ in events}:
        truth = sum(
            0.5 ** ((now - t) / half_life) for i, t in events if i == item
        )
        estimate = merged.estimate(item)
        assert estimate <= truth + 1e-6
        assert truth - estimate <= merged.deduction + 1e-6
