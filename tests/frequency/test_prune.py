"""Tests for the prune rules, including the paper-text worked examples."""

from __future__ import annotations

import pytest

from repro.core import ParameterError
from repro.frequency import get_prune_rule, prune_cafaro, prune_paper

# The worked example (k-majority parameter 5, kappa = 4 counters):
# combined Frequent summaries with counters
COMBINED_FREQUENT = {2: 4, 7: 10, 3: 11, 8: 20, 4: 22, 9: 30, 5: 33, 10: 40}
# and the combined SpaceSaving summaries after subtracting the minima
COMBINED_SS = {2: 2, 3: 7, 4: 9, 7: 12, 5: 13, 8: 13, 9: 15, 10: 19}


class TestPrunePaper:
    def test_noop_when_small(self):
        counters = {1: 5, 2: 7}
        pruned, cut = prune_paper(counters, kappa=4)
        assert pruned == counters
        assert cut == 0

    def test_worked_example_frequent(self):
        pruned, cut = prune_paper(COMBINED_FREQUENT, kappa=4)
        assert cut == 20
        assert pruned == {4: 2, 9: 10, 5: 13, 10: 20}

    def test_worked_example_space_saving(self):
        pruned, cut = prune_paper(COMBINED_SS, kappa=4)
        assert cut == 12
        assert pruned == {5: 1, 8: 1, 9: 3, 10: 7}

    def test_survivor_error_is_kappa_times_cut(self):
        # the worked example reports E_T = (k-1) * 20 = 80 over survivors
        pruned, cut = prune_paper(COMBINED_FREQUENT, kappa=4)
        survivor_error = sum(
            COMBINED_FREQUENT[item] - value for item, value in pruned.items()
        )
        assert survivor_error == 4 * cut == 80

    def test_mass_drop_is_kappa_plus_one_times_cut_or_less(self):
        pruned, cut = prune_paper(COMBINED_FREQUENT, kappa=4)
        drop = sum(COMBINED_FREQUENT.values()) - sum(pruned.values())
        # survivors each lose exactly cut; dropped lose their full value
        assert drop >= (4 + 1) * cut

    def test_ties_at_cut_are_dropped(self):
        counters = {1: 5, 2: 5, 3: 5}
        pruned, cut = prune_paper(counters, kappa=2)
        assert cut == 5
        assert pruned == {}

    def test_survivor_count_at_most_kappa(self):
        counters = {i: i + 1 for i in range(10)}
        pruned, _ = prune_paper(counters, kappa=3)
        assert len(pruned) <= 3


class TestPruneCafaro:
    def test_noop_when_small(self):
        counters = {1: 5}
        pruned, cut = prune_cafaro(counters, kappa=4)
        assert pruned == counters
        assert cut == 0

    def test_worked_example_frequent(self):
        # the paper text's Algorithm 2 output: {4:2, 9:14, 5:23, 10:31}
        pruned, cut = prune_cafaro(COMBINED_FREQUENT, kappa=4)
        assert cut == 20
        assert pruned == {4: 2, 9: 14, 5: 23, 10: 31}

    def test_survivor_error_below_paper_rule(self):
        # the worked example: 55 (cafaro) vs 80 (paper) over survivors
        paper_pruned, _ = prune_paper(COMBINED_FREQUENT, kappa=4)
        cafaro_pruned, _ = prune_cafaro(COMBINED_FREQUENT, kappa=4)
        paper_error = sum(
            COMBINED_FREQUENT[i] - v for i, v in paper_pruned.items()
        )
        cafaro_error = sum(
            COMBINED_FREQUENT[i] - v for i, v in cafaro_pruned.items()
        )
        assert paper_error == 80
        assert cafaro_error == 55
        assert cafaro_error < paper_error

    def test_mass_drop_exactly_kappa_plus_one_times_cut(self):
        # the property that keeps the cafaro rule inductively mergeable
        pruned, cut = prune_cafaro(COMBINED_FREQUENT, kappa=4)
        drop = sum(COMBINED_FREQUENT.values()) - sum(pruned.values())
        assert drop == (4 + 1) * cut

    def test_per_item_deduction_bounded_by_cut(self):
        pruned, cut = prune_cafaro(COMBINED_FREQUENT, kappa=4)
        for item, value in COMBINED_FREQUENT.items():
            assert value - pruned.get(item, 0) <= cut

    def test_padding_with_fewer_than_2kappa_counters(self):
        counters = {1: 3, 2: 5, 3: 9, 4: 11, 5: 20}  # 5 counters, kappa=4
        pruned, cut = prune_cafaro(counters, kappa=4)
        # padded values: [0,0,0,3,5,9,11,20]; cut = f_4 = 3
        assert cut == 3
        assert pruned == {2: 2, 3: 6, 4: 8, 5: 17}

    def test_oversized_input_raises(self):
        counters = {i: i + 1 for i in range(9)}
        with pytest.raises(ParameterError, match="at most"):
            prune_cafaro(counters, kappa=4)


class TestGetPruneRule:
    def test_lookup(self):
        assert get_prune_rule("paper") is prune_paper
        assert get_prune_rule("cafaro") is prune_cafaro

    def test_unknown_raises(self):
        with pytest.raises(ParameterError, match="unknown prune rule"):
            get_prune_rule("magic")
