"""Tests for conservative-update CountMin (the non-mergeable baseline)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core import MergeError, ParameterError, merge_chain
from repro.frequency import ConservativeCountMin, CountMin
from repro.workloads import zipf_stream


class TestStreaming:
    def test_invalid_geometry(self):
        with pytest.raises(ParameterError):
            ConservativeCountMin(0, 3)

    def test_never_underestimates(self, zipf_items, zipf_truth):
        sketch = ConservativeCountMin(128, 4, seed=1).extend(zipf_items)
        for item, count in list(zipf_truth.items())[:300]:
            assert sketch.estimate(item) >= count

    def test_sequentially_beats_plain_countmin(self, zipf_items, zipf_truth):
        """The whole point of conservative update: lower over-estimation
        at the same geometry."""
        cu = ConservativeCountMin(64, 4, seed=2).extend(zipf_items)
        cm = CountMin(64, 4, seed=2).extend(zipf_items)
        cu_total = sum(cu.estimate(i) - c for i, c in zipf_truth.items())
        cm_total = sum(cm.estimate(i) - c for i, c in zipf_truth.items())
        assert cu_total < cm_total

    def test_single_item_exact(self):
        sketch = ConservativeCountMin(16, 3, seed=3)
        sketch.update("x", weight=7)
        assert sketch.estimate("x") == 7


class TestMergeDegradation:
    def test_merge_remains_upper_bound(self):
        stream = zipf_stream(10_000, rng=4)
        truth = Counter(stream.tolist())
        parts = [
            ConservativeCountMin(64, 4, seed=5).extend(stream[i::8].tolist())
            for i in range(8)
        ]
        merged = merge_chain(parts)
        for item, count in truth.most_common(100):
            assert merged.estimate(item) >= count

    def test_merging_erodes_the_advantage_monotonically(self):
        """Conservative update's edge over plain CountMin erodes as the
        stream is split across more shards (the non-linearity cost);
        plain CountMin is unaffected (it is linear)."""
        stream = zipf_stream(20_000, alpha=1.1, universe=20_000, rng=6)
        truth = Counter(stream.tolist())

        def total_overcount(sketch):
            return sum(sketch.estimate(i) - c for i, c in truth.items())

        cm = CountMin(32, 4, seed=7).extend(stream.tolist())
        cu_seq = ConservativeCountMin(32, 4, seed=7).extend(stream.tolist())
        assert total_overcount(cu_seq) < total_overcount(cm)

        overcounts = []
        for shards in (16, 256):
            merged = merge_chain(
                [
                    ConservativeCountMin(32, 4, seed=7).extend(
                        stream[i::shards].tolist()
                    )
                    for i in range(shards)
                ]
            )
            overcounts.append(total_overcount(merged))
            # CM is linear: its merged table equals the sequential one
            cm_merged = merge_chain(
                [CountMin(32, 4, seed=7).extend(stream[i::shards].tolist())
                 for i in range(shards)]
            )
            assert (cm_merged._table == cm._table).all()
        # sequential CU is the best; more shards -> worse merged CU
        assert total_overcount(cu_seq) <= overcounts[0] <= overcounts[1]

    def test_merge_generations_tracked(self):
        a = ConservativeCountMin(16, 3, seed=8).extend([1])
        b = ConservativeCountMin(16, 3, seed=8).extend([2])
        a.merge(b)
        assert a.merge_generations == 1

    def test_geometry_mismatch_refused(self):
        with pytest.raises(MergeError):
            ConservativeCountMin(16, 3, seed=1).merge(
                ConservativeCountMin(32, 3, seed=1)
            )

    def test_serialization_roundtrip(self):
        from repro.core import dumps, loads

        sketch = ConservativeCountMin(16, 3, seed=9).extend([1, 2, 2, 3])
        restored = loads(dumps(sketch))
        assert restored.estimate(2) == sketch.estimate(2)
        assert restored.merge_generations == sketch.merge_generations
