"""Tests for the dyadic hierarchy (range counts, hierarchical HH)."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core import MergeError, ParameterError, merge_all
from repro.frequency import DyadicHierarchy
from repro.workloads import zipf_stream

BITS = 10
K = 32


@pytest.fixture(scope="module")
def loaded():
    stream = zipf_stream(15_000, alpha=1.2, universe=1 << BITS, rng=1).tolist()
    truth = Counter(stream)
    hierarchy = DyadicHierarchy(K, BITS)
    for x in stream:
        hierarchy.update(x)
    return hierarchy, truth, stream


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            DyadicHierarchy(0, 8)
        with pytest.raises(ParameterError):
            DyadicHierarchy(8, 0)
        with pytest.raises(ParameterError):
            DyadicHierarchy(8, 64)

    def test_out_of_domain_item_rejected(self):
        h = DyadicHierarchy(4, 4)
        with pytest.raises(ParameterError, match="outside the domain"):
            h.update(16)
        with pytest.raises(ParameterError):
            h.update(-1)

    def test_space_bound(self, loaded):
        hierarchy, _, _ = loaded
        assert hierarchy.size() <= (BITS + 1) * K


class TestDyadicCover:
    def test_full_domain_is_one_block(self):
        h = DyadicHierarchy(4, 4)
        assert h._dyadic_cover(0, 15) == [(4, 0)]

    def test_single_point(self):
        h = DyadicHierarchy(4, 4)
        assert h._dyadic_cover(5, 5) == [(0, 5)]

    def test_cover_is_disjoint_and_complete(self):
        h = DyadicHierarchy(4, 6)
        for lo, hi in [(0, 63), (1, 62), (17, 43), (31, 32), (7, 7)]:
            covered = []
            for level, prefix in h._dyadic_cover(lo, hi):
                start = prefix << level
                covered.extend(range(start, start + (1 << level)))
            assert covered == list(range(lo, hi + 1))

    def test_cover_size_bounded(self):
        h = DyadicHierarchy(4, 10)
        rng = np.random.default_rng(2)
        for _ in range(50):
            lo, hi = sorted(rng.integers(0, 1 << 10, 2).tolist())
            assert len(h._dyadic_cover(lo, hi)) <= 2 * 10


class TestRangeCounts:
    def test_bounds_bracket_truth(self, loaded):
        hierarchy, truth, stream = loaded
        rng = np.random.default_rng(3)
        for _ in range(30):
            lo, hi = sorted(rng.integers(0, 1 << BITS, 2).tolist())
            true = sum(c for x, c in truth.items() if lo <= x <= hi)
            assert hierarchy.range_count(lo, hi) <= true
            assert hierarchy.range_count_upper(lo, hi) >= true

    def test_error_within_dyadic_bound(self, loaded):
        hierarchy, truth, stream = loaded
        n = len(stream)
        bound = 2 * BITS * n / (K + 1)
        rng = np.random.default_rng(4)
        for _ in range(30):
            lo, hi = sorted(rng.integers(0, 1 << BITS, 2).tolist())
            true = sum(c for x, c in truth.items() if lo <= x <= hi)
            assert true - hierarchy.range_count(lo, hi) <= bound

    def test_empty_range_rejected(self, loaded):
        hierarchy, _, _ = loaded
        with pytest.raises(ParameterError, match="empty range"):
            hierarchy.range_count(5, 4)

    def test_full_domain_equals_n_lowerish(self, loaded):
        hierarchy, _, stream = loaded
        # full domain is a single top-level block: exact (1 counter)
        assert hierarchy.range_count(0, (1 << BITS) - 1) <= len(stream)
        assert hierarchy.range_count_upper(0, (1 << BITS) - 1) >= len(stream)


class TestHierarchicalHeavyHitters:
    def test_no_false_negatives_at_any_level(self, loaded):
        hierarchy, truth, stream = loaded
        phi = 0.1
        n = len(stream)
        reported = hierarchy.hierarchical_heavy_hitters(phi)
        for level in range(BITS + 1):
            block_truth = Counter()
            for x, c in truth.items():
                block_truth[x >> level] += c
            for prefix, count in block_truth.items():
                if count >= phi * n:
                    assert (level, prefix) in reported

    def test_top_level_always_heavy(self, loaded):
        hierarchy, _, _ = loaded
        reported = hierarchy.hierarchical_heavy_hitters(0.5)
        assert (BITS, 0) in reported  # the whole domain holds all mass

    def test_invalid_phi(self, loaded):
        hierarchy, _, _ = loaded
        with pytest.raises(ParameterError):
            hierarchy.hierarchical_heavy_hitters(0)


class TestMerge:
    def test_levelwise_merge_preserves_bounds(self, loaded):
        _, truth, stream = loaded
        parts = [DyadicHierarchy(K, BITS) for _ in range(6)]
        for i, x in enumerate(stream):
            parts[i % 6].update(x)
        merged = merge_all(parts, strategy="random", rng=5)
        assert merged.n == len(stream)
        rng = np.random.default_rng(6)
        for _ in range(15):
            lo, hi = sorted(rng.integers(0, 1 << BITS, 2).tolist())
            true = sum(c for x, c in truth.items() if lo <= x <= hi)
            assert merged.range_count(lo, hi) <= true
            assert merged.range_count_upper(lo, hi) >= true

    def test_geometry_mismatch_refused(self):
        with pytest.raises(MergeError, match="hierarchy mismatch"):
            DyadicHierarchy(8, 8).merge(DyadicHierarchy(8, 9))

    def test_serialization_roundtrip(self, loaded):
        from repro.core import dumps, loads

        hierarchy, _, _ = loaded
        restored = loads(dumps(hierarchy))
        assert restored.range_count(10, 100) == hierarchy.range_count(10, 100)
        assert restored.size() == hierarchy.size()
