"""Tests for the heavy-hitter evaluation layer."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core import ParameterError
from repro.frequency import (
    ExactCounter,
    MisraGries,
    SpaceSaving,
    evaluate_heavy_hitters,
)
from repro.workloads import mixture_stream


@pytest.fixture(scope="module")
def planted():
    stream = mixture_stream(
        20_000, heavy_items=[1, 2, 3], heavy_fraction=0.5, universe=10**6, rng=3
    ).tolist()
    return stream, Counter(stream)


class TestEvaluateHeavyHitters:
    def test_exact_counter_is_perfect(self, planted):
        stream, truth = planted
        summary = ExactCounter().extend(stream)
        report = evaluate_heavy_hitters(summary, truth, phi=0.1)
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.guarantee_held

    def test_mg_recall_is_one(self, planted):
        stream, truth = planted
        summary = MisraGries(64).extend(stream)
        report = evaluate_heavy_hitters(summary, truth, phi=0.1)
        assert report.recall == 1.0
        assert report.guarantee_held
        assert {1, 2, 3} <= set(report.reported)

    def test_ss_recall_is_one(self, planted):
        stream, truth = planted
        summary = SpaceSaving(64).extend(stream)
        report = evaluate_heavy_hitters(summary, truth, phi=0.1)
        assert report.recall == 1.0

    def test_false_positives_bounded_by_phi_minus_eps(self, planted):
        stream, truth = planted
        k = 64
        summary = MisraGries(k).extend(stream)
        report = evaluate_heavy_hitters(summary, truth, phi=0.1)
        n = len(stream)
        floor = (0.1 - 1.0 / (k + 1)) * n
        for item in report.false_positives:
            assert truth[item] >= floor

    def test_mismatched_truth_raises(self, planted):
        stream, truth = planted
        summary = MisraGries(16).extend(stream[: len(stream) // 2])
        with pytest.raises(ParameterError, match="does not match"):
            evaluate_heavy_hitters(summary, truth, phi=0.1)

    def test_invalid_phi_raises(self, planted):
        stream, truth = planted
        summary = ExactCounter().extend(stream)
        with pytest.raises(ParameterError):
            evaluate_heavy_hitters(summary, truth, phi=0.0)

    def test_no_heavy_hitters_gives_recall_one(self):
        stream = list(range(1000))
        truth = Counter(stream)
        summary = ExactCounter().extend(stream)
        report = evaluate_heavy_hitters(summary, truth, phi=0.5)
        assert report.recall == 1.0
        assert not report.reported
