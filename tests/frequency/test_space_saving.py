"""Unit tests for the SpaceSaving summary."""

from __future__ import annotations

import pytest

from repro.core import MergeError, ParameterError, merge_all
from repro.frequency import SpaceSaving
from repro.workloads import chunk_evenly, zipf_stream


class TestConstruction:
    def test_invalid_k_raises(self):
        for bad in (0, 1, -3, 2.5):
            with pytest.raises(ParameterError):
                SpaceSaving(bad)

    def test_from_epsilon(self):
        assert SpaceSaving.from_epsilon(0.1).k == 10
        assert SpaceSaving.from_epsilon(0.9).k == 2

    def test_from_epsilon_validates(self):
        with pytest.raises(ParameterError):
            SpaceSaving.from_epsilon(0.0)


class TestStreaming:
    def test_small_stream_exact(self):
        ss = SpaceSaving(10).extend([1, 1, 2, 3])
        assert ss.counters() == {1: 2, 2: 1, 3: 1}
        assert ss.deduction == 0

    def test_never_underestimates(self, zipf_items, zipf_truth):
        ss = SpaceSaving(16).extend(zipf_items)
        for item, count in zipf_truth.items():
            assert ss.estimate(item) >= count

    def test_overestimate_within_bound(self, zipf_items, zipf_truth):
        k = 16
        ss = SpaceSaving(k).extend(zipf_items)
        bound = len(zipf_items) / k
        for item, count in zipf_truth.items():
            assert ss.estimate(item) - count <= bound

    def test_unmonitored_estimate_is_deduction(self):
        ss = SpaceSaving(2).extend([1, 1, 1, 2, 2, 3, 4])
        assert ss.estimate("never seen") == ss.deduction

    def test_lower_bound_below_truth(self, zipf_items, zipf_truth):
        ss = SpaceSaving(16).extend(zipf_items)
        for item in list(zipf_truth)[:100]:
            assert ss.lower_bound(item) <= zipf_truth[item]

    def test_size_at_most_k_minus_one(self):
        # the MG-image representation stores at most k-1 counters
        ss = SpaceSaving(8).extend(range(200))
        assert ss.size() <= 7

    def test_deduction_bounded(self, zipf_items):
        k = 16
        ss = SpaceSaving(k).extend(zipf_items)
        assert ss.deduction <= len(zipf_items) / k


class TestMerge:
    def test_merged_error_bound_over_topologies(self):
        n, k = 20_000, 20
        stream = zipf_stream(n, alpha=1.1, universe=4_000, rng=5)
        from collections import Counter

        truth = Counter(stream.tolist())
        for strategy in ("chain", "tree", "random"):
            parts = [
                SpaceSaving(k).extend(s.tolist())
                for s in chunk_evenly(stream, 10)
            ]
            rng = 1 if strategy == "random" else None
            merged = merge_all(parts, strategy=strategy, rng=rng)
            assert merged.n == n
            assert merged.size() <= k - 1
            bound = n / k
            for item, count in truth.most_common(50):
                assert 0 <= merged.estimate(item) - count <= bound

    def test_k_mismatch_raises(self):
        with pytest.raises(MergeError, match="k mismatch"):
            SpaceSaving(4).merge(SpaceSaving(5))

    def test_prune_rule_mismatch_raises(self):
        with pytest.raises(MergeError, match="prune rule mismatch"):
            SpaceSaving(4).merge(SpaceSaving(4, prune_rule="cafaro"))

    def test_merge_accumulates_n(self):
        a = SpaceSaving(4).extend([1, 2])
        b = SpaceSaving(4).extend([3])
        assert a.merge(b).n == 3


class TestHeavyHitters:
    def test_no_false_negatives(self, zipf_items, zipf_truth):
        ss = SpaceSaving(32).extend(zipf_items)
        phi = 0.05
        threshold = phi * len(zipf_items)
        reported = ss.heavy_hitters(phi)
        for item, count in zipf_truth.items():
            if count >= threshold:
                assert item in reported

    def test_invalid_phi_raises(self):
        with pytest.raises(ParameterError):
            SpaceSaving(4).extend([1]).heavy_hitters(2.0)
