"""Unit tests for the CountMin and CountSketch linear-sketch baselines."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core import MergeError, ParameterError, merge_all
from repro.frequency import CountMin, CountSketch
from repro.workloads import chunk_evenly, zipf_stream


class TestCountMin:
    def test_invalid_geometry_raises(self):
        with pytest.raises(ParameterError):
            CountMin(0, 3)
        with pytest.raises(ParameterError):
            CountMin(10, 0)

    def test_from_error_sizes(self):
        sketch = CountMin.from_error(0.01, 0.01)
        assert sketch.width >= 100
        assert sketch.depth >= 2

    def test_never_underestimates(self, zipf_items, zipf_truth):
        sketch = CountMin(512, 4, seed=2).extend(zipf_items)
        for item, count in list(zipf_truth.items())[:300]:
            assert sketch.estimate(item) >= count

    def test_overestimate_within_eps_n(self, zipf_items, zipf_truth):
        eps = 0.01
        sketch = CountMin.from_error(eps, 0.001, seed=3).extend(zipf_items)
        n = len(zipf_items)
        violations = sum(
            1
            for item, count in zipf_truth.items()
            if sketch.estimate(item) - count > eps * n
        )
        assert violations == 0

    def test_merge_equals_sequential(self, zipf_items):
        shards = chunk_evenly(zipf_stream(5_000, rng=4), 5)
        whole = CountMin(128, 3, seed=7).extend(zipf_stream(5_000, rng=4).tolist())
        parts = [CountMin(128, 3, seed=7).extend(s.tolist()) for s in shards]
        merged = merge_all(parts, strategy="tree")
        # linear sketches merge with *zero* error: tables are identical
        assert (merged._table == whole._table).all()
        assert merged.n == whole.n

    def test_seed_mismatch_refuses_merge(self):
        with pytest.raises(MergeError, match="seed"):
            CountMin(32, 3, seed=1).merge(CountMin(32, 3, seed=2))

    def test_geometry_mismatch_refuses_merge(self):
        with pytest.raises(MergeError):
            CountMin(32, 3).merge(CountMin(64, 3))

    def test_size_is_table_cells(self):
        assert CountMin(32, 3).size() == 96

    def test_invalid_weight(self):
        with pytest.raises(ParameterError):
            CountMin(8, 2).update(1, weight=-1)


class TestCountSketch:
    def test_depth_made_odd(self):
        assert CountSketch(16, 4).depth == 5

    def test_roughly_unbiased_on_heavy_item(self):
        stream = [0] * 2_000 + list(range(1, 3_000))
        truth = Counter(stream)
        sketch = CountSketch(256, 5, seed=1).extend(stream)
        assert abs(sketch.estimate(0) - truth[0]) <= 500

    def test_merge_equals_sequential(self):
        stream = zipf_stream(4_000, rng=8)
        whole = CountSketch(128, 3, seed=5).extend(stream.tolist())
        parts = [
            CountSketch(128, 3, seed=5).extend(s.tolist())
            for s in chunk_evenly(stream, 4)
        ]
        merged = merge_all(parts, strategy="chain")
        assert (merged._table == whole._table).all()

    def test_seed_mismatch_refuses_merge(self):
        with pytest.raises(MergeError):
            CountSketch(32, 3, seed=1).merge(CountSketch(32, 3, seed=2))

    def test_invalid_geometry(self):
        with pytest.raises(ParameterError):
            CountSketch(-1, 3)

    def test_from_error_validates(self):
        with pytest.raises(ParameterError):
            CountSketch.from_error(1.5, 0.1)
