"""Unit tests for the Boyer-Moore majority summary (k=1 Misra-Gries)."""

from __future__ import annotations

import pytest

from repro.core import EmptySummaryError, ParameterError, merge_all
from repro.frequency import MajorityVote


class TestStreaming:
    def test_clear_majority_found(self):
        mv = MajorityVote().extend([1, 2, 1, 1, 3, 1, 1])
        assert mv.candidate == 1

    def test_no_majority_still_returns_candidate(self):
        mv = MajorityVote().extend([1, 2, 3])
        # candidate is only a *candidate*: guarantee is no false negative
        assert mv.n == 3

    def test_empty_candidate_raises(self):
        with pytest.raises(EmptySummaryError):
            MajorityVote().candidate

    def test_estimate_lower_bounds_truth(self):
        stream = [7] * 60 + [8] * 40
        mv = MajorityVote().extend(stream)
        assert mv.estimate(7) <= 60
        assert mv.upper_bound(7) >= 60

    def test_deduction_at_most_half(self):
        stream = [1, 2] * 500
        mv = MajorityVote().extend(stream)
        assert mv.deduction <= len(stream) / 2 + 1

    def test_weighted_updates(self):
        mv = MajorityVote()
        mv.update("a", weight=10)
        mv.update("b", weight=4)
        assert mv.candidate == "a"
        assert mv.estimate("a") == 6

    def test_invalid_weight(self):
        with pytest.raises(ParameterError):
            MajorityVote().update("a", weight=0)

    def test_cancellation_clears_candidate(self):
        mv = MajorityVote().extend([1, 2])
        assert mv.size() == 0


class TestMerge:
    def test_agreeing_candidates_add(self):
        a = MajorityVote().extend([1, 1, 1])
        b = MajorityVote().extend([1, 1])
        a.merge(b)
        assert a.candidate == 1
        assert a.estimate(1) == 5

    def test_disagreeing_candidates_cancel(self):
        a = MajorityVote().extend(["x"] * 5)
        b = MajorityVote().extend(["y"] * 3)
        a.merge(b)
        assert a.candidate == "x"
        assert a.estimate("x") == 2

    def test_true_majority_never_lost(self):
        # the mergeability guarantee: if an item has > n/2 occurrences in
        # the union, it must be the merged candidate
        shards = [[1, 1, 2], [1, 1, 3], [1, 4, 1]]
        parts = [MajorityVote().extend(s) for s in shards]
        merged = merge_all(parts, strategy="chain")
        assert merged.candidate == 1

    def test_merge_with_empty(self):
        a = MajorityVote().extend([1, 1])
        a.merge(MajorityVote())
        assert a.candidate == 1

    def test_empty_absorbs_other(self):
        a = MajorityVote()
        a.merge(MajorityVote().extend([2, 2]))
        assert a.candidate == 2
