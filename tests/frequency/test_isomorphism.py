"""Tests for the MG <-> SpaceSaving isomorphism (paper Section 2)."""

from __future__ import annotations

import pytest

from repro.core import ParameterError
from repro.frequency import (
    classic_space_saving,
    mg_image_of_classic_ss,
    verify_isomorphism,
)
from repro.workloads import uniform_stream, zipf_stream


class TestClassicSpaceSaving:
    def test_small_stream_exact(self):
        state = classic_space_saving([1, 1, 2], k=4)
        assert state == {1: (2, 0), 2: (1, 0)}

    def test_eviction_inherits_min(self):
        state = classic_space_saving([1, 1, 2, 3], k=2)
        # 3 evicts 2 (min count 1) and starts at 2 with error 1
        assert state[3] == (2, 1)
        assert state[1] == (2, 0)

    def test_counts_upper_bound_truth(self):
        stream = zipf_stream(5_000, rng=3).tolist()
        from collections import Counter

        truth = Counter(stream)
        state = classic_space_saving(stream, k=20)
        for item, (count, error) in state.items():
            assert count >= truth[item]
            assert count - error <= truth[item]

    def test_total_count_equals_n(self):
        stream = uniform_stream(1_000, universe=100, rng=1).tolist()
        state = classic_space_saving(stream, k=10)
        assert sum(count for count, _ in state.values()) == len(stream)

    def test_invalid_k_raises(self):
        with pytest.raises(ParameterError):
            classic_space_saving([1], k=0)


class TestMgImage:
    def test_empty_state(self):
        assert mg_image_of_classic_ss({}, k=4) == {}

    def test_not_full_no_shift(self):
        state = {1: (3, 0), 2: (1, 0)}
        assert mg_image_of_classic_ss(state, k=4) == {1: 3, 2: 1}

    def test_full_state_shifts_by_min(self):
        state = {1: (5, 0), 2: (3, 1), 3: (2, 1)}
        image = mg_image_of_classic_ss(state, k=3)
        assert image == {1: 3, 2: 1}


class TestVerifyIsomorphism:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exact_match_on_zipf_streams(self, seed):
        stream = zipf_stream(4_000, alpha=1.4, universe=500, rng=seed).tolist()
        report = verify_isomorphism(stream, k=12)
        assert report["bounds_consistent"]
        # on generic (tie-light) streams the correspondence is exact
        assert report["matches"]

    def test_bounds_always_consistent_even_with_ties(self):
        # an all-equal-frequency stream maximizes tie-breaking divergence
        stream = list(range(50)) * 4
        report = verify_isomorphism(stream, k=8)
        assert report["bounds_consistent"]

    def test_report_fields(self):
        report = verify_isomorphism([1, 1, 2, 3], k=3)
        assert report["n"] == 4
        assert report["k"] == 3
        assert set(report) >= {"mg_counters", "ss_state", "ss_mg_image", "shift"}
