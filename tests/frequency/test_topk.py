"""Tests for certified top-k reporting."""

from __future__ import annotations

import pytest

from repro.core import ParameterError
from repro.frequency import MisraGries, SpaceSaving, top_k
from repro.workloads import zipf_stream


class TestTopK:
    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            top_k(MisraGries(4).extend([1]), 0)

    def test_well_separated_order_certified(self):
        mg = MisraGries(8).extend([1] * 100 + [2] * 50 + [3] * 10)
        report = top_k(mg, 3)
        assert report.items() == [1, 2, 3]
        assert report.fully_certified
        assert report.certified_pairs == [(1, 2), (2, 3)]

    def test_close_items_flagged_ambiguous(self):
        # churn makes the deduction large relative to the gap
        stream = [1] * 52 + [2] * 50 + list(range(100, 400))
        mg = MisraGries(4).extend(stream)
        report = top_k(mg, 2)
        if report.entries[0].lower <= report.entries[1].upper:
            assert (1, 2) in report.ambiguous_pairs
        else:
            assert (1, 2) in report.certified_pairs

    def test_entries_carry_intervals(self):
        stream = zipf_stream(5_000, alpha=1.4, universe=200, rng=1).tolist()
        mg = MisraGries(32).extend(stream)
        report = top_k(mg, 5)
        from collections import Counter

        truth = Counter(stream)
        for entry in report.entries:
            assert entry.lower <= truth[entry.item] <= entry.upper
            assert entry.uncertainty == entry.upper - entry.lower

    def test_ranks_sequential(self):
        mg = MisraGries(8).extend([1] * 3 + [2] * 2 + [3])
        report = top_k(mg, 3)
        assert [entry.rank for entry in report.entries] == [1, 2, 3]

    def test_k_larger_than_monitored(self):
        mg = MisraGries(8).extend([1, 1, 2])
        report = top_k(mg, 10)
        assert len(report.entries) == 2

    def test_works_with_space_saving(self):
        ss = SpaceSaving(16).extend([1] * 100 + [2] * 50 + list(range(10, 60)))
        report = top_k(ss, 2)
        assert report.items()[0] == 1

    def test_membership_not_certified_under_churn(self):
        # everything uniform: excluded items have upper bounds rivaling
        # the reported ones
        mg = MisraGries(4).extend(list(range(100)) * 2)
        report = top_k(mg, 2)
        assert not report.membership_certified

    def test_certified_order_is_truthful(self):
        """Certified pairs must reflect the true frequency order."""
        from collections import Counter

        stream = zipf_stream(20_000, alpha=1.3, universe=1_000, rng=2).tolist()
        truth = Counter(stream)
        mg = MisraGries(64).extend(stream)
        report = top_k(mg, 10)
        entry_by_rank = {entry.rank: entry for entry in report.entries}
        for above, below in report.certified_pairs:
            assert truth[entry_by_rank[above].item] > truth[entry_by_rank[below].item]
