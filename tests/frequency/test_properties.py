"""Property-based tests (hypothesis) for the paper's frequency invariants.

These quantify over arbitrary streams, arbitrary split points, and
arbitrary merge trees — exactly the quantifiers in the paper's
definition of mergeability.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import merge_random_tree
from repro.frequency import MisraGries, SpaceSaving

# small universes force collisions and counter churn
items = st.integers(min_value=0, max_value=30)
streams = st.lists(items, min_size=1, max_size=300)
ks = st.integers(min_value=1, max_value=12)


def _split(stream: List[int], cuts: List[int]) -> List[List[int]]:
    """Split a stream at the (sorted, deduplicated) cut positions."""
    positions = sorted({c % (len(stream) + 1) for c in cuts})
    shards = []
    prev = 0
    for p in positions:
        shards.append(stream[prev:p])
        prev = p
    shards.append(stream[prev:])
    return [s for s in shards if s] or [stream]


@given(stream=streams, k=ks)
@settings(max_examples=150, deadline=None)
def test_mg_stream_error_invariant(stream, k):
    """f(x) - n/(k+1) <= mg.estimate(x) <= f(x) for every item."""
    truth = Counter(stream)
    mg = MisraGries(k).extend(stream)
    bound = len(stream) / (k + 1)
    assert mg.size() <= k
    assert mg.deduction <= bound
    for item, count in truth.items():
        estimate = mg.estimate(item)
        assert estimate <= count
        assert count - estimate <= mg.deduction


@given(stream=streams, k=ks, cuts=st.lists(st.integers(0, 10**6), max_size=6), seed=st.integers(0, 2**16))
@settings(max_examples=150, deadline=None)
def test_mg_merge_preserves_guarantee_under_any_tree(stream, k, cuts, seed):
    """Splitting anywhere + merging along any tree keeps the eps*n bound."""
    shards = _split(stream, cuts)
    truth = Counter(stream)
    parts = [MisraGries(k).extend(shard) for shard in shards]
    merged = merge_random_tree(parts, rng=seed)
    assert merged.n == len(stream)
    assert merged.size() <= k
    assert merged.deduction <= len(stream) / (k + 1)
    for item, count in truth.items():
        estimate = merged.estimate(item)
        assert estimate <= count
        assert count - estimate <= merged.deduction


@given(stream=streams, k=ks, cuts=st.lists(st.integers(0, 10**6), max_size=6), seed=st.integers(0, 2**16))
@settings(max_examples=100, deadline=None)
def test_mg_cafaro_prune_also_preserves_guarantee(stream, k, cuts, seed):
    """The extension prune rule must keep the same inductive invariant."""
    shards = _split(stream, cuts)
    truth = Counter(stream)
    parts = [MisraGries(k, prune_rule="cafaro").extend(s) for s in shards]
    merged = merge_random_tree(parts, rng=seed)
    assert merged.size() <= k
    assert merged.deduction <= len(stream) / (k + 1)
    for item, count in truth.items():
        estimate = merged.estimate(item)
        assert estimate <= count
        assert count - estimate <= merged.deduction


@given(stream=streams, k=st.integers(2, 12), cuts=st.lists(st.integers(0, 10**6), max_size=5), seed=st.integers(0, 2**16))
@settings(max_examples=150, deadline=None)
def test_ss_merge_overestimates_within_bound(stream, k, cuts, seed):
    """f(x) <= ss.estimate(x) <= f(x) + n/k under any split and tree."""
    shards = _split(stream, cuts)
    truth = Counter(stream)
    parts = [SpaceSaving(k).extend(shard) for shard in shards]
    merged = merge_random_tree(parts, rng=seed)
    bound = len(stream) / k
    assert merged.deduction <= bound
    for item, count in truth.items():
        estimate = merged.estimate(item)
        assert estimate >= count
        assert estimate - count <= merged.deduction


@given(stream=streams, k=ks)
@settings(max_examples=100, deadline=None)
def test_mg_mass_invariant(stream, k):
    """(k+1) * deduction <= n - stored_mass (the merge-proof potential)."""
    mg = MisraGries(k).extend(stream)
    stored = sum(mg.counters().values())
    assert (k + 1) * mg.deduction <= mg.n - stored


@given(stream=streams, k=ks, cut=st.integers(0, 10**6))
@settings(max_examples=100, deadline=None)
def test_mg_split_merge_mass_invariant(stream, k, cut):
    """The potential survives a merge (enables induction over any tree)."""
    shards = _split(stream, [cut])
    parts = [MisraGries(k).extend(s) for s in shards]
    merged = parts[0]
    for p in parts[1:]:
        merged = merged.merge(p)
    stored = sum(merged.counters().values())
    assert (k + 1) * merged.deduction <= merged.n - stored


@given(stream=streams)
@settings(max_examples=100, deadline=None)
def test_true_majority_survives_any_split(stream):
    """If an item is a strict majority, merged MajorityVote finds it."""
    from repro.frequency import MajorityVote

    truth = Counter(stream)
    top, top_count = truth.most_common(1)[0]
    if top_count * 2 <= len(stream):
        return  # no strict majority: nothing to assert
    half = len(stream) // 2
    parts = [
        MajorityVote().extend(stream[:half]),
        MajorityVote().extend(stream[half:]),
    ]
    merged = parts[0].merge(parts[1]) if stream[half:] else parts[0]
    assert merged.candidate == top


@given(stream=streams, k=ks)
@settings(max_examples=50, deadline=None)
def test_mg_serialization_roundtrip_preserves_estimates(stream, k):
    from repro.core import dumps, loads

    mg = MisraGries(k).extend(stream)
    restored = loads(dumps(mg))
    assert restored.counters() == mg.counters()
    assert restored.deduction == mg.deduction
    assert restored.n == mg.n
