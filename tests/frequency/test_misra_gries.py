"""Unit tests for the Misra-Gries summary."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core import MergeError, ParameterError, merge_all
from repro.frequency import MisraGries
from repro.workloads import chunk_evenly, zipf_stream


class TestConstruction:
    def test_invalid_k_raises(self):
        for bad in (0, -1, 2.5):
            with pytest.raises(ParameterError):
                MisraGries(bad)

    def test_from_epsilon_picks_ceil_inverse(self):
        assert MisraGries.from_epsilon(0.1).k == 10
        assert MisraGries.from_epsilon(0.3).k == 4

    def test_from_epsilon_validates(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ParameterError):
                MisraGries.from_epsilon(bad)


class TestStreaming:
    def test_small_stream_is_exact(self):
        mg = MisraGries(10).extend([1, 1, 2, 3, 3, 3])
        assert mg.counters() == {1: 2, 2: 1, 3: 3}
        assert mg.deduction == 0
        assert mg.n == 6

    def test_never_exceeds_k_counters(self):
        mg = MisraGries(5).extend(range(100))
        assert mg.size() <= 5

    def test_decrement_on_overflow(self):
        # k=2, stream 1,2,3: the 3 evicts both singletons
        mg = MisraGries(2).extend([1, 2, 3])
        assert mg.deduction == 1
        assert mg.estimate(1) == 0
        assert mg.estimate(3) == 0  # 3 died absorbing the decrement

    def test_heavy_item_survives_churn(self):
        stream = [0] * 50 + list(range(1, 51))
        mg = MisraGries(4).extend(stream)
        assert mg.estimate(0) > 0
        assert 0 in mg

    def test_estimates_never_overestimate(self, zipf_items, zipf_truth):
        mg = MisraGries(16).extend(zipf_items)
        for item, estimate in mg.counters().items():
            assert estimate <= zipf_truth[item]

    def test_error_within_bound(self, zipf_items, zipf_truth):
        mg = MisraGries(16).extend(zipf_items)
        bound = len(zipf_items) / (16 + 1)
        assert mg.deduction <= bound
        for item, count in zipf_truth.items():
            assert count - mg.estimate(item) <= bound

    def test_upper_lower_bounds_bracket_truth(self, zipf_items, zipf_truth):
        mg = MisraGries(16).extend(zipf_items)
        for item in list(zipf_truth)[:200]:
            assert mg.lower_bound(item) <= zipf_truth[item] <= mg.upper_bound(item)

    def test_weighted_update_equals_repeated(self):
        a = MisraGries(3)
        a.update("x", weight=5)
        a.update("y", weight=2)
        b = MisraGries(3).extend(["x"] * 5 + ["y"] * 2)
        assert a.counters() == b.counters()

    def test_invalid_weight_raises(self):
        with pytest.raises(ParameterError):
            MisraGries(3).update("x", weight=0)
        with pytest.raises(ParameterError):
            MisraGries(3).update("x", weight=-2)

    def test_mass_invariant_maintained(self, zipf_items):
        # (k+1) * deduction <= n - stored_mass: the induction the paper's
        # merge proof rests on.
        mg = MisraGries(8).extend(zipf_items)
        stored = sum(mg.counters().values())
        assert (mg.k + 1) * mg.deduction <= mg.n - stored

    def test_contains(self):
        mg = MisraGries(4).extend([1, 1, 2])
        assert 1 in mg
        assert 99 not in mg

    def test_heap_compaction_keeps_memory_bounded(self):
        mg = MisraGries(4)
        for i in range(10_000):
            mg.update(i % 3)  # constant touches of monitored items
        assert len(mg._heap) <= 8 * mg.k + 17


class TestMerge:
    def test_merge_small_summaries_exact(self):
        a = MisraGries(10).extend([1, 1, 2])
        b = MisraGries(10).extend([2, 3])
        a.merge(b)
        assert a.counters() == {1: 2, 2: 2, 3: 1}
        assert a.deduction == 0

    def test_paper_worked_example_frequent(self):
        """The k=5 Frequent example (combine + prune with the paper rule).

        Input summaries {2:4, 3:11, 4:22, 5:33} and {7:10, 8:20, 9:30,
        10:45}* merge to {4:2, 9:10, 5:13, 10:20} after subtracting the
        5th-largest combined value (20).  (*counter 10 has 40 after
        combining in the worked table; we use 40 directly.)
        """
        a = MisraGries(4)
        a._replace_state({2: 4, 3: 11, 4: 22, 5: 33}, n=70, deduction=0)
        b = MisraGries(4)
        b._replace_state({7: 10, 8: 20, 9: 30, 10: 40}, n=100, deduction=0)
        a.merge(b)
        assert a.counters() == {4: 2, 9: 10, 5: 13, 10: 20}
        assert a.deduction == 20

    def test_merge_error_bound_over_random_trees(self, zipf_items, zipf_truth):
        n = len(zipf_items)
        k = 24
        shards = chunk_evenly(zipf_stream(n, rng=7), 16)
        for seed in range(3):
            parts = [MisraGries(k).extend(s.tolist()) for s in shards]
            merged = merge_all(parts, strategy="random", rng=seed)
            assert merged.n == n
            assert merged.size() <= k
            assert merged.deduction <= n / (k + 1)

    def test_merge_keeps_mass_invariant(self, zipf_items):
        k = 8
        shards = chunk_evenly(zipf_stream(4000, rng=3), 8)
        parts = [MisraGries(k).extend(s.tolist()) for s in shards]
        merged = merge_all(parts, strategy="chain")
        stored = sum(merged.counters().values())
        assert (k + 1) * merged.deduction <= merged.n - stored

    def test_merge_is_weight_order_insensitive_in_guarantee(self):
        heavy = MisraGries(4).extend([1] * 100)
        light = MisraGries(4).extend([2])
        heavy.merge(light)
        assert heavy.estimate(1) >= 100 - heavy.deduction

    def test_k_mismatch_raises(self):
        with pytest.raises(MergeError, match="k mismatch"):
            MisraGries(4).merge(MisraGries(5))

    def test_prune_rule_mismatch_raises(self):
        with pytest.raises(MergeError, match="prune rule mismatch"):
            MisraGries(4).merge(MisraGries(4, prune_rule="cafaro"))


class TestHeavyHitters:
    def test_no_false_negatives(self, zipf_items, zipf_truth):
        mg = MisraGries(32).extend(zipf_items)
        phi = 0.05
        threshold = phi * len(zipf_items)
        reported = mg.heavy_hitters(phi)
        for item, count in zipf_truth.items():
            if count >= threshold:
                assert item in reported

    def test_reported_items_have_sufficient_upper_bound(self):
        mg = MisraGries(8).extend([1] * 50 + [2] * 5 + list(range(100, 140)))
        reported = mg.heavy_hitters(0.4)
        assert 1 in reported
        assert 2 not in reported

    def test_invalid_phi_raises(self):
        mg = MisraGries(4).extend([1])
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ParameterError):
                mg.heavy_hitters(bad)
