"""Unit tests for the range-space abstractions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ParameterError
from repro.ranges import (
    Halfplanes2D,
    Intervals1D,
    Rectangles2D,
    get_range_space,
)


class TestIntervals1D:
    def test_membership(self):
        space = Intervals1D()
        pts = np.array([0.1, 0.5, 0.9])
        mask = space.contains(pts, (0.2, 0.9))
        assert mask.tolist() == [False, True, True]

    def test_half_open_semantics(self):
        space = Intervals1D()
        mask = space.contains(np.array([1.0, 2.0]), (1.0, 2.0))
        assert mask.tolist() == [False, True]

    def test_count(self):
        space = Intervals1D()
        assert space.count(np.array([1.0, 2.0, 3.0]), (0.0, 2.5)) == 2

    def test_canonical_ranges_are_prefixes(self):
        space = Intervals1D()
        ranges = space.canonical_ranges(np.array([3.0, 1.0, 2.0]), budget=10)
        assert all(a == -np.inf for a, _ in ranges)
        assert len(ranges) == 3

    def test_canonical_budget_respected(self):
        space = Intervals1D()
        ranges = space.canonical_ranges(np.arange(100, dtype=float), budget=7)
        assert len(ranges) <= 7

    def test_accepts_column_vector(self):
        space = Intervals1D()
        pts = np.array([[1.0], [2.0]])
        assert space.count(pts, (0.0, 1.5)) == 1

    def test_wrong_shape_raises(self):
        with pytest.raises(ParameterError):
            Intervals1D().contains(np.zeros((3, 2)), (0, 1))


class TestRectangles2D:
    def test_membership(self):
        space = Rectangles2D()
        pts = np.array([[0.5, 0.5], [2.0, 2.0], [0.5, 3.0]])
        mask = space.contains(pts, (0.0, 1.0, 0.0, 1.0))
        assert mask.tolist() == [True, False, False]

    def test_canonical_ranges_budget(self):
        space = Rectangles2D()
        pts = np.random.default_rng(1).random((200, 2))
        ranges = space.canonical_ranges(pts, budget=50, rng=2)
        assert 0 < len(ranges) <= 50

    def test_wrong_dimension_raises(self):
        with pytest.raises(ParameterError):
            Rectangles2D().contains(np.zeros(5), (0, 1, 0, 1))


class TestHalfplanes2D:
    def test_membership(self):
        space = Halfplanes2D()
        pts = np.array([[0.0, 0.0], [2.0, 0.0]])
        # x <= 1
        mask = space.contains(pts, (1.0, 0.0, 1.0))
        assert mask.tolist() == [True, False]

    def test_canonical_ranges_are_normalized(self):
        space = Halfplanes2D()
        pts = np.random.default_rng(2).random((50, 2))
        ranges = space.canonical_ranges(pts, budget=20, rng=3)
        for a, b, _c in ranges:
            assert abs(np.hypot(a, b) - 1.0) < 1e-9

    def test_canonical_ranges_split_points(self):
        """Each canonical halfplane passes through data points, so both
        sides are generally non-trivial."""
        space = Halfplanes2D()
        pts = np.random.default_rng(3).random((100, 2))
        ranges = space.canonical_ranges(pts, budget=30, rng=4)
        nontrivial = sum(
            1 for r in ranges if 0 < space.count(pts, r) < len(pts)
        )
        assert nontrivial >= len(ranges) // 2


class TestRegistry:
    def test_lookup(self):
        assert isinstance(get_range_space("intervals_1d"), Intervals1D)
        assert isinstance(get_range_space("rectangles_2d"), Rectangles2D)
        assert isinstance(get_range_space("halfplanes_2d"), Halfplanes2D)

    def test_unknown_raises(self):
        with pytest.raises(ParameterError):
            get_range_space("circles")
