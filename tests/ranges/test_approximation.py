"""Unit and behaviour tests for the mergeable eps-approximation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EmptySummaryError, MergeError, ParameterError, merge_all
from repro.ranges import EpsApproximation, Intervals1D


class TestConstruction:
    def test_odd_s_rejected(self):
        with pytest.raises(ParameterError, match="even"):
            EpsApproximation("intervals_1d", s=33)

    def test_too_small_s_rejected(self):
        with pytest.raises(ParameterError):
            EpsApproximation("intervals_1d", s=0)

    def test_unknown_space_rejected(self):
        with pytest.raises(ParameterError):
            EpsApproximation("donuts", s=8)

    def test_unknown_method_rejected(self):
        with pytest.raises(ParameterError):
            EpsApproximation("intervals_1d", s=8, method="wish")

    def test_from_epsilon_even_size(self):
        ea = EpsApproximation.from_epsilon("intervals_1d", 0.01)
        assert ea.s % 2 == 0
        assert ea.s >= 200


class TestCounting1D:
    def test_small_set_exact(self):
        ea = EpsApproximation("intervals_1d", s=16).extend_points(
            np.array([0.1, 0.2, 0.7])
        )
        assert ea.count((-np.inf, 0.5)) == 2
        assert ea.fraction((-np.inf, 0.5)) == pytest.approx(2 / 3)

    def test_counting_error_bounded(self):
        rng = np.random.default_rng(1)
        pts = rng.random(2**13)
        s = 128
        ea = EpsApproximation("intervals_1d", s=s, rng=2).extend_points(pts)
        for b in np.linspace(0.05, 0.95, 19):
            true = (pts <= b).sum()
            assert abs(ea.count((-np.inf, b)) - true) <= 8 / s * len(pts)

    def test_weight_conservation(self):
        pts = np.random.default_rng(3).random(1000)
        ea = EpsApproximation("intervals_1d", s=32, rng=1).extend_points(pts)
        # total weighted count over the full line equals n exactly
        assert ea.count((-np.inf, np.inf)) == ea.n == 1000

    def test_update_single_points(self):
        ea = EpsApproximation("intervals_1d", s=8, rng=1)
        ea.update(0.5)
        ea.update(np.array([0.7]))
        assert ea.n == 2

    def test_empty_fraction_raises(self):
        with pytest.raises(EmptySummaryError):
            EpsApproximation("intervals_1d", s=8).fraction((-np.inf, 1))


class TestCounting2D:
    def test_rectangle_counting_error(self):
        rng = np.random.default_rng(4)
        pts = rng.random((2**12, 2))
        ea = EpsApproximation("rectangles_2d", s=128, rng=5).extend_points(pts)
        for _ in range(20):
            x, y = rng.random(2)
            r = (-np.inf, x, -np.inf, y)
            true = ((pts[:, 0] <= x) & (pts[:, 1] <= y)).sum()
            assert abs(ea.count(r) - true) <= 0.08 * len(pts)

    def test_halfplane_counting_error(self):
        rng = np.random.default_rng(6)
        pts = rng.random((2**12, 2))
        ea = EpsApproximation("halfplanes_2d", s=128, rng=7).extend_points(pts)
        for _ in range(20):
            angle = rng.random() * 2 * np.pi
            a, b = np.cos(angle), np.sin(angle)
            c = float(pts @ np.array([a, b]) @ np.ones(len(pts)) / len(pts))
            true = (pts @ np.array([a, b]) <= c + 1e-12).sum()
            assert abs(ea.count((a, b, c)) - true) <= 0.1 * len(pts)


class TestMerge:
    def test_merged_error_on_adversarial_shards(self):
        rng = np.random.default_rng(8)
        pts = np.sort(rng.random(2**13))
        shards = np.array_split(pts, 16)  # disjoint value ranges per node
        parts = [
            EpsApproximation("intervals_1d", s=128, rng=20 + i).extend_points(s)
            for i, s in enumerate(shards)
        ]
        merged = merge_all(parts, strategy="chain")
        assert merged.n == len(pts)
        for b in np.linspace(0.05, 0.95, 19):
            true = (pts <= b).sum()
            assert abs(merged.count((-np.inf, b)) - true) <= 0.06 * len(pts)

    def test_space_mismatch_refused(self):
        a = EpsApproximation("intervals_1d", s=8)
        b = EpsApproximation("rectangles_2d", s=8)
        with pytest.raises(MergeError, match="range space mismatch"):
            a.merge(b)

    def test_s_mismatch_refused(self):
        with pytest.raises(MergeError, match="block size mismatch"):
            EpsApproximation("intervals_1d", s=8).merge(
                EpsApproximation("intervals_1d", s=16)
            )

    def test_method_mismatch_refused(self):
        with pytest.raises(MergeError, match="halving method mismatch"):
            EpsApproximation("intervals_1d", s=8).merge(
                EpsApproximation("intervals_1d", s=8, method="greedy")
            )

    def test_size_stays_logarithmic(self):
        pts = np.random.default_rng(9).random(64 * 64)
        ea = EpsApproximation("intervals_1d", s=64, rng=1).extend_points(pts)
        assert ea.size() <= 64 * 8

    def test_points_accessor_weights(self):
        ea = EpsApproximation("intervals_1d", s=4, rng=1).extend_points(
            np.random.default_rng(10).random(16)
        )
        total = sum(w for _, w in ea.points())
        assert total == ea.n
