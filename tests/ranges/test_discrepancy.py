"""Unit tests for the low-discrepancy halving primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ParameterError
from repro.ranges import (
    Intervals1D,
    Rectangles2D,
    discrepancy_of,
    halve_points,
    morton_order,
    pair_points,
)


class TestMortonOrder:
    def test_1d_is_value_order(self):
        pts = np.array([[3.0], [1.0], [2.0]])
        assert morton_order(pts).tolist() == [1, 2, 0]

    def test_2d_permutation(self):
        pts = np.random.default_rng(1).random((64, 2))
        order = morton_order(pts)
        assert sorted(order.tolist()) == list(range(64))

    def test_locality(self):
        """Consecutive points in Morton order are near each other on
        average (much nearer than a random order)."""
        rng = np.random.default_rng(2)
        pts = rng.random((512, 2))
        order = morton_order(pts)
        ordered = pts[order]
        morton_gaps = np.linalg.norm(np.diff(ordered, axis=0), axis=1).mean()
        random_gaps = np.linalg.norm(np.diff(pts, axis=0), axis=1).mean()
        assert morton_gaps < random_gaps / 2

    def test_degenerate_identical_points(self):
        pts = np.ones((8, 2))
        assert len(morton_order(pts)) == 8

    def test_bad_shape_raises(self):
        with pytest.raises(ParameterError):
            morton_order(np.zeros((4, 3)))


class TestPairPoints:
    def test_pairs_cover_all_points(self):
        pts = np.random.default_rng(3).random((32, 2))
        pairs = pair_points(pts)
        flat = [i for pair in pairs for i in pair]
        assert sorted(flat) == list(range(32))

    def test_odd_count_raises(self):
        with pytest.raises(ParameterError):
            pair_points(np.zeros((5, 2)))


class TestHalvePoints:
    def test_output_size(self):
        space = Intervals1D()
        pts = np.random.default_rng(4).random(64)
        kept = halve_points(pts, space, rng=1)
        assert len(kept) == 32

    def test_output_subset(self):
        space = Intervals1D()
        pts = np.random.default_rng(5).random(64)
        kept = halve_points(pts, space, rng=1)
        original = set(space.check_points(pts)[:, 0].tolist())
        assert set(kept[:, 0].tolist()) <= original

    def test_1d_interval_discrepancy_tiny(self):
        """Sorted-consecutive pairing: any prefix splits at most one pair,
        so the halving error per interval is at most 1 sample."""
        space = Intervals1D()
        pts = np.sort(np.random.default_rng(6).random(256))
        kept = halve_points(pts, space, rng=2)
        full = space.check_points(pts)
        ranges = [(-np.inf, b) for b in np.linspace(0.1, 0.9, 17)]
        assert discrepancy_of(full, kept, space, ranges) <= 1

    @pytest.mark.parametrize("method", ["pair_random", "greedy"])
    def test_2d_rectangle_discrepancy_sublinear(self, method):
        space = Rectangles2D()
        pts = np.random.default_rng(7).random((512, 2))
        kept = halve_points(pts, space, rng=3, method=method)
        rng = np.random.default_rng(8)
        ranges = [
            (-np.inf, x, -np.inf, y) for x, y in rng.random((25, 2))
        ]
        disc = discrepancy_of(space.check_points(pts), kept, space, ranges)
        # a random half-sample would err ~ sqrt(n)/2 ~ 11; locality pairing
        # must do clearly better than trivial (n/2) and comparably to sqrt
        assert disc <= 3 * np.sqrt(512)

    def test_unknown_method_raises(self):
        with pytest.raises(ParameterError, match="unknown halving method"):
            halve_points(np.zeros(4), Intervals1D(), method="psychic")

    def test_greedy_deterministic_modulo_test_ranges(self):
        space = Intervals1D()
        pts = np.random.default_rng(9).random(64)
        a = halve_points(pts, space, rng=1, method="greedy")
        b = halve_points(pts, space, rng=1, method="greedy")
        assert np.array_equal(a, b)
