"""Failure-injection tests: malformed inputs, corrupt payloads, abuse.

A production library must fail loudly and specifically, never corrupt
state silently.  These tests inject the failure modes a deployment
would actually see — truncated/garbled wire payloads, mismatched
configurations meeting at a merge point, hostile numeric inputs — and
assert that (a) the right library error surfaces and (b) the receiving
summary is left unharmed.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import (
    EpsKernel,
    KLLQuantiles,
    MergeableQuantiles,
    MisraGries,
    SpaceSaving,
)
from repro.core import (
    MergeError,
    ParameterError,
    SerializationError,
    dumps,
    loads,
)


class TestCorruptPayloads:
    def test_truncated_payload(self):
        payload = dumps(MisraGries(8).extend([1, 2, 3]))
        with pytest.raises(SerializationError):
            loads(payload[: len(payload) // 2])

    def test_bitflipped_type_name(self):
        payload = dumps(MisraGries(8).extend([1, 2]))
        envelope = json.loads(payload)
        envelope["type"] = "misra_grief"
        with pytest.raises(SerializationError, match="unknown summary name"):
            loads(json.dumps(envelope))

    def test_state_for_wrong_type(self):
        """A valid envelope whose state belongs to another summary type
        must not silently produce a broken object."""
        payload = dumps(MisraGries(8).extend([1, 2]))
        envelope = json.loads(payload)
        envelope["type"] = "hyperloglog"
        with pytest.raises((SerializationError, KeyError, TypeError, ParameterError)):
            loads(json.dumps(envelope))

    def test_non_object_envelope(self):
        with pytest.raises(SerializationError):
            loads(json.dumps([1, 2, 3]))

    def test_receiver_unharmed_by_failed_merge(self):
        receiver = MisraGries(8).extend([1, 1, 2])
        before = receiver.counters()
        with pytest.raises(MergeError):
            receiver.merge(MisraGries(16).extend([3]))
        assert receiver.counters() == before
        assert receiver.n == 3


class TestConfigurationSkew:
    """Two sites drift in configuration; the merge point must catch it."""

    def test_mg_k_skew(self):
        with pytest.raises(MergeError, match="k mismatch"):
            MisraGries(64).merge(MisraGries(65))

    def test_ss_vs_mg_type_confusion(self):
        with pytest.raises(MergeError, match="identical summary types"):
            MisraGries(8).merge(SpaceSaving(8))

    def test_quantile_block_size_skew(self):
        with pytest.raises(MergeError):
            MergeableQuantiles(128).merge(MergeableQuantiles(127))

    def test_kernel_epsilon_skew(self):
        with pytest.raises(MergeError):
            EpsKernel(0.05).merge(EpsKernel(0.050001))

    def test_wire_roundtrip_preserves_merge_compatibility(self):
        a = KLLQuantiles(64, rng=1).extend([1.0, 2.0])
        b = loads(dumps(KLLQuantiles(64, rng=2).extend([3.0])))
        a.merge(b)  # must not raise
        assert a.n == 3


class TestHostileNumericInputs:
    def test_nan_values_are_storable_but_do_not_crash_rank(self):
        summary = MergeableQuantiles(16, rng=1)
        summary.extend([1.0, 2.0, float("nan")])
        # NaN compares false everywhere; rank must still answer finitely
        assert np.isfinite(summary.rank(1.5))

    def test_infinite_values_sort_to_extremes(self):
        summary = KLLQuantiles(16, rng=1).extend(
            [float("-inf"), 0.0, float("inf")]
        )
        assert summary.quantile(0.0) == float("-inf")
        assert summary.quantile(1.0) == float("inf")

    def test_huge_weights_do_not_overflow(self):
        mg = MisraGries(4)
        mg.update("x", weight=2**62)
        mg.update("y", weight=2**62)
        assert mg.estimate("x") == 2**62
        assert mg.n == 2**63

    def test_zero_and_negative_weights_rejected_everywhere(self):
        summaries = [
            MisraGries(4),
            SpaceSaving(4),
            MergeableQuantiles(16),
            KLLQuantiles(16),
        ]
        for summary in summaries:
            for bad in (0, -1):
                with pytest.raises(ParameterError):
                    summary.update(1, weight=bad)

    def test_mixed_item_types_coexist(self):
        mg = MisraGries(8).extend([1, "1", (1,), b"1", 1.5])
        assert mg.estimate(1) == 1
        assert mg.estimate("1") == 1
        assert mg.estimate((1,)) == 1


class TestAbusePatterns:
    def test_merging_a_summary_into_itself_is_rejected_or_sane(self):
        """Self-merge is a classic deployment bug (a node receives its
        own payload back).  Counts double — which is the correct multiset
        semantics — and the guarantee machinery must stay consistent."""
        mg = MisraGries(8).extend([1, 1, 2])
        clone = loads(dumps(mg))
        mg.merge(clone)
        assert mg.n == 6
        assert mg.estimate(1) == 4

    def test_thousandfold_merge_chain_stays_bounded(self):
        parts = [MisraGries(8).extend([i % 5]) for i in range(1000)]
        acc = parts[0]
        for p in parts[1:]:
            acc = acc.merge(p)
        assert acc.n == 1000
        assert acc.size() <= 8
        assert acc.deduction <= 1000 / 9

    def test_empty_merges_in_bulk(self):
        acc = MergeableQuantiles(16, rng=1)
        for i in range(50):
            acc.merge(MergeableQuantiles(16, rng=2 + i))
        assert acc.n == 0
        assert acc.size() == 0
