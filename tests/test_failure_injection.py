"""Failure-injection tests: malformed inputs, corrupt payloads, abuse.

A production library must fail loudly and specifically, never corrupt
state silently.  These tests inject the failure modes a deployment
would actually see — truncated/garbled wire payloads, mismatched
configurations meeting at a merge point, hostile numeric inputs, and
(via the fault-tolerant runtime) lost messages, crashed nodes, and
duplicated deliveries — and assert that (a) the right library error
surfaces, (b) the receiving summary is left unharmed, and (c) the
retry + merge-ledger + checkpoint machinery recovers the paper's
guarantees over whatever data actually arrived.
"""

from __future__ import annotations

import json
from collections import Counter

import numpy as np
import pytest

from repro import (
    EpsKernel,
    KLLQuantiles,
    MergeableQuantiles,
    MisraGries,
    SpaceSaving,
)
from repro.core import (
    MergeError,
    ParameterError,
    SerializationError,
    dumps,
    loads,
)
from repro.distributed import (
    ContiguousPartitioner,
    ContinuousAggregation,
    CoordinatorCrash,
    FaultModel,
    InMemoryCheckpointStore,
    MergeLedger,
    Node,
    RetryPolicy,
    balanced_tree,
    run_aggregation,
)
from repro.workloads import zipf_stream


class TestCorruptPayloads:
    def test_truncated_payload(self):
        payload = dumps(MisraGries(8).extend([1, 2, 3]))
        with pytest.raises(SerializationError):
            loads(payload[: len(payload) // 2])

    def test_bitflipped_type_name(self):
        payload = dumps(MisraGries(8).extend([1, 2]))
        envelope = json.loads(payload)
        envelope["type"] = "misra_grief"
        with pytest.raises(SerializationError, match="unknown summary name"):
            loads(json.dumps(envelope))

    def test_state_for_wrong_type(self):
        """A valid envelope whose state belongs to another summary type
        must not silently produce a broken object."""
        payload = dumps(MisraGries(8).extend([1, 2]))
        envelope = json.loads(payload)
        envelope["type"] = "hyperloglog"
        with pytest.raises((SerializationError, KeyError, TypeError, ParameterError)):
            loads(json.dumps(envelope))

    def test_non_object_envelope(self):
        with pytest.raises(SerializationError):
            loads(json.dumps([1, 2, 3]))

    def test_receiver_unharmed_by_failed_merge(self):
        receiver = MisraGries(8).extend([1, 1, 2])
        before = receiver.counters()
        with pytest.raises(MergeError):
            receiver.merge(MisraGries(16).extend([3]))
        assert receiver.counters() == before
        assert receiver.n == 3


class TestConfigurationSkew:
    """Two sites drift in configuration; the merge point must catch it."""

    def test_mg_k_skew(self):
        with pytest.raises(MergeError, match="k mismatch"):
            MisraGries(64).merge(MisraGries(65))

    def test_ss_vs_mg_type_confusion(self):
        with pytest.raises(MergeError, match="identical summary types"):
            MisraGries(8).merge(SpaceSaving(8))

    def test_quantile_block_size_skew(self):
        with pytest.raises(MergeError):
            MergeableQuantiles(128).merge(MergeableQuantiles(127))

    def test_kernel_epsilon_skew(self):
        with pytest.raises(MergeError):
            EpsKernel(0.05).merge(EpsKernel(0.050001))

    def test_wire_roundtrip_preserves_merge_compatibility(self):
        a = KLLQuantiles(64, rng=1).extend([1.0, 2.0])
        b = loads(dumps(KLLQuantiles(64, rng=2).extend([3.0])))
        a.merge(b)  # must not raise
        assert a.n == 3


class TestHostileNumericInputs:
    def test_nan_values_are_storable_but_do_not_crash_rank(self):
        summary = MergeableQuantiles(16, rng=1)
        summary.extend([1.0, 2.0, float("nan")])
        # NaN compares false everywhere; rank must still answer finitely
        assert np.isfinite(summary.rank(1.5))

    def test_infinite_values_sort_to_extremes(self):
        summary = KLLQuantiles(16, rng=1).extend(
            [float("-inf"), 0.0, float("inf")]
        )
        assert summary.quantile(0.0) == float("-inf")
        assert summary.quantile(1.0) == float("inf")

    def test_huge_weights_do_not_overflow(self):
        mg = MisraGries(4)
        mg.update("x", weight=2**62)
        mg.update("y", weight=2**62)
        assert mg.estimate("x") == 2**62
        assert mg.n == 2**63

    def test_zero_and_negative_weights_rejected_everywhere(self):
        summaries = [
            MisraGries(4),
            SpaceSaving(4),
            MergeableQuantiles(16),
            KLLQuantiles(16),
        ]
        for summary in summaries:
            for bad in (0, -1):
                with pytest.raises(ParameterError):
                    summary.update(1, weight=bad)

    def test_mixed_item_types_coexist(self):
        mg = MisraGries(8).extend([1, "1", (1,), b"1", 1.5])
        assert mg.estimate(1) == 1
        assert mg.estimate("1") == 1
        assert mg.estimate((1,)) == 1


class TestAbusePatterns:
    def test_merging_a_summary_into_itself_is_rejected_or_sane(self):
        """Self-merge is a classic deployment bug (a node receives its
        own payload back).  Counts double — which is the correct multiset
        semantics — and the guarantee machinery must stay consistent."""
        mg = MisraGries(8).extend([1, 1, 2])
        clone = loads(dumps(mg))
        mg.merge(clone)
        assert mg.n == 6
        assert mg.estimate(1) == 4

    def test_thousandfold_merge_chain_stays_bounded(self):
        parts = [MisraGries(8).extend([i % 5]) for i in range(1000)]
        acc = parts[0]
        for p in parts[1:]:
            acc = acc.merge(p)
        assert acc.n == 1000
        assert acc.size() <= 8
        assert acc.deduction <= 1000 / 9

    def test_empty_merges_in_bulk(self):
        acc = MergeableQuantiles(16, rng=1)
        for i in range(50):
            acc.merge(MergeableQuantiles(16, rng=2 + i))
        assert acc.n == 0
        assert acc.size() == 0


class TestExactlyOnceLedger:
    """At-least-once delivery + merge ledger = exactly-once merges."""

    def test_ledger_dedups_repeated_redelivery(self):
        parent = Node(node_id=0, shard=np.array([1, 1, 2]), ledger=MergeLedger())
        child = Node(node_id=1, shard=np.array([2, 3]))
        parent.build(lambda: MisraGries(8))
        child.build(lambda: MisraGries(8))
        payload = child.emit(serialize=True)
        assert parent.absorb(payload, delivery_id="d1") is True
        for _ in range(5):  # the transport keeps retransmitting
            assert parent.absorb(payload, delivery_id="d1") is False
        assert parent.summary.n == 5  # merged exactly once
        assert parent.merges_performed == 1
        assert parent.duplicates_ignored == 5

    def test_distinct_delivery_ids_do_merge(self):
        parent = Node(node_id=0, shard=np.array([1]), ledger=MergeLedger())
        child = Node(node_id=1, shard=np.array([2]))
        parent.build(lambda: MisraGries(8))
        child.build(lambda: MisraGries(8))
        assert parent.absorb(child.emit(), delivery_id="a") is True
        assert parent.absorb(child.emit(), delivery_id="b") is True
        assert parent.summary.n == 3

    def test_corrupted_redelivery_rejected_before_ledger(self):
        """A garbled retransmission must NACK (SerializationError), not
        consume the delivery ID."""
        parent = Node(node_id=0, shard=np.array([1]), ledger=MergeLedger())
        child = Node(node_id=1, shard=np.array([2, 2]))
        parent.build(lambda: MisraGries(8))
        child.build(lambda: MisraGries(8))
        payload = child.emit(serialize=True)
        with pytest.raises(SerializationError):
            parent.absorb(payload[: len(payload) // 2], delivery_id="d1")
        assert "d1" not in parent.ledger
        assert parent.absorb(payload, delivery_id="d1") is True
        assert parent.summary.n == 3

    def test_duplicates_double_count_without_ledger(self):
        """Control: exactly_once=False reproduces the at-least-once drift."""
        data = zipf_stream(4_000, alpha=1.2, universe=500, rng=2)
        faulty = run_aggregation(
            data, ContiguousPartitioner(), lambda: MisraGries(32),
            balanced_tree(8), fault_model=FaultModel(duplicate=1.0, rng=3),
            exactly_once=False,
        )
        assert faulty.summary.n > len(data)
        assert faulty.fault_stats.duplicates_merged == 7
        ledgered = run_aggregation(
            data, ContiguousPartitioner(), lambda: MisraGries(32),
            balanced_tree(8), fault_model=FaultModel(duplicate=1.0, rng=3),
        )
        assert ledgered.summary.n == len(data)
        assert ledgered.fault_stats.duplicates_suppressed == 7


class TestLossCrashCorruption:
    def test_acceptance_mix_recovers_guarantee_over_delivered_data(self):
        """The headline scenario: loss=0.2, crash=0.05, duplicate=0.2.

        The retry+ledger path must produce a root summary that is
        *exactly* a fault-free aggregation of the delivered shards: n
        matches the delivered record count (no double counting) and MG
        honors its eps bound over the delivered ground truth.
        """
        data = zipf_stream(20_000, alpha=1.2, universe=5_000, rng=9)
        k = 64
        result = run_aggregation(
            data, ContiguousPartitioner(), lambda: MisraGries(k),
            balanced_tree(16), serialize=True,
            fault_model=FaultModel(loss=0.2, crash=0.05, duplicate=0.2, rng=7),
            retry_policy=RetryPolicy(max_attempts=6),
        )
        shards = ContiguousPartitioner().split(data, 16)
        delivered = np.concatenate([shards[i] for i in result.delivered_leaves])
        assert result.summary.n == len(delivered)
        assert result.delivered_records == len(delivered)
        truth = Counter(delivered.tolist())
        bound = len(delivered) / (k + 1)
        for item, count in truth.most_common(30):
            estimate = result.summary.estimate(item)
            assert estimate <= count
            assert count - estimate <= bound

    def test_retries_mask_heavy_loss(self):
        """loss=0.5 with a deep retry budget still delivers everything."""
        data = zipf_stream(4_000, rng=4)
        result = run_aggregation(
            data, ContiguousPartitioner(), lambda: MisraGries(32),
            balanced_tree(8),
            fault_model=FaultModel(loss=0.5, rng=5),
            retry_policy=RetryPolicy(max_attempts=40),
        )
        assert result.coverage == 1.0
        assert result.fault_stats.messages_lost > 0
        assert result.fault_stats.retries >= result.fault_stats.messages_lost

    def test_total_loss_degrades_to_root_shard_only(self):
        data = zipf_stream(4_000, rng=6)
        result = run_aggregation(
            data, ContiguousPartitioner(), lambda: MisraGries(32),
            balanced_tree(8),
            fault_model=FaultModel(loss=1.0, rng=7),
            retry_policy=RetryPolicy(max_attempts=2),
        )
        assert result.delivered_leaves == [0]  # balanced_tree(8) roots at 0
        assert result.summary.n == result.delivered_records == len(data) // 8
        assert result.coverage == pytest.approx(1 / 8)
        assert result.fault_stats.deliveries_failed > 0

    def test_corruption_detected_and_retried(self):
        data = zipf_stream(4_000, rng=8)
        result = run_aggregation(
            data, ContiguousPartitioner(), lambda: MisraGries(32),
            balanced_tree(8), serialize=True,
            fault_model=FaultModel(corruption=0.5, rng=9),
            retry_policy=RetryPolicy(max_attempts=30),
        )
        stats = result.fault_stats
        assert stats.corrupted_payloads > 0
        # every injected corruption was caught by the envelope checksum
        assert stats.corruption_detected == stats.corrupted_payloads
        assert result.coverage == 1.0
        assert result.summary.n == len(data)

    def test_corruption_requires_serialization(self):
        data = zipf_stream(1_000, rng=1)
        with pytest.raises(ParameterError, match="serialize"):
            run_aggregation(
                data, ContiguousPartitioner(), lambda: MisraGries(8),
                balanced_tree(4), serialize=False,
                fault_model=FaultModel(corruption=0.5),
            )

    def test_degraded_coverage_reporting(self):
        from repro.analysis import degradation_report, degraded_frequency_bound

        data = zipf_stream(8_000, alpha=1.2, universe=1_000, rng=3)
        k = 32
        result = run_aggregation(
            data, ContiguousPartitioner(), lambda: MisraGries(k),
            balanced_tree(16),
            fault_model=FaultModel(crash=0.3, rng=12),
        )
        report = degradation_report(result)
        assert report.total_records == len(data)
        assert report.delivered_records == result.summary.n
        assert report.lost_records == len(data) - result.summary.n
        assert report.coverage == pytest.approx(result.summary.n / len(data))
        assert 0 < report.coverage < 1  # seeded: some but not all lost
        assert sorted(report.lost_leaves) == result.lost_leaves
        # the degraded bound really does cap the error vs FULL-data truth
        truth = Counter(data.tolist())
        bound = degraded_frequency_bound(k, report.delivered_records,
                                         report.lost_records)
        for item, count in truth.most_common(30):
            assert count - result.summary.estimate(item) <= bound


class TestCheckpointRecovery:
    @staticmethod
    def _epochs(seed: int = 3, epochs: int = 4, nodes: int = 6):
        rng = np.random.default_rng(seed)
        return [
            [rng.integers(0, 100, 500) for _ in range(nodes)]
            for _ in range(epochs)
        ]

    def test_crash_restore_equals_uninterrupted_run(self):
        """Kill the coordinator mid-run; after restoring from the last
        checkpoint and replaying, the serialized coordinator state must
        be byte-identical to a run that never crashed."""
        epochs = self._epochs()
        factory = lambda: MisraGries(32)  # noqa: E731
        clean = ContinuousAggregation(factory, nodes=6)
        for epoch_data in epochs:
            clean.run_epoch(epoch_data)

        store = InMemoryCheckpointStore()
        faulty = ContinuousAggregation(
            factory, nodes=6,
            fault_model=FaultModel(coordinator_crash=0.05, rng=11),
            checkpoint_store=store,
        )
        crashed = False
        for epoch_data in epochs:
            try:
                faulty.run_epoch(epoch_data)
            except CoordinatorCrash:
                crashed = True
                break
        assert crashed, "seeded run must crash; pick a new seed otherwise"
        with pytest.raises(RuntimeError, match="crashed"):
            faulty.run_epoch(epochs[0])  # dead coordinators stay dead

        restored = ContinuousAggregation.resume(
            store.latest(), factory, nodes=6, checkpoint_store=store
        )
        for epoch_data in epochs[restored.epochs_completed:]:
            restored.run_epoch(epoch_data)
        assert dumps(restored.coordinator) == dumps(clean.coordinator)
        assert restored.epochs_completed == clean.epochs_completed
        assert restored.coordinator.n == clean.coordinator.n

    def test_post_recovery_guarantee_holds(self):
        """After crash + restore + replay, MG still meets n/(k+1)."""
        epochs = self._epochs(seed=5)
        k = 32
        store = InMemoryCheckpointStore()
        agg = ContinuousAggregation(
            lambda: MisraGries(k), nodes=6,
            fault_model=FaultModel(coordinator_crash=0.1, rng=1),
            checkpoint_store=store,
        )
        replay_from = None
        for index, epoch_data in enumerate(epochs):
            try:
                agg.run_epoch(epoch_data)
            except CoordinatorCrash:
                replay_from = index
                break
        assert replay_from is not None
        agg = ContinuousAggregation.resume(
            store.latest(), lambda: MisraGries(k), nodes=6
        )
        for epoch_data in epochs[agg.epochs_completed:]:
            agg.run_epoch(epoch_data)
        truth = Counter()
        for epoch_data in epochs:
            for shard in epoch_data:
                truth.update(shard.tolist())
        n = sum(truth.values())
        assert agg.coordinator.n == n
        bound = n / (k + 1)
        for item, count in truth.most_common(30):
            estimate = agg.coordinator.estimate(item)
            assert estimate <= count
            assert count - estimate <= bound

    def test_restore_rejects_corrupted_checkpoint(self):
        from repro.distributed import Checkpoint

        agg = ContinuousAggregation(lambda: MisraGries(8), nodes=2)
        agg.run_epoch([np.array([1, 2]), np.array([3])])
        text = agg.checkpoint().to_json()
        blob = json.loads(text)
        blob["coordinator"] = blob["coordinator"].replace('"n":3', '"n":4')
        with pytest.raises(SerializationError, match="CRC"):
            Checkpoint.from_json(json.dumps(blob))
