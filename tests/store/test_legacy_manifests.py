"""Legacy (pre-chain-kernel) manifests still load, byte-identically.

Manifest format 3 carries every chain explicitly under ``chains``;
formats 1 and 2 predate the kernel — the flat store kept one implicit
chain in a top-level ``segments`` list, and the cube nested per-mask
``groups``.  These tests take a format-3 save, rewrite the manifest
into each legacy shape in place (segment containers are untouched —
the RSEG format never changed), and assert that :func:`repro.store.load`
builds the same store: identical fingerprint, identical answers.
"""

from __future__ import annotations

import json

from repro.store import CubeStore, SegmentStore, load
from repro.store.persistence import _manifest_checksum


def _rewrite_manifest(target, transform) -> None:
    path = target / "manifest.json"
    manifest = json.loads(path.read_text())
    manifest = transform(manifest)
    manifest.pop("checksum", None)
    manifest["checksum"] = _manifest_checksum(manifest)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")


def _populated_store() -> SegmentStore:
    store = SegmentStore(width=1.0, codec="binary.v1")
    store.add_member("count", "exact_counter", field="value")
    store.add_member("hot", "misra_gries", field="value", k=8)
    store.ingest(
        [{"value": i % 7} for i in range(96)],
        [float(i // 4) for i in range(96)],
    )
    store.compact()
    return store


def _populated_cube() -> CubeStore:
    cube = CubeStore(width=1.0, dims=("region", "device"), codec="binary.v1")
    cube.add_member("count", "exact_counter", field="value")
    for epoch in range(3):
        for region in ("eu", "us"):
            for device in ("mobile", "web"):
                cube.ingest(
                    [
                        {"value": (epoch + i) % 5, "region": region, "device": device}
                        for i in range(4)
                    ],
                    [float(epoch)] * 4,
                )
    cube.query(0.0, 3.0)  # log the grand-total shape so compact builds a mask
    cube.compact(budget=10**6)
    # a post-compact ingest leaves stale mask marks the manifest must carry
    cube.ingest([{"value": 1, "region": "eu", "device": "web"}], [0.25])
    return cube


def test_legacy_flat_manifest_loads(tmp_path):
    store = _populated_store()
    target = tmp_path / "store"
    store.save(target)
    expected_fp = SegmentStore.open(target).fingerprint()
    expected = store.query(3.0, 21.0)

    def to_format_1(manifest):
        (chain,) = manifest.pop("chains")
        assert chain["id"] == ["flat"]
        manifest["segments"] = chain["segments"]
        manifest["max_level"] = chain["max_level"]
        manifest["format"] = 1
        manifest.pop("kind", None)  # format 1 predates the kind tag
        manifest.pop("checksum", None)  # ...and the manifest checksum
        return manifest

    _rewrite_manifest(target, to_format_1)
    manifest = json.loads((target / "manifest.json").read_text())
    manifest.pop("checksum")  # format 1 shipped without one: still loads
    (target / "manifest.json").write_text(json.dumps(manifest))

    loaded = load(target)
    assert isinstance(loaded, SegmentStore)
    assert loaded.fingerprint() == expected_fp
    after = loaded.query(3.0, 21.0)
    assert after.n == expected.n
    assert after["count"].to_dict() == expected["count"].to_dict()


def test_legacy_cube_manifest_loads(tmp_path):
    cube = _populated_cube()
    target = tmp_path / "cube"
    cube.save(target)
    expected_fp = CubeStore.open(target).fingerprint()
    expected = {
        key: members["count"].to_dict()
        for key, members in cube.query(
            0.0, 3.0, group_by=("region",)
        ).groups.items()
    }

    def to_format_2(manifest):
        groups = []
        per_mask = {tuple(mask): [] for mask in manifest["masks"]}
        for chain in manifest.pop("chains"):
            chain_id = chain["id"]
            entry = {
                "key": chain_id[-1],
                "max_level": chain["max_level"],
                "segments": chain["segments"],
            }
            if chain_id[0] == "g":
                groups.append(entry)
            else:
                per_mask[tuple(chain_id[1])].append(entry)
        stale = {}
        for mask, coarse, epochs in manifest.pop("stale"):
            stale.setdefault(tuple(mask), []).append([coarse, epochs])
        manifest["groups"] = groups
        manifest["masks"] = [
            {
                "dims": list(mask),
                "groups": chains,
                "stale": stale.get(mask, []),
            }
            for mask, chains in per_mask.items()
        ]
        manifest["format"] = 2
        return manifest

    _rewrite_manifest(target, to_format_2)
    loaded = load(target)
    assert isinstance(loaded, CubeStore)
    assert loaded.fingerprint() == expected_fp
    got = {
        key: members["count"].to_dict()
        for key, members in loaded.query(
            0.0, 3.0, group_by=("region",)
        ).groups.items()
    }
    assert got == expected

    # a save after a legacy load rewrites the manifest at format 3 and
    # the round trip stays byte-identical
    loaded.save(target)
    manifest = json.loads((target / "manifest.json").read_text())
    assert manifest["format"] == 3
    assert manifest["kind"] == "cube"
    assert CubeStore.open(target).fingerprint() == expected_fp
