"""Exhaustive crash-injection proofs for the store's durability stack.

The invariant under test (the PR's tentpole): *after a crash at any
point during ingest, save, or compact, recovery yields either the
pre-operation or the post-operation state, byte-identical, with no
partial roll-ups served*.  "Byte-identical" is asserted through
:meth:`SegmentStore.fingerprint` — a digest over everything a query
can observe — and "any point" is literal: every operation is killed at
every mutating syscall, and every kill point is materialized under
every :data:`~tests.store.crashfs.CRASH_VARIANTS` disk outcome
(fsync-only, torn tails, lost metadata, ...).
"""

from __future__ import annotations

import os
import shutil
import struct

import pytest

from repro.store import SegmentStore

from .crashfs import (
    CRASH_VARIANTS,
    CrashFilesystem,
    SimulatedCrash,
    copy_tree,
    run_crash_sweep,
)

# one shared ingest batch: epoch 0 already exists in the seed store (so
# the op replaces a segment and invalidates roll-ups — exercising the
# GC delete path), epochs 4 and 5 are new
BATCH = [{"value": i % 5} for i in range(6)]
KEYS = [0.5, 0.75, 4.0, 4.5, 5.0, 5.5]


def _seed_store() -> SegmentStore:
    store = SegmentStore(width=1.0, codec="binary.v1")
    store.add_member("count", "exact_counter", field="value")
    store.add_member("hot", "misra_gries", field="value", k=8)
    store.ingest(
        [{"value": i % 7} for i in range(16)],
        [float(i // 4) for i in range(16)],
    )
    store.compact()
    return store


@pytest.fixture
def initial(tmp_path):
    """A committed snapshot (4 base epochs + roll-up tree) on disk."""
    target = tmp_path / "initial"
    _seed_store().save(target)
    return str(target)


def _fingerprints(initial: str, operation, scratch: str):
    """(pre_fp, post_fp): the only two states recovery may land on."""
    pre_fp = SegmentStore.open(initial).fingerprint()
    post_dir = copy_tree(initial, os.path.join(scratch, "post"))
    operation(CrashFilesystem(post_dir), post_dir)
    post_store, post_report = SegmentStore.recover(post_dir)
    assert post_report.clean  # an uncrashed run leaves nothing to fix
    post_fp = post_store.fingerprint()
    assert SegmentStore.open(post_dir).fingerprint() == post_fp
    assert post_fp != pre_fp  # the operation must actually change state
    return pre_fp, post_fp


def _assert_invariant(initial: str, operation, scratch: str) -> int:
    """Sweep every kill point x variant; return the number of states."""
    pre_fp, post_fp = _fingerprints(initial, operation, scratch)
    states = 0
    for kill, variant, crashed in run_crash_sweep(
        initial, operation, os.path.join(scratch, "sweep")
    ):
        states += 1
        context = f"kill={kill} variant={variant}"
        recovered, report = SegmentStore.recover(crashed)
        fp = recovered.fingerprint()
        assert fp in (pre_fp, post_fp), (
            f"{context}: recovery produced a third state (neither the "
            f"pre- nor the post-operation fingerprint)"
        )
        # recovery is idempotent: a second pass finds a clean store
        again, second = SegmentStore.recover(crashed)
        assert again.fingerprint() == fp, f"{context}: recovery not stable"
        assert second.clean, f"{context}: second recovery still dirty"
        # and the strict loader now serves the same answers
        assert SegmentStore.open(crashed).fingerprint() == fp, (
            f"{context}: strict open disagrees with recovery"
        )
        if report.wal_quarantined or report.segments_quarantined:
            qdir = os.path.join(crashed, "quarantine")
            assert os.path.isdir(qdir), f"{context}: quarantine dir missing"
            names = os.listdir(qdir)
            assert any(n.startswith("recovery-") for n in names), (
                f"{context}: damage quarantined without a recovery report"
            )
    assert states > 0
    return states


def op_wal_ingest(fs, root):
    """Durable ingest: WAL append + fsync, no snapshot."""
    store = SegmentStore.open(root, fs=fs)
    store.enable_wal(os.path.join(root, "wal"), fsync_every=1, fs=fs)
    store.ingest(BATCH, KEYS)


def op_save(fs, root):
    """Snapshot commit after an in-memory ingest (replaces a segment)."""
    store = SegmentStore.open(root, fs=fs)
    store.ingest(BATCH, KEYS)
    store.save(root, fs=fs)


def op_compact_save(fs, root):
    """Roll-up rebuild + snapshot commit (writes fresh roll-up files)."""
    store = SegmentStore.open(root, fs=fs)
    store.ingest(BATCH, KEYS)
    store.compact()
    store.save(root, fs=fs)


def op_full_lifecycle(fs, root):
    """WAL ingest, then snapshot + WAL retirement — the serving loop."""
    store = SegmentStore.open_durable(root, fsync_every=1, fs=fs)
    store.ingest(BATCH, KEYS)
    store.save(root, fs=fs)


@pytest.mark.parametrize(
    "operation",
    [op_wal_ingest, op_save, op_compact_save, op_full_lifecycle],
    ids=["wal-ingest", "save", "compact-save", "full-lifecycle"],
)
def test_crash_at_every_syscall(initial, tmp_path, operation):
    states = _assert_invariant(
        initial, operation, str(tmp_path / operation.__name__)
    )
    # exhaustiveness sanity: each op has many kill points, and every one
    # was tried under every variant
    assert states % len(CRASH_VARIANTS) == 0
    assert states // len(CRASH_VARIANTS) >= 5


def test_batched_wal_crash_loses_only_a_suffix(initial, tmp_path):
    """fsync_every=N: a crash may drop trailing batches but never
    reorders, interleaves, or corrupts — recovery is always an exact
    batch prefix."""
    batches = [([{"value": v}], [10.0 + v]) for v in range(5)]

    def operation(fs, root):
        store = SegmentStore.open(root, fs=fs)
        store.enable_wal(os.path.join(root, "wal"), fsync_every=3, fs=fs)
        for records, keys in batches:
            store.ingest(records, keys)

    prefix_fps = set()
    for j in range(len(batches) + 1):
        ref = copy_tree(initial, str(tmp_path / f"ref-{j}"))
        store = SegmentStore.open_durable(ref)
        for records, keys in batches[:j]:
            store.ingest(records, keys)
        prefix_fps.add(store.fingerprint())
    assert len(prefix_fps) == len(batches) + 1

    seen = set()
    for kill, variant, crashed in run_crash_sweep(
        initial, operation, str(tmp_path / "sweep")
    ):
        recovered, _report = SegmentStore.recover(crashed)
        fp = recovered.fingerprint()
        assert fp in prefix_fps, (
            f"kill={kill} variant={variant}: recovered state is not a "
            f"batch prefix"
        )
        seen.add(fp)
    # the sweep actually produced several distinct prefixes (not just
    # the trivial pre-state)
    assert len(seen) >= 3


def test_torn_wal_tail_at_every_byte(initial, tmp_path):
    """Truncate the log at every byte offset: recovery always restores
    the longest clean frame prefix and quarantines the torn tail."""
    workdir = copy_tree(initial, str(tmp_path / "wal-store"))
    store = SegmentStore.open_durable(workdir)
    store.ingest([{"value": 1}], [10.0])
    store.ingest([{"value": 2}, {"value": 3}], [11.0, 11.5])
    wal_path = store.wal.path
    data = open(wal_path, "rb").read()

    # frame boundaries: the only offsets where a cut leaves a clean file
    boundaries = {5}
    offset = 5
    while offset < len(data):
        (body_len,) = struct.unpack_from("!I", data, offset)
        offset += 8 + body_len
        boundaries.add(offset)
    assert len(boundaries) == 3  # header + two frames

    prefix_fps = []
    for j in range(3):
        ref = copy_tree(workdir, str(tmp_path / f"ref-{j}"))
        ref_wal = os.path.join(ref, "wal", os.path.basename(wal_path))
        with open(ref_wal, "rb+") as handle:
            handle.truncate(sorted(boundaries)[j])
        prefix_fps.append(SegmentStore.open(ref).fingerprint())
    assert len(set(prefix_fps)) == 3

    for cut in range(len(data)):
        crashed = copy_tree(workdir, str(tmp_path / f"cut-{cut}"))
        victim = os.path.join(crashed, "wal", os.path.basename(wal_path))
        with open(victim, "rb+") as handle:
            handle.truncate(cut)
        recovered, report = SegmentStore.recover(crashed)
        assert recovered.fingerprint() in prefix_fps, f"cut={cut}"
        if cut in boundaries:
            assert report.clean, f"cut={cut}: clean prefix quarantined"
        else:
            assert len(report.wal_quarantined) == 1, (
                f"cut={cut}: torn tail not quarantined"
            )
            quarantined = report.wal_quarantined[0]["file"]
            assert os.path.exists(quarantined), (
                f"cut={cut}: quarantined bytes were deleted, not moved"
            )
        # strict open refused the torn file before recovery, works after
        assert SegmentStore.open(crashed).fingerprint() in prefix_fps
        shutil.rmtree(crashed)


def test_no_partial_rollups_after_crash(initial, tmp_path):
    """A crash during compact+save never serves a roll-up that merges
    only part of its block: every recovered plan's answer equals the
    base-scan answer."""
    for kill, variant, crashed in run_crash_sweep(
        initial,
        op_compact_save,
        str(tmp_path / "sweep"),
        variants=("sync-only", "torn-half"),
    ):
        recovered, _report = SegmentStore.recover(crashed)
        lo, hi = recovered.key_span()
        fast = recovered.query(lo, hi, use_rollups=True)
        slow = recovered.query(lo, hi, use_rollups=False)
        assert fast["count"].to_dict() == slow["count"].to_dict(), (
            f"kill={kill} variant={variant}: roll-up answer diverges "
            f"from the base scan"
        )


class TestCrashFilesystemModel:
    """The shim's durability model itself (so harness green means
    something): volatile bytes vanish, fsync pins them, metadata undo
    restores rename/unlink victims."""

    def test_unsynced_writes_vanish_synced_stay(self, tmp_path):
        root = tmp_path / "fs"
        root.mkdir()
        fs = CrashFilesystem(str(root))
        handle = fs.open_write(str(root / "f"))
        fs.write(handle, b"durable")
        fs.fsync(handle)
        fs.write(handle, b"-volatile")
        fs.close(handle)
        fs.fsync_dir(str(root))  # commit the creation

        dest = copy_tree(str(root), str(tmp_path / "dest"))
        fs.materialize("sync-only", dest)
        assert open(os.path.join(dest, "f"), "rb").read() == b"durable"
        dest2 = copy_tree(str(root), str(tmp_path / "dest2"))
        fs.materialize("keep-all", dest2)
        assert open(os.path.join(dest2, "f"), "rb").read() == b"durable-volatile"

    def test_uncommitted_creation_vanishes(self, tmp_path):
        root = tmp_path / "fs"
        root.mkdir()
        fs = CrashFilesystem(str(root))
        handle = fs.open_write(str(root / "f"))
        fs.write(handle, b"x")
        fs.fsync(handle)
        fs.close(handle)  # no fsync_dir: the dirent is volatile
        dest = copy_tree(str(root), str(tmp_path / "dest"))
        fs.materialize("meta-lost", dest)
        assert not os.path.exists(os.path.join(dest, "f"))

    def test_replace_undo_restores_both_files(self, tmp_path):
        root = tmp_path / "fs"
        root.mkdir()
        (root / "dst").write_bytes(b"old")
        fs = CrashFilesystem(str(root))
        handle = fs.open_write(str(root / "src"))
        fs.write(handle, b"new")
        fs.fsync(handle)
        fs.close(handle)
        fs.fsync_dir(str(root))  # commit src's creation; only the
        fs.replace(str(root / "src"), str(root / "dst"))  # rename is pending
        dest = copy_tree(str(root), str(tmp_path / "dest"))
        fs.materialize("meta-lost", dest)
        assert open(os.path.join(dest, "dst"), "rb").read() == b"old"
        assert open(os.path.join(dest, "src"), "rb").read() == b"new"
        dest2 = copy_tree(str(root), str(tmp_path / "dest2"))
        fs.materialize("data-lost", dest2)
        assert open(os.path.join(dest2, "dst"), "rb").read() == b"new"

    def test_remove_undo_restores_bytes(self, tmp_path):
        root = tmp_path / "fs"
        root.mkdir()
        (root / "f").write_bytes(b"keep me")
        fs = CrashFilesystem(str(root))
        fs.remove(str(root / "f"))
        dest = copy_tree(str(root), str(tmp_path / "dest"))
        fs.materialize("sync-only", dest)
        assert open(os.path.join(dest, "f"), "rb").read() == b"keep me"
        dest2 = copy_tree(str(root), str(tmp_path / "dest2"))
        fs.materialize("keep-all", dest2)
        assert not os.path.exists(os.path.join(dest2, "f"))

    def test_kill_switch_counts_and_goes_inert(self, tmp_path):
        root = tmp_path / "fs"
        root.mkdir()
        fs = CrashFilesystem(str(root), crash_after=2)
        handle = fs.open_write(str(root / "f"))
        fs.write(handle, b"a")
        with pytest.raises(SimulatedCrash):
            fs.write(handle, b"b")
        # post-crash calls are inert, not errors (finally-blocks run)
        fs.write(handle, b"c")
        fs.close(handle)
        fs.replace(str(root / "f"), str(root / "g"))
        assert open(os.path.join(str(root), "f"), "rb").read() == b"a"
        assert not os.path.exists(os.path.join(str(root), "g"))
        assert fs.steps == 3
