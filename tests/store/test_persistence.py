"""Segment-store persistence: RSEG containers, manifest, reload fidelity."""

from __future__ import annotations

import json

import pytest

from repro.core import ParameterError, SerializationError
from repro.store import SegmentStore
from repro.store.persistence import read_segment, write_segment


def _populated_store(codec: str = "binary.v1") -> SegmentStore:
    store = SegmentStore(width=1.0, codec=codec)
    store.add_member("count", "exact_counter", field="value")
    store.add_member("hot", "misra_gries", field="value", k=8)
    store.ingest(
        [{"value": i % 7} for i in range(96)],
        [float(i // 4) for i in range(96)],
    )
    store.compact()
    return store


@pytest.mark.parametrize("codec", ["json.v2", "binary.v1"])
def test_save_open_round_trip(tmp_path, codec):
    store = _populated_store(codec)
    before = store.query(3.0, 21.0)
    report = store.save(tmp_path / "store")
    assert report["segments"] == store.num_segments + store.num_rollups
    assert report["bytes"] > 0

    loaded = SegmentStore.open(tmp_path / "store")
    assert loaded.width == store.width
    assert loaded.records == store.records
    assert loaded.num_segments == store.num_segments
    assert loaded.num_rollups == store.num_rollups
    assert set(loaded.schema) == {"count", "hot"}
    after = loaded.query(3.0, 21.0)
    assert after.n == before.n
    for name in ("count", "hot"):
        assert after[name].to_dict() == before[name].to_dict()
    assert after.plan.fan_in == before.plan.fan_in


def test_reloaded_store_keeps_growing(tmp_path):
    store = _populated_store()
    store.save(tmp_path / "store")
    loaded = SegmentStore.open(tmp_path / "store")
    with pytest.raises(ParameterError, match="after ingest"):
        loaded.add_member("late", "exact_counter", field="value")
    loaded.ingest([{"value": 3}], [2.5])
    assert loaded.records == store.records + 1
    loaded.compact()
    assert loaded.query(0.0, 24.0)["count"].n == 97


def test_save_removes_stale_segment_files(tmp_path):
    store = _populated_store()
    target = tmp_path / "store"
    store.save(target)
    stale = target / "segments" / "zzz-stale.rseg"
    stale.write_bytes(b"junk")
    store.save(target)
    assert not stale.exists()
    listed = {p.name for p in (target / "segments").iterdir()}
    manifest = json.loads((target / "manifest.json").read_text())
    assert manifest["kind"] == "store"
    referenced = {
        f"{meta['id']}.rseg"
        for chain in manifest["chains"]
        for meta in chain["segments"]
    }
    assert listed == referenced


def test_segment_container_round_trip(tmp_path):
    store = _populated_store()
    segment = store.segments()[0]
    path = tmp_path / "one.rseg"
    written = write_segment(segment, path, "binary.v1")
    assert written == path.stat().st_size
    restored = read_segment(path)
    assert restored.segment_id == segment.segment_id
    assert restored.level == segment.level
    assert restored.start == segment.start
    assert restored.count == segment.count
    assert sorted(restored.members) == sorted(segment.members)
    for name, summary in segment.members.items():
        assert restored.members[name].to_dict() == summary.to_dict()


class TestCorruption:
    def _segment_file(self, tmp_path):
        store = _populated_store()
        path = tmp_path / "seg.rseg"
        write_segment(store.segments()[0], path, "binary.v1")
        return path

    def test_bad_magic_rejected(self, tmp_path):
        path = self._segment_file(tmp_path)
        payload = bytearray(path.read_bytes())
        payload[:4] = b"XXXX"
        path.write_bytes(bytes(payload))
        with pytest.raises(SerializationError, match="segment container"):
            read_segment(path)

    def test_unknown_version_rejected(self, tmp_path):
        path = self._segment_file(tmp_path)
        payload = bytearray(path.read_bytes())
        payload[4] = 99
        path.write_bytes(bytes(payload))
        with pytest.raises(SerializationError, match="version"):
            read_segment(path)

    def test_truncation_rejected(self, tmp_path):
        path = self._segment_file(tmp_path)
        payload = path.read_bytes()
        for cut in (2, 6, len(payload) // 2, len(payload) - 1):
            path.write_bytes(payload[:cut])
            with pytest.raises(SerializationError):
                read_segment(path)

    def test_corrupt_meta_json_rejected(self, tmp_path):
        path = self._segment_file(tmp_path)
        payload = bytearray(path.read_bytes())
        payload[12] ^= 0xFF  # inside the meta JSON block
        path.write_bytes(bytes(payload))
        with pytest.raises(SerializationError):
            read_segment(path)

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(SerializationError, match="manifest"):
            SegmentStore.open(tmp_path / "nowhere")

    def test_corrupt_manifest_rejected(self, tmp_path):
        store = _populated_store()
        target = tmp_path / "store"
        store.save(target)
        (target / "manifest.json").write_text("{not json")
        with pytest.raises(SerializationError):
            SegmentStore.open(target)

    def test_missing_segment_file_rejected(self, tmp_path):
        store = _populated_store()
        target = tmp_path / "store"
        store.save(target)
        victim = next((target / "segments").iterdir())
        victim.unlink()
        with pytest.raises(SerializationError):
            SegmentStore.open(target)
