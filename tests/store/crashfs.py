"""Crash-injection filesystem for the store durability proofs.

This is the storage-layer sibling of the engine's fault injection
(PR 1/PR 5 proved *aggregation* exactly-once under injected faults;
this shim proves the same discipline for *persistence*).  It
implements the :class:`repro.core.fsio.Filesystem` seam over a real
directory tree while keeping a durability model of what a power loss
would actually preserve:

- bytes written through :meth:`CrashFilesystem.write` land in the real
  file immediately (that's the page cache), but only bytes covered by
  an :meth:`CrashFilesystem.fsync` are *durable*;
- file creation, truncating re-open, rename, and unlink are *pending
  metadata* until the containing directory is fsynced;
- every mutating call is one numbered syscall.  With
  ``crash_after=k`` the shim executes ``k`` syscalls and raises
  :class:`SimulatedCrash` on syscall ``k + 1`` (post-crash calls are
  inert no-ops so ``finally`` blocks can't keep mutating).

After a crash, :meth:`CrashFilesystem.materialize` replays the model
onto a copy of the tree to produce what a disk could plausibly hold,
one :data:`CRASH_VARIANTS` member at a time:

====================  ====================================================
``keep-all``          every write and metadata op reached disk
``sync-only``         only fsynced bytes and fsynced metadata survive
``data-lost``         metadata survived, un-fsynced bytes did not
``meta-lost``         file bytes survived, un-fsynced metadata did not
``torn-1``            sync-only, plus 1 stray byte of each unsynced tail
``torn-half``         sync-only, plus half of each unsynced tail
====================  ====================================================

Exhaustively sweeping ``crash_after`` over every syscall *times* every
variant is the harness the crash-safety invariant is proven against:
recovery must land byte-identically on the pre- or post-operation
state (:func:`run_crash_sweep`).
"""

from __future__ import annotations

import os
import shutil
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.fsio import Filesystem

__all__ = [
    "SimulatedCrash",
    "CrashFilesystem",
    "CRASH_VARIANTS",
    "copy_tree",
    "run_crash_sweep",
]

#: the post-crash disk states materialized at every kill point
CRASH_VARIANTS = (
    "keep-all",
    "sync-only",
    "data-lost",
    "meta-lost",
    "torn-1",
    "torn-half",
)


class SimulatedCrash(BaseException):
    """Injected process death at a numbered syscall.

    A ``BaseException`` so no library ``except Exception`` can swallow
    the kill — exactly like a real ``SIGKILL`` wouldn't be caught.
    """

    def __init__(self, step: int, op: str) -> None:
        super().__init__(f"simulated crash at syscall #{step} ({op})")
        self.step = step
        self.op = op


class _Handle:
    """An open file plus the relative path the model tracks it under."""

    __slots__ = ("file", "rel")

    def __init__(self, file, rel: str) -> None:
        self.file = file
        self.rel = rel


class CrashFilesystem(Filesystem):
    """The :class:`~repro.core.fsio.Filesystem` seam with a kill switch."""

    def __init__(self, root: str, crash_after: Optional[int] = None) -> None:
        self.root = str(root)
        self.crash_after = crash_after
        self.steps = 0
        self.crashed = False
        #: rel path -> bytes guaranteed on disk (untracked files are
        #: fully durable: they predate this filesystem instance)
        self.durable_len: Dict[str, int] = {}
        #: metadata ops not yet committed by a directory fsync, oldest
        #: first; each entry carries what an undo needs
        self.pending_meta: List[Dict[str, Any]] = []

    # -- bookkeeping ---------------------------------------------------

    def _rel(self, path: str) -> str:
        return os.path.relpath(str(path), self.root)

    @staticmethod
    def _dir_of(rel: str) -> str:
        return os.path.dirname(rel) or "."

    def _abs(self, rel: str) -> str:
        return os.path.join(self.root, rel)

    def _tick(self, op: str) -> bool:
        """Count one syscall; True when it should execute, raise on kill."""
        if self.crashed:
            return False
        self.steps += 1
        if self.crash_after is not None and self.steps > self.crash_after:
            self.crashed = True
            raise SimulatedCrash(self.steps, op)
        return True

    def _snapshot_file(self, rel: str) -> Tuple[bool, Optional[bytes], int]:
        path = self._abs(rel)
        if not os.path.exists(path):
            return False, None, 0
        with open(path, "rb") as handle:
            data = handle.read()
        return True, data, self.durable_len.get(rel, len(data))

    # -- mutations -----------------------------------------------------

    def open_write(self, path: str):
        rel = self._rel(path)
        if not self._tick(f"open_write {rel}"):
            return _Handle(open(os.devnull, "wb"), rel)
        existed, old_bytes, old_durable = self._snapshot_file(rel)
        if existed:
            self.pending_meta.append(
                {
                    "op": "truncate",
                    "path": rel,
                    "dir": self._dir_of(rel),
                    "old_bytes": old_bytes,
                    "old_durable": old_durable,
                }
            )
        else:
            self.pending_meta.append(
                {"op": "create", "path": rel, "dir": self._dir_of(rel)}
            )
        self.durable_len[rel] = 0
        return _Handle(open(self._abs(rel), "wb"), rel)

    def open_append(self, path: str):
        rel = self._rel(path)
        if not self._tick(f"open_append {rel}"):
            return _Handle(open(os.devnull, "wb"), rel)
        existed, _old, _durable = self._snapshot_file(rel)
        if not existed:
            self.pending_meta.append(
                {"op": "create", "path": rel, "dir": self._dir_of(rel)}
            )
            self.durable_len[rel] = 0
        else:
            self.durable_len.setdefault(
                rel, os.path.getsize(self._abs(rel))
            )
        return _Handle(open(self._abs(rel), "ab"), rel)

    def write(self, handle, data: bytes) -> None:
        if not self._tick(f"write {handle.rel} ({len(data)}B)"):
            return
        handle.file.write(data)
        handle.file.flush()  # the model's "page cache" is the real file

    def fsync(self, handle) -> None:
        if not self._tick(f"fsync {handle.rel}"):
            return
        handle.file.flush()
        self.durable_len[handle.rel] = os.path.getsize(self._abs(handle.rel))

    def close(self, handle) -> None:
        # closing is not a durability event and not a useful kill point
        handle.file.close()

    def replace(self, src: str, dst: str) -> None:
        src_rel, dst_rel = self._rel(src), self._rel(dst)
        if not self._tick(f"replace {src_rel} -> {dst_rel}"):
            return
        dst_existed, dst_bytes, dst_durable = self._snapshot_file(dst_rel)
        _existed, src_bytes, src_durable = self._snapshot_file(src_rel)
        self.pending_meta.append(
            {
                "op": "replace",
                "src": src_rel,
                "dst": dst_rel,
                "dir": self._dir_of(dst_rel),
                "dst_existed": dst_existed,
                "dst_bytes": dst_bytes,
                "dst_durable": dst_durable,
                "src_bytes": src_bytes,
                "src_durable": src_durable,
            }
        )
        os.replace(self._abs(src_rel), self._abs(dst_rel))
        self.durable_len[dst_rel] = self.durable_len.pop(
            src_rel, len(src_bytes or b"")
        )

    def remove(self, path: str) -> None:
        rel = self._rel(path)
        if not self._tick(f"remove {rel}"):
            return
        _existed, old_bytes, old_durable = self._snapshot_file(rel)
        self.pending_meta.append(
            {
                "op": "remove",
                "path": rel,
                "dir": self._dir_of(rel),
                "old_bytes": old_bytes,
                "old_durable": old_durable,
            }
        )
        os.remove(self._abs(rel))
        self.durable_len.pop(rel, None)

    def makedirs(self, path: str) -> None:
        rel = self._rel(path)
        if os.path.isdir(self._abs(rel)):
            return  # no-op, not a syscall worth a kill point
        if not self._tick(f"makedirs {rel}"):
            return
        missing: List[str] = []
        probe = rel
        while probe and probe != "." and not os.path.isdir(self._abs(probe)):
            missing.append(probe)
            probe = os.path.dirname(probe)
        os.makedirs(self._abs(rel), exist_ok=True)
        for created in reversed(missing):
            self.pending_meta.append(
                {"op": "mkdir", "path": created, "dir": self._dir_of(created)}
            )

    def fsync_dir(self, path: str) -> None:
        rel = self._rel(path)
        if not self._tick(f"fsync_dir {rel}"):
            return
        self.pending_meta = [
            op for op in self.pending_meta if op["dir"] != rel
        ]

    # -- reads (never kill points) --------------------------------------

    def read_bytes(self, path: str) -> bytes:
        with open(self._abs(self._rel(path)), "rb") as handle:
            return handle.read()

    def exists(self, path: str) -> bool:
        return os.path.exists(self._abs(self._rel(path)))

    def listdir(self, path: str) -> List[str]:
        return os.listdir(self._abs(self._rel(path)))

    # -- post-crash materialization -------------------------------------

    def materialize(self, variant: str, dest_root: str) -> None:
        """Rewrite ``dest_root`` (a copy of :attr:`root` taken *after*
        the crash) into what a disk could hold under ``variant``."""
        if variant not in CRASH_VARIANTS:
            raise ValueError(f"unknown crash variant {variant!r}")
        keep_data = variant in ("keep-all", "meta-lost")
        keep_meta = variant in ("keep-all", "data-lost")
        torn = {"torn-1": 1, "torn-half": None}.get(variant)

        def dpath(rel: str) -> str:
            return os.path.join(dest_root, rel)

        def put(rel: str, data: Optional[bytes]) -> None:
            if data is None:
                if os.path.exists(dpath(rel)):
                    os.remove(dpath(rel))
                return
            os.makedirs(os.path.dirname(dpath(rel)) or dest_root, exist_ok=True)
            with open(dpath(rel), "wb") as handle:
                handle.write(data)

        # paths the undo phase rewrites already hold their exact
        # post-crash bytes (including the [:durable] slice for un-kept
        # data); the truncation pass below must leave them alone — its
        # durable_len entries describe the files the *operation* left
        # behind, not the pre-operation bytes undo restores.  (A save
        # whose manifest shrinks would otherwise see the restored old
        # manifest truncated to the new manifest's durable length.)
        restored: set = set()

        if not keep_meta:
            # undo uncommitted metadata, newest first
            for op in reversed(self.pending_meta):
                kind = op["op"]
                if kind == "create":
                    put(op["path"], None)
                    restored.add(op["path"])
                elif kind == "mkdir":
                    shutil.rmtree(dpath(op["path"]), ignore_errors=True)
                elif kind == "truncate":
                    data = op["old_bytes"]
                    if not keep_data:
                        data = data[: op["old_durable"]]
                    put(op["path"], data)
                    restored.add(op["path"])
                elif kind == "remove":
                    data = op["old_bytes"]
                    if data is not None and not keep_data:
                        data = data[: op["old_durable"]]
                    put(op["path"], data)
                    restored.add(op["path"])
                elif kind == "replace":
                    # the rename never happened: dst reverts, src returns
                    dst_data = op["dst_bytes"] if op["dst_existed"] else None
                    src_data = op["src_bytes"]
                    if not keep_data:
                        if dst_data is not None:
                            dst_data = dst_data[: op["dst_durable"]]
                        if src_data is not None:
                            src_data = src_data[: op["src_durable"]]
                    put(op["dst"], dst_data)
                    put(op["src"], src_data)
                    restored.add(op["dst"])
                    restored.add(op["src"])

        if not keep_data:
            for rel, durable in self.durable_len.items():
                if rel in restored:
                    continue
                target = dpath(rel)
                if not os.path.isfile(target):
                    continue
                size = os.path.getsize(target)
                if size <= durable:
                    continue
                cut = durable
                if torn == 1:
                    cut = min(size, durable + 1)
                elif torn is None and variant == "torn-half":
                    cut = durable + (size - durable) // 2
                with open(target, "rb+") as handle:
                    handle.truncate(cut)


def copy_tree(src: str, dst: str) -> str:
    """Copy a directory tree (the harness's cheap disk snapshot)."""
    shutil.copytree(src, dst)
    return dst


def run_crash_sweep(
    initial: str,
    operation: Callable[[Filesystem, str], None],
    scratch: str,
    variants: Tuple[str, ...] = CRASH_VARIANTS,
) -> Iterator[Tuple[int, str, str]]:
    """Kill ``operation`` at every mutating syscall, in every variant.

    ``operation(fs, store_dir)`` must perform all its writes through
    ``fs``.  ``initial`` is the starting store directory; ``scratch``
    is a work area for the many tree copies.  Yields
    ``(kill_step, variant, crashed_dir)`` for every post-crash disk
    state — the caller runs recovery on ``crashed_dir`` and asserts the
    invariant.  The sweep is exhaustive by construction: the operation
    is first run uncrashed to count its syscalls, then every prefix
    length is killed.
    """
    probe_dir = copy_tree(initial, os.path.join(scratch, "probe"))
    probe_fs = CrashFilesystem(probe_dir)
    operation(probe_fs, probe_dir)
    total_steps = probe_fs.steps

    for kill in range(total_steps):
        crash_dir = copy_tree(initial, os.path.join(scratch, f"crash-{kill}"))
        fs = CrashFilesystem(crash_dir, crash_after=kill)
        try:
            operation(fs, crash_dir)
        except SimulatedCrash:
            pass
        else:  # pragma: no cover - sweep bound mismatch is a harness bug
            raise AssertionError(
                f"operation finished despite crash_after={kill} "
                f"(probe counted {total_steps} syscalls)"
            )
        for variant in variants:
            dest = copy_tree(
                crash_dir, os.path.join(scratch, f"disk-{kill}-{variant}")
            )
            fs.materialize(variant, dest)
            yield kill, variant, dest
            shutil.rmtree(dest, ignore_errors=True)
        shutil.rmtree(crash_dir, ignore_errors=True)
