"""Corruption matrix: every truncation offset, every header bit-flip.

The contract under test: loading a damaged store **succeeds correctly
or raises** :class:`~repro.core.exceptions.SerializationError` —
never returns wrong data, and never lets a raw ``struct.error`` /
``UnicodeDecodeError`` escape.  Swept for every codec the store can
persist with (``json.v1`` / ``json.v2`` / ``binary.v1``), because each
puts different bytes behind the same container framing.
"""

from __future__ import annotations

import os
import shutil

import pytest

from repro.core import SerializationError
from repro.store import SegmentStore
from repro.store.persistence import read_segment

CODECS = ["json.v1", "json.v2", "binary.v1"]

# RSEG magic (4) + version (1) + container crc32 (4) + meta_len (4)
_HEADER_BYTES = 13


def _saved_store(tmp_path, codec):
    store = SegmentStore(width=1.0, codec=codec)
    store.add_member("count", "exact_counter", field="value")
    store.ingest(
        [{"value": i % 3} for i in range(8)],
        [float(i // 4) for i in range(8)],
    )
    target = tmp_path / "store"
    store.save(target)
    return target, store.fingerprint()


def _segment_paths(target):
    seg_dir = target / "segments"
    return sorted(seg_dir / name for name in os.listdir(seg_dir))


def _open_correct_or_raises(target, fingerprint):
    """The matrix predicate: right answer or a loud typed error."""
    try:
        loaded = SegmentStore.open(target)
    except SerializationError:
        return "raised"
    assert loaded.fingerprint() == fingerprint, (
        "damaged store loaded with WRONG data (silent corruption)"
    )
    return "ok"


@pytest.mark.parametrize("codec", CODECS)
def test_segment_truncated_at_every_byte(tmp_path, codec):
    target, _fp = _saved_store(tmp_path, codec)
    victim = _segment_paths(target)[0]
    blob = victim.read_bytes()
    reference = read_segment(victim).fingerprint()
    for cut in range(len(blob)):
        victim.write_bytes(blob[:cut])
        with pytest.raises(SerializationError):
            read_segment(victim)
    victim.write_bytes(blob)
    assert read_segment(victim).fingerprint() == reference


@pytest.mark.parametrize("codec", CODECS)
def test_segment_header_bit_flips_all_detected(tmp_path, codec):
    """Every single-bit flip in every header field (magic, version,
    CRC, meta length) is rejected — none parses, none mislabels."""
    target, _fp = _saved_store(tmp_path, codec)
    victim = _segment_paths(target)[0]
    blob = victim.read_bytes()
    for offset in range(min(_HEADER_BYTES, len(blob))):
        for bit in range(8):
            flipped = bytearray(blob)
            flipped[offset] ^= 1 << bit
            victim.write_bytes(bytes(flipped))
            with pytest.raises(
                SerializationError,
                match=r"container|version|checksum|truncated|metadata",
            ):
                read_segment(victim)
    victim.write_bytes(blob)


@pytest.mark.parametrize("codec", CODECS)
def test_segment_body_byte_flips_all_detected(tmp_path, codec):
    """The v2 container CRC covers every post-header byte, so a flip
    anywhere — member names, frame lengths, codec payloads — raises."""
    target, _fp = _saved_store(tmp_path, codec)
    victim = _segment_paths(target)[0]
    blob = victim.read_bytes()
    for offset in range(_HEADER_BYTES, len(blob)):
        flipped = bytearray(blob)
        flipped[offset] ^= 0xFF
        victim.write_bytes(bytes(flipped))
        with pytest.raises(SerializationError):
            read_segment(victim)
    victim.write_bytes(blob)


@pytest.mark.parametrize("codec", CODECS)
def test_manifest_truncated_at_every_byte(tmp_path, codec):
    target, fingerprint = _saved_store(tmp_path, codec)
    manifest = target / "manifest.json"
    blob = manifest.read_bytes()
    outcomes = set()
    for cut in range(len(blob)):
        manifest.write_bytes(blob[:cut])
        outcomes.add(_open_correct_or_raises(target, fingerprint))
    manifest.write_bytes(blob)
    assert _open_correct_or_raises(target, fingerprint) == "ok"
    # nearly every prefix must raise; "ok" is allowed only for cuts that
    # happen to leave semantically identical JSON (e.g. the trailing
    # newline) — the predicate above already proved those were correct
    assert "raised" in outcomes


@pytest.mark.parametrize("codec", CODECS)
def test_manifest_byte_flips_never_serve_wrong_data(tmp_path, codec):
    target, fingerprint = _saved_store(tmp_path, codec)
    manifest = target / "manifest.json"
    blob = manifest.read_bytes()
    raised = 0
    for offset in range(len(blob)):
        flipped = bytearray(blob)
        flipped[offset] ^= 0xFF
        manifest.write_bytes(bytes(flipped))
        if _open_correct_or_raises(target, fingerprint) == "raised":
            raised += 1
    manifest.write_bytes(blob)
    # the manifest checksum makes flips overwhelmingly detectable; a
    # handful may land in bytes whose flip still parses to the same
    # canonical document, which the predicate proved harmless
    assert raised > len(blob) * 0.9


@pytest.mark.parametrize("codec", CODECS)
def test_wal_frame_flips_never_replay_wrong_batches(tmp_path, codec):
    """A bit-flip anywhere in a WAL frame body fails its CRC: recovery
    replays only the intact prefix, never a corrupted batch."""
    target, _fp = _saved_store(tmp_path, codec)
    store = SegmentStore.open_durable(target)
    store.ingest([{"value": 9}], [5.0])
    pre_fp = SegmentStore.open(target).fingerprint()
    wal_path = store.wal.path
    blob = open(wal_path, "rb").read()
    base_fp = None
    for offset in range(5 + 8, len(blob)):  # every body byte
        flipped = bytearray(blob)
        flipped[offset] ^= 0xFF
        with open(wal_path, "wb") as handle:
            handle.write(bytes(flipped))
        with pytest.raises(SerializationError):
            SegmentStore.open(target)
        work = tmp_path / f"work-{offset}"
        shutil.copytree(target, work)
        recovered, report = SegmentStore.recover(work)
        assert len(report.wal_quarantined) == 1
        fp = recovered.fingerprint()
        assert fp != pre_fp  # the flipped batch was not replayed
        if base_fp is None:
            base_fp = fp  # snapshot-only state
        assert fp == base_fp
        shutil.rmtree(work)
    with open(wal_path, "wb") as handle:
        handle.write(blob)
    assert SegmentStore.open(target).fingerprint() == pre_fp
