"""ViewCache: LRU behavior, capacity handling, instrumentation."""

from __future__ import annotations

import pytest

from repro.core import ParameterError
from repro.store import ViewCache


class TestViewCache:
    def test_get_put_round_trip(self):
        cache = ViewCache(capacity=2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.stats == {"hits": 1, "misses": 1, "size": 1}

    def test_lru_eviction_order(self):
        cache = ViewCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_overwrite_same_key_keeps_size(self):
        cache = ViewCache(capacity=2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2

    def test_zero_capacity_disables_caching(self):
        cache = ViewCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ParameterError):
            ViewCache(capacity=-1)

    def test_clear(self):
        cache = ViewCache(capacity=4)
        cache.put("a", 1)
        cache.clear()
        assert cache.get("a") is None
        assert len(cache) == 0
