"""Deterministic store/cube builders for the refactor-equivalence pin.

The chain-kernel refactor (unifying :class:`SegmentStore` and
:class:`CubeStore` on :mod:`repro.store.chain`) promises *behavior
preservation*: every query answer — flat range, ``where=``,
``group_by=``, and ``window=`` — must come out byte-identical to what
the pre-refactor twin stacks produced.  This module builds one store of
each kind, registry-driven (every ``STORE_MEMBERS`` entry, windowed
variants included), runs a fixed battery of queries, and reduces each
answer to a digest: the full canonical summary state hashed, plus the
plan accounting (fan-in, cells merged, slack used) that pins the
planner itself.

Run as a script to (re)generate the checked-in fixture::

    PYTHONPATH=src python -m tests.store.equivalence_harness

The fixture in ``tests/store/fixtures/equivalence.json`` was generated
by the PRE-refactor code; ``test_equivalence_fixtures.py`` asserts the
current code reproduces it exactly.  Regenerating is the escape hatch
for *intentional* behavior changes only — the mergeability envelope
(pinned independently by ``test_store.py``/``test_cube.py``) is the
semantic guarantee; this fixture pins the stronger bit-level claim the
refactor makes.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict

import numpy as np

from repro.store import CubeStore, SegmentStore

from .test_store import STORE_MEMBERS, _kind_field

FIXTURE_PATH = os.path.join(
    os.path.dirname(__file__), "fixtures", "equivalence.json"
)

FLAT_EPOCHS = 40
CUBE_EPOCHS = 16
REGIONS = ("ap", "eu", "us")
DEVICES = ("mobile", "web")


def _member_digest(summary: Any) -> Dict[str, Any]:
    canonical = json.dumps(summary.to_dict(), sort_keys=True)
    return {
        "n": summary.n,
        "sha": hashlib.sha256(canonical.encode("utf-8")).hexdigest(),
    }


def _epoch_feed(seed: int):
    rng = np.random.default_rng(seed)
    ints = rng.integers(0, 50, size=40).tolist()
    floats = rng.random(40).tolist()
    points = [p.tolist() for p in rng.random((8, 2))]
    return ints, floats, points


def _epoch_records(seed: int, tags: Dict[str, Any]):
    """Records for one epoch: every feed kind, dimension tags attached."""
    ints, floats, points = _epoch_feed(seed)
    records = []
    for i in range(len(ints)):
        record = {"ints": ints[i], "floats": floats[i], **tags}
        if i < len(points):
            record["points"] = points[i]
        records.append(record)
    return records


def _add_members(store: Any) -> None:
    for name, (kwargs, _kind) in sorted(STORE_MEMBERS.items()):
        store.add_member(name, name, field=_kind_field(name), **kwargs)


def build_flat_store() -> SegmentStore:
    """A compacted flat store: every registered member, 40 epochs."""
    store = SegmentStore(width=1.0)
    _add_members(store)
    records, keys = [], []
    for epoch in range(FLAT_EPOCHS):
        batch = _epoch_records(9000 + epoch, {})
        records.extend(batch)
        keys.extend([float(epoch)] * len(batch))
    store.ingest(records, keys)
    store.compact()
    # late re-ingest: one epoch replaced, its covering roll-ups dropped,
    # so range queries exercise the degraded-block fallback too
    late = _epoch_records(9600, {})
    store.ingest(late, [7.25] * len(late))
    return store


def build_cube() -> CubeStore:
    """A compacted two-dimension cube mirroring the flat build."""
    cube = CubeStore(width=1.0, dims=("region", "device"))
    _add_members(cube)
    records, keys = [], []
    for epoch in range(CUBE_EPOCHS):
        for r, region in enumerate(REGIONS):
            for d, device in enumerate(DEVICES):
                seed = 5000 + (epoch * len(REGIONS) + r) * len(DEVICES) + d
                batch = _epoch_records(seed, {"region": region, "device": device})
                records.extend(batch)
                keys.extend([float(epoch)] * len(batch))
    cube.ingest(records, keys)
    # log the query shapes compaction should serve, then materialize
    cube.query(0.0, float(CUBE_EPOCHS))
    cube.query(0.0, float(CUBE_EPOCHS), group_by=("region",))
    cube.query(0.0, float(CUBE_EPOCHS), where={"region": "eu"})
    cube.compact(budget=10**6)
    # late re-ingest: stale-epoch fallback on every materialized mask
    late = _epoch_records(5600, {"region": "eu", "device": "web"})
    cube.ingest(late, [3.5] * len(late))
    return cube


def _flat_result_digest(result: Any) -> Dict[str, Any]:
    return {
        "plan": {
            "fan_in": result.plan.fan_in,
            "rollup_nodes": result.plan.rollup_nodes,
            "base_covered": result.plan.base_covered,
            "degraded_blocks": result.plan.degraded_blocks,
            "window_slack_used": result.plan.window_slack_used,
            "records": result.plan.records,
        },
        "key_range": list(result.key_range),
        "members": {
            name: _member_digest(summary)
            for name, summary in sorted(result.members().items())
        },
    }


def _cube_result_digest(result: Any) -> Dict[str, Any]:
    plan = result.plan
    return {
        "plan": {
            "groups": plan.groups,
            "cells_merged": plan.cells_merged,
            "rollup_nodes": plan.rollup_nodes,
            "stale_epochs": plan.stale_epochs,
            "degraded_blocks": plan.degraded_blocks,
            "window_slack_used": plan.window_slack_used,
            "serving_mask": (
                None if plan.serving_mask is None else list(plan.serving_mask)
            ),
        },
        "key_range": list(result.key_range),
        "groups": {
            repr(key): {
                name: _member_digest(summary)
                for name, summary in sorted(members.items())
            }
            for key, members in result.groups.items()
        },
    }


def build_fixture() -> Dict[str, Any]:
    store = build_flat_store()
    flat_queries = {
        "range": store.query(3.0, 37.0),
        "range_naive": store.query(3.0, 37.0, use_rollups=False),
        "prefix": store.query(0.0, 16.0),
        "window": store.query(window=12.0),
        "window_slack": store.query(window=12.0, window_eps=0.4),
    }
    cube = build_cube()
    cube_queries = {
        "flat": cube.query(1.0, 15.0),
        "flat_naive": cube.query(1.0, 15.0, use_rollups=False),
        "where": cube.query(1.0, 15.0, where={"region": "eu"}),
        "group_by": cube.query(1.0, 15.0, group_by=("region",)),
        "group_by_naive": cube.query(
            1.0, 15.0, group_by=("region",), use_rollups=False
        ),
        "where_group": cube.query(
            1.0, 15.0, where={"device": "web"}, group_by=("region",)
        ),
        "window": cube.query(window=6.0),
        "window_slack": cube.query(
            window=6.0, window_eps=0.5, group_by=("device",)
        ),
    }
    return {
        "flat": {
            "stats": {
                "records": store.records,
                "base_segments": store.num_segments,
                "rollups": store.num_rollups,
            },
            "queries": {
                name: _flat_result_digest(result)
                for name, result in flat_queries.items()
            },
        },
        "cube": {
            "stats": {
                "records": cube.records,
                "groups": cube.num_groups,
                "base_cells": cube.num_cells,
                "masks": [list(m) for m in cube.materialized_masks()],
            },
            "queries": {
                name: _cube_result_digest(result)
                for name, result in cube_queries.items()
            },
        },
    }


def main() -> None:
    fixture = build_fixture()
    os.makedirs(os.path.dirname(FIXTURE_PATH), exist_ok=True)
    with open(FIXTURE_PATH, "w") as handle:
        json.dump(fixture, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {FIXTURE_PATH}")


if __name__ == "__main__":
    main()
