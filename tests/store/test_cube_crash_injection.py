"""Crash-injection proofs for the cube's durability stack.

The chain-kernel refactor gives :class:`CubeStore` the flat store's
whole durability surface — WAL ingest, atomic snapshots, kind-generic
recovery — so the cube must satisfy the same invariant the flat store
proves in ``test_crash_injection.py``: *after a crash at any point
during ingest, save, or compact, recovery yields either the
pre-operation or the post-operation state, byte-identical, with no
partial roll-ups served*.  Same methodology: every operation is killed
at every mutating syscall, every kill point is materialized under every
:data:`~tests.store.crashfs.CRASH_VARIANTS` disk outcome, and
"byte-identical" is :meth:`CubeStore.fingerprint` — which covers every
cell chain, the mask lattice, and the stale marks.
"""

from __future__ import annotations

import os

import pytest

from repro.store import CubeStore

from .crashfs import (
    CRASH_VARIANTS,
    CrashFilesystem,
    copy_tree,
    run_crash_sweep,
)

REGIONS = ("eu", "us")
DEVICES = ("mobile", "web")

# one shared ingest batch: epoch 0 already exists in the seed cube (so
# the op replaces a cell, drops the covering mask cells, and leaves
# stale marks the snapshot must carry), epochs 3 and 4 are new
BATCH = [
    {"value": i % 5, "region": REGIONS[i % 2], "device": DEVICES[i % 2]}
    for i in range(6)
]
KEYS = [0.5, 0.75, 3.0, 3.5, 4.0, 4.5]


def _seed_cube() -> CubeStore:
    cube = CubeStore(width=1.0, dims=("region", "device"), codec="binary.v1")
    cube.add_member("count", "exact_counter", field="value")
    cube.add_member("hot", "misra_gries", field="value", k=8)
    records, keys = [], []
    for epoch in range(3):
        for r, region in enumerate(REGIONS):
            for device in DEVICES:
                records.extend(
                    {"value": (epoch + r + i) % 7, "region": region, "device": device}
                    for i in range(4)
                )
                keys.extend([float(epoch)] * 4)
    cube.ingest(records, keys)
    cube.query(0.0, 3.0)  # log the grand-total shape compact should serve
    cube.compact(budget=10**6)
    return cube


@pytest.fixture
def initial(tmp_path):
    """A committed cube snapshot (cells + mask + time roll-ups) on disk."""
    target = tmp_path / "initial"
    _seed_cube().save(target)
    return str(target)


def _fingerprints(initial: str, operation, scratch: str):
    """(pre_fp, post_fp): the only two states recovery may land on."""
    pre_fp = CubeStore.open(initial).fingerprint()
    post_dir = copy_tree(initial, os.path.join(scratch, "post"))
    operation(CrashFilesystem(post_dir), post_dir)
    post_store, post_report = CubeStore.recover(post_dir)
    assert post_report.clean  # an uncrashed run leaves nothing to fix
    post_fp = post_store.fingerprint()
    assert CubeStore.open(post_dir).fingerprint() == post_fp
    assert post_fp != pre_fp  # the operation must actually change state
    return pre_fp, post_fp


def _assert_invariant(initial: str, operation, scratch: str) -> int:
    """Sweep every kill point x variant; return the number of states."""
    pre_fp, post_fp = _fingerprints(initial, operation, scratch)
    states = 0
    for kill, variant, crashed in run_crash_sweep(
        initial, operation, os.path.join(scratch, "sweep")
    ):
        states += 1
        context = f"kill={kill} variant={variant}"
        recovered, report = CubeStore.recover(crashed)
        assert isinstance(recovered, CubeStore), (
            f"{context}: kind-generic recovery returned the wrong kind"
        )
        fp = recovered.fingerprint()
        assert fp in (pre_fp, post_fp), (
            f"{context}: recovery produced a third state (neither the "
            f"pre- nor the post-operation fingerprint)"
        )
        # recovery is idempotent: a second pass finds a clean store
        again, second = CubeStore.recover(crashed)
        assert again.fingerprint() == fp, f"{context}: recovery not stable"
        assert second.clean, f"{context}: second recovery still dirty"
        # and the strict loader now serves the same answers
        assert CubeStore.open(crashed).fingerprint() == fp, (
            f"{context}: strict open disagrees with recovery"
        )
    assert states > 0
    return states


def op_wal_ingest(fs, root):
    """Durable cube ingest: WAL append + fsync, no snapshot."""
    cube = CubeStore.open(root, fs=fs)
    cube.enable_wal(os.path.join(root, "wal"), fsync_every=1, fs=fs)
    cube.ingest(BATCH, KEYS)


def op_save(fs, root):
    """Snapshot commit after an in-memory ingest (replaces a cell,
    leaves stale mask marks the manifest must carry)."""
    cube = CubeStore.open(root, fs=fs)
    cube.ingest(BATCH, KEYS)
    cube.save(root, fs=fs)


def op_compact_save(fs, root):
    """Mask + time roll-up rebuild, then snapshot commit."""
    cube = CubeStore.open(root, fs=fs)
    cube.ingest(BATCH, KEYS)
    cube.compact(budget=10**6)
    cube.save(root, fs=fs)


def op_full_lifecycle(fs, root):
    """WAL ingest, then snapshot + WAL retirement — the serving loop."""
    cube = CubeStore.open_durable(root, fsync_every=1, fs=fs)
    cube.ingest(BATCH, KEYS)
    cube.save(root, fs=fs)


@pytest.mark.parametrize(
    "operation",
    [op_wal_ingest, op_save, op_compact_save, op_full_lifecycle],
    ids=["wal-ingest", "save", "compact-save", "full-lifecycle"],
)
def test_crash_at_every_syscall(initial, tmp_path, operation):
    states = _assert_invariant(
        initial, operation, str(tmp_path / operation.__name__)
    )
    # exhaustiveness sanity: each op has many kill points, and every one
    # was tried under every variant
    assert states % len(CRASH_VARIANTS) == 0
    assert states // len(CRASH_VARIANTS) >= 5


def test_wal_replay_restores_cube_answers(initial, tmp_path):
    """open_durable on a crashed cube replays the WAL tail: queries
    (where=, group_by=) answer as if the crash never happened."""
    workdir = copy_tree(initial, str(tmp_path / "cube"))
    cube = CubeStore.open_durable(workdir)
    cube.ingest(BATCH, KEYS)
    expected = {
        key: members["count"].to_dict()
        for key, members in cube.query(
            0.0, 5.0, group_by=("region",)
        ).groups.items()
    }
    # "crash": drop the in-memory cube, reopen from disk (snapshot is
    # stale — the ingest lives only in the WAL)
    recovered = CubeStore.open_durable(workdir)
    assert recovered.records == cube.records
    got = {
        key: members["count"].to_dict()
        for key, members in recovered.query(
            0.0, 5.0, group_by=("region",)
        ).groups.items()
    }
    assert got == expected


def test_no_partial_rollups_after_crash(initial, tmp_path):
    """A crash during compact+save never serves a mask or time roll-up
    that merges only part of its block: every recovered grouped answer
    equals the base-scan answer."""
    for kill, variant, crashed in run_crash_sweep(
        initial,
        op_compact_save,
        str(tmp_path / "sweep"),
        variants=("sync-only", "torn-half"),
    ):
        recovered, _report = CubeStore.recover(crashed)
        lo, hi = recovered.key_span()
        fast = recovered.query(lo, hi, group_by=("region",), use_rollups=True)
        slow = recovered.query(lo, hi, group_by=("region",), use_rollups=False)
        assert sorted(fast.groups) == sorted(slow.groups)
        for key in fast.groups:
            assert (
                fast[key]["count"].to_dict() == slow[key]["count"].to_dict()
            ), (
                f"kill={kill} variant={variant} group={key}: roll-up "
                f"answer diverges from the base scan"
            )
