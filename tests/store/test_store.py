"""SegmentStore behavior + the planner ≡ naive-scan equivalence proof.

The equivalence class covers **every registered summary type** (the
suite fails loudly when a new registration dodges it): one store with
one member per type ingests S = 64 epochs, compacts the roll-up tree,
and answers a wide range query twice — through the planner's O(log S)
cover and through the naive full scan.  Both answers summarize exactly
the same records; how strongly they must agree is pinned per type:

- ``STATE_IDENTICAL`` — merge is associative (linear sketches,
  lattices, exact baselines): canonical serialized state must match
  bit-for-bit;
- bounded types reuse the merge-runtime suite's checkers (the roll-up
  tree is just another merge order, which mergeability says costs no
  accuracy);
- the rest get per-type answer checks against ground truth computed
  from the covered records.
"""

from __future__ import annotations

import json
from collections import Counter

import numpy as np
import pytest

from repro.core import ParameterError, QueryError, registered_names
from repro.store import SegmentStore, fan_in_bound
from tests.test_merge_runtime import MERGE_SPECS, SKIPPED_TYPES

# ---------------------------------------------------------------------------
# Store mechanics
# ---------------------------------------------------------------------------


def _counter_store(width: float = 1.0, **kwargs) -> SegmentStore:
    store = SegmentStore(width=width, **kwargs)
    store.add_member("count", "exact_counter", field="value")
    return store


class TestSchema:
    def test_members_fixed_after_first_ingest(self):
        store = _counter_store()
        store.ingest([{"value": 1}], [0.0])
        with pytest.raises(ParameterError, match="after ingest"):
            store.add_member("late", "exact_counter", field="value")

    def test_duplicate_member_name_rejected(self):
        store = _counter_store()
        with pytest.raises(ParameterError, match="already has a member"):
            store.add_member("count", "exact_counter", field="value")

    def test_bad_constructor_kwargs_fail_eagerly(self):
        store = SegmentStore(width=1.0)
        with pytest.raises(ParameterError, match="cannot construct"):
            store.add_member("bad", "misra_gries", field="v", wrong_kwarg=3)

    def test_unknown_codec_rejected(self):
        from repro.core import SerializationError

        with pytest.raises(SerializationError, match="unknown codec"):
            SegmentStore(width=1.0, codec="nope")

    def test_nonpositive_width_rejected(self):
        for width in (0, -1.5):
            with pytest.raises(ParameterError):
                SegmentStore(width=width)

    def test_ingest_without_members_rejected(self):
        with pytest.raises(ParameterError, match="no members"):
            SegmentStore(width=1.0).ingest([{"value": 1}])
        with pytest.raises(QueryError, match="no members"):
            SegmentStore(width=1.0).query(0.0, 1.0)


class TestIngest:
    def test_partitioning_by_key(self):
        store = _counter_store(width=10.0)
        stats = store.ingest(
            [{"value": i} for i in range(6)],
            keys=[0.0, 5.0, 10.0, 19.9, 20.0, 35.0],
        )
        assert stats == {
            "segments_created": 4,
            "segments_replaced": 0,
            "rollups_invalidated": 0,
            "records": 6,
        }
        assert store.key_span() == (0.0, 40.0)

    def test_default_keys_are_arrival_index(self):
        store = _counter_store(width=2.0)
        store.ingest([{"value": i} for i in range(4)])  # keys 0..3
        store.ingest([{"value": i} for i in range(2)])  # keys 4..5
        assert store.num_segments == 3

    def test_misaligned_keys_rejected(self):
        store = _counter_store()
        with pytest.raises(ParameterError, match="keys must align"):
            store.ingest([{"value": 1}, {"value": 2}], keys=[0.0])

    def test_non_finite_keys_rejected(self):
        store = _counter_store()
        with pytest.raises(ParameterError, match="finite"):
            store.ingest([{"value": 1}], keys=[float("nan")])

    def test_reingest_replaces_without_mutating_old_segment(self):
        store = _counter_store()
        store.ingest([{"value": 1}], [0.0])
        old = store.segments()[0]
        old_state = json.dumps(old.members["count"].to_dict(), sort_keys=True)
        store.ingest([{"value": 2}], [0.0])
        new = store.segments()[0]
        assert new.segment_id != old.segment_id
        assert new.count == 2
        # the replaced segment object is untouched (immutability)
        assert (
            json.dumps(old.members["count"].to_dict(), sort_keys=True)
            == old_state
        )

    def test_weighted_ingest(self):
        store = SegmentStore(width=1.0)
        store.add_member("hot", "misra_gries", field="value", k=4)
        store.ingest(
            [{"value": "a"}, {"value": "b"}], keys=[0.0, 0.0], weights=[5, 2]
        )
        result = store.query(0.0, 1.0)
        assert result["hot"].n == 7
        assert result["hot"].estimate("a") == 5

    def test_generation_bumps_on_ingest_and_compact(self):
        store = _counter_store()
        g0 = store.generation
        store.ingest([{"value": 1}, {"value": 2}], [0.0, 1.0])
        g1 = store.generation
        assert g1 > g0
        store.compact()
        assert store.generation > g1
        # compacting an already-compacted store builds nothing, keeps
        # the generation (cached views stay valid)
        g2 = store.generation
        assert store.compact()["rollups_built"] == 0
        assert store.generation == g2


class TestQueryCache:
    def test_repeat_query_served_from_cache(self):
        store = _counter_store()
        store.ingest([{"value": i} for i in range(8)], [float(i) for i in range(8)])
        first = store.query(0.0, 8.0)
        assert store.query(0.0, 8.0) is first
        assert store.stats()["view_cache"]["hits"] == 1

    def test_ingest_invalidates_cached_views(self):
        store = _counter_store()
        store.ingest([{"value": 1}], [0.0])
        first = store.query(0.0, 1.0)
        store.ingest([{"value": 2}], [0.0])
        second = store.query(0.0, 1.0)
        assert second is not first
        assert second.n == 2 and first.n == 1

    def test_rollup_and_naive_views_cached_separately(self):
        store = _counter_store()
        store.ingest([{"value": i} for i in range(8)], [float(i) for i in range(8)])
        store.compact()
        fast = store.query(0.0, 8.0)
        naive = store.query(0.0, 8.0, use_rollups=False)
        assert fast is not naive
        assert fast.plan.fan_in < naive.plan.fan_in

    def test_view_capacity_zero_disables_cache(self):
        store = _counter_store(view_capacity=0)
        store.ingest([{"value": 1}], [0.0])
        assert store.query(0.0, 1.0) is not store.query(0.0, 1.0)


class TestQueryResult:
    def test_member_access_and_metadata(self):
        store = _counter_store(width=10.0)
        store.ingest([{"value": i} for i in range(5)], [float(i * 7) for i in range(5)])
        result = store.query(0.0, 30.0)
        assert result["count"].n == result.n == 5
        assert "count" in result and "other" not in result
        assert result.key_range == (0.0, 30.0)
        assert set(result.members()) == {"count"}
        with pytest.raises(ParameterError, match="no store member"):
            result["other"]

    def test_empty_range_over_data_gap_yields_empty_summaries(self):
        store = _counter_store(width=1.0)
        store.ingest([{"value": 1}], [0.0])
        result = store.query(5.0, 6.0)
        assert result.n == 0
        assert result["count"].is_empty

    def test_invalid_range_rejected(self):
        store = _counter_store()
        store.ingest([{"value": 1}], [0.0])
        with pytest.raises(ParameterError, match="lo < hi"):
            store.query(3.0, 3.0)


class TestCompact:
    def test_parallel_compact_matches_serial(self):
        def build():
            store = _counter_store()
            store.ingest(
                [{"value": i % 13} for i in range(128)],
                [float(i) for i in range(128)],
            )
            return store

        serial, pooled = build(), build()
        serial.compact()
        pooled.compact(executor=3)
        assert serial.num_rollups == pooled.num_rollups
        a = serial.query(3.0, 121.0)
        b = pooled.query(3.0, 121.0)
        assert a["count"].to_dict() == b["count"].to_dict()

    def test_parallel_compact_is_fingerprint_identical_with_adapted_members(self):
        # count_min and kll ship through the shared-memory adapters of
        # the persistent runtime; the roll-ups a parallel compaction
        # builds must be indistinguishable from serial ones segment by
        # segment, not just query by query
        def build():
            store = SegmentStore(width=8.0)
            store.add_member("freq", "count_min", field="v", width=64, depth=3, seed=7)
            store.add_member("quant", "kll_quantiles", field="v", k=32, rng=5)
            rng = np.random.default_rng(11)
            values = rng.integers(0, 500, size=2000)
            store.ingest(
                [{"v": int(v)} for v in values],
                keys=list(rng.random(2000) * 128.0),
            )
            return store

        serial, pooled = build(), build()
        serial.compact()
        pooled.compact(executor=3)
        assert serial.num_rollups == pooled.num_rollups

        def states(store):
            # KLL's to_dict re-seeds its rng on every serialization, so
            # the "seed" field legitimately differs between runs; the
            # sketch's deterministic state (levels, n, tables) must not
            out = {}
            for seg in store.segments():
                members = {}
                for name, summary in seg.members.items():
                    state = summary.to_dict()
                    state.pop("seed", None)
                    members[name] = state
                out[seg.segment_id] = (seg.meta(), members)
            return out

        assert states(serial) == states(pooled)

    def test_compact_is_incremental(self):
        store = _counter_store()
        store.ingest(
            [{"value": i} for i in range(64)], [float(i) for i in range(64)]
        )
        first = store.compact()
        assert first["rollups_built"] > 0
        # new epochs only rebuild the blocks they touch
        store.ingest([{"value": 99}], [64.0])
        second = store.compact()
        assert 0 < second["rollups_built"] < first["rollups_built"] + 2

    def test_compact_empty_store_is_noop(self):
        assert _counter_store().compact() == {
            "levels": 0,
            "rollups_built": 0,
            "merge_inputs": 0,
        }


# ---------------------------------------------------------------------------
# Planner ≡ naive scan, for every registered type
# ---------------------------------------------------------------------------

EPOCHS = 64
QUERY = (5, 61)  # covers 56 epochs, mixing ragged edges and deep blocks

#: member name == registry name; (constructor kwargs, feed kind)
STORE_MEMBERS = {
    "ams_f2": ({"width": 8, "depth": 3, "seed": 1}, "ints"),
    "bloom_filter": ({"bits": 256, "hashes": 3, "seed": 1}, "ints"),
    "bottom_k_sample": ({"k": 20, "rng": 1}, "floats"),
    "conservative_count_min": ({"width": 64, "depth": 3, "seed": 1}, "ints"),
    "count_min": ({"width": 64, "depth": 3, "seed": 1}, "ints"),
    "count_sketch": ({"width": 64, "depth": 3, "seed": 1}, "ints"),
    "decayed_misra_gries": ({"k": 16, "half_life": 10.0}, "ints"),
    "dyadic_hierarchy": ({"k": 8, "bits": 8}, "ints"),
    "eps_approximation": ({"space": "intervals_1d", "s": 8, "rng": 1}, "floats"),
    "eps_kernel": ({"epsilon": 0.2}, "points"),
    "exact_counter": ({}, "ints"),
    "exact_quantiles": ({}, "floats"),
    "gk_quantiles": ({"epsilon": 0.05}, "floats"),
    "hybrid_quantiles": ({"epsilon": 0.15, "rng": 1}, "floats"),
    "hyperloglog": ({"p": 6, "seed": 1}, "ints"),
    "k_min_values": ({"k": 16, "seed": 1}, "ints"),
    "kll_quantiles": ({"k": 64, "rng": 1}, "floats"),
    "majority_vote": ({}, "ints"),
    "mergeable_quantiles": ({"s": 32, "rng": 1}, "floats"),
    "misra_gries": ({"k": 16}, "ints"),
    "moment_sketch": ({"k": 10}, "floats"),
    "mrl_quantiles": ({"s": 32}, "floats"),
    "space_saving": ({"k": 16}, "ints"),
    "windowed_misra_gries": (
        {"k": 16, "bucket_width": 5.0, "num_buckets": 8},
        "ints",
    ),
}


def _windowed_members():
    """Derive a member entry for every ``windowed.<name>`` variant.

    Count-mode with no expiry window: the store's n-accounting stays
    exact, and the EH bucket structure (which legitimately differs
    between merge orders) is checked by the generic envelope check
    below instead of bit-for-bit.
    """
    from repro.windows import windowed_names

    derived = {}
    for name in windowed_names():
        base_kwargs, kind = STORE_MEMBERS[name.split(".", 1)[1]]
        derived[name] = (
            {"eps": 0.25, "granularity": 8, **base_kwargs},
            kind,
        )
    return derived


STORE_MEMBERS.update(_windowed_members())

#: associative merges: the roll-up tree must reproduce the naive scan's
#: state bit-for-bit (canonicalized: volatile seed stripped, KMV's
#: heap order sorted)
STATE_IDENTICAL = {
    "ams_f2",
    "bloom_filter",
    "count_min",
    "count_sketch",
    "eps_kernel",
    "exact_counter",
    "exact_quantiles",
    "hyperloglog",
    "k_min_values",
    "majority_vote",
}


def _canon(summary) -> str:
    def strip(value):
        if isinstance(value, dict):
            return {k: strip(v) for k, v in value.items() if k != "seed"}
        if isinstance(value, list):
            return sorted(
                (strip(v) for v in value),
                key=lambda x: json.dumps(x, sort_keys=True),
            )
        return value

    return json.dumps(strip(summary.to_dict()), sort_keys=True)


def _check_underestimating_hitters(rollup, naive, truth, bound):
    for item, count in truth.most_common(15):
        for summary in (rollup, naive):
            estimate = summary.estimate(item)
            assert estimate <= count + 1e-9
            assert count - estimate <= bound + 1e-9, (item, count, estimate)


#: per-type answer checks for types that are neither state-identical
#: nor covered by a bounded merge spec: check(rollup, naive, feeds)
def _check_bottom_k(rollup, naive, feeds):
    # merging keeps the k smallest *tags* of the union, so the tag
    # multiset is invariant to merge order; the attached values may
    # differ only on tag ties (every segment's member shares a seed,
    # so tie tags across segments are common)
    rollup_tags = sorted(e[0] for e in rollup.to_dict()["entries"])
    naive_tags = sorted(e[0] for e in naive.to_dict()["entries"])
    assert rollup_tags == naive_tags
    assert len(rollup_tags) == 20


def _check_conservative_cm(rollup, naive, feeds):
    truth = Counter(v for feed in feeds for v in feed)
    n = sum(truth.values())
    for item, count in truth.most_common(15):
        for summary in (rollup, naive):
            estimate = summary.estimate(item)
            assert estimate >= count  # CM never underestimates
            assert estimate - count <= n / 8


def _check_decayed_mg(rollup, naive, feeds):
    truth = Counter(v for feed in feeds for v in feed)
    n = sum(truth.values())
    assert abs(rollup.decayed_total - naive.decayed_total) <= 1e-6 * n
    _check_underestimating_hitters(rollup, naive, truth, n / (16 + 1))


def _check_windowed_mg(rollup, naive, feeds):
    truth = Counter(v for feed in feeds for v in feed)
    n = sum(truth.values())
    _check_underestimating_hitters(rollup, naive, truth, n / (16 + 1))


def _check_dyadic(rollup, naive, feeds):
    truth = Counter(v for feed in feeds for v in feed)
    n = sum(truth.values())
    _check_underestimating_hitters(rollup, naive, truth, n / (8 + 1))


def _check_eps_approximation(rollup, naive, feeds):
    data = np.sort(np.concatenate([np.asarray(f) for f in feeds]))
    n = len(data)
    for lo, hi in ((0.2, 0.7), (0.0, 0.5), (0.4, 1.0)):
        true = float(((data >= lo) & (data < hi)).sum())
        for summary in (rollup, naive):
            assert abs(summary.count((lo, hi)) - true) <= 0.35 * n + 1


def _check_moment_sketch(rollup, naive, feeds):
    # power sums are float adds: associative up to rounding, so the two
    # merge orders agree to float tolerance rather than bit-for-bit
    data = np.sort(np.concatenate([np.asarray(f) for f in feeds]))
    n = len(data)
    assert rollup.n == naive.n == n
    for i in range(1, 11):
        a, b = rollup.moment(i), naive.moment(i)
        assert abs(a - b) <= 1e-9 * max(1.0, abs(a), abs(b)), i
    for q in (0.1, 0.5, 0.9):
        true_rank = q * (n - 1)
        for summary in (rollup, naive):
            estimate = summary.quantile(q)
            rank = np.searchsorted(data, estimate)
            assert abs(rank - true_rank) <= 0.05 * n + 1, (q, estimate)


def _check_windowed(name):
    """Generic equivalence check for a ``windowed.<base>`` member.

    The EH bucket layout legitimately depends on merge order (the
    cascade fires at different points along the roll-up tree vs the
    naive chain), so the check is semantic: both answers must satisfy
    the (1+eps) window-count envelope against the *true* trailing count
    (count mode: the last W of n unit-weight items is exactly W), and
    the full-window merged content must match per the base type's own
    classification — bit-for-bit for associative bases, error-bounded
    for bounded bases.  Custom-check bases (decay timelines, float
    accumulation orders) are covered by the envelope alone: their
    content checks assume one ingest order, which bucketing re-chunks.
    """
    base = name.split(".", 1)[1]

    def check(rollup, naive, feeds):
        n = rollup.n
        eps = rollup.eps
        for frac in (0.25, 0.5, 1.0):
            w = max(1, int(frac * n))
            for summary in (rollup, naive):
                bounds = summary.window_count_bounds(window=w)
                assert bounds.lower <= w <= bounds.upper
                assert (
                    bounds.upper - bounds.lower
                    <= 2 * eps * bounds.upper + summary.granularity
                )
        merged_rollup = rollup.window_query().summary
        merged_naive = naive.window_query().summary
        assert merged_rollup.n == merged_naive.n == n
        if base in STATE_IDENTICAL:
            assert _canon(merged_rollup) == _canon(merged_naive)
        elif base in MERGE_SPECS and MERGE_SPECS[base].mode == "bounded":
            MERGE_SPECS[base].check(merged_naive, merged_rollup, feeds)

    return check


CUSTOM_CHECKS = {
    "bottom_k_sample": _check_bottom_k,
    "conservative_count_min": _check_conservative_cm,
    "decayed_misra_gries": _check_decayed_mg,
    "windowed_misra_gries": _check_windowed_mg,
    "dyadic_hierarchy": _check_dyadic,
    "eps_approximation": _check_eps_approximation,
    "moment_sketch": _check_moment_sketch,
}
CUSTOM_CHECKS.update(
    {
        name: _check_windowed(name)
        for name in STORE_MEMBERS
        if name.startswith("windowed.")
    }
)


def test_every_registered_type_is_classified():
    classified = (
        set(STORE_MEMBERS)
        | set(SKIPPED_TYPES)  # same skips (and reasons) as the merge suite
    )
    missing = set(registered_names()) - classified
    assert not missing, f"store equivalence misses registered types: {missing}"
    for name in STORE_MEMBERS:
        covered = (
            name in STATE_IDENTICAL
            or name in CUSTOM_CHECKS
            or (name in MERGE_SPECS and MERGE_SPECS[name].mode == "bounded")
        )
        assert covered, f"{name} has no equivalence check"


@pytest.fixture(scope="module")
def populated():
    """One store holding every registered type, plus the per-epoch feeds."""
    store = SegmentStore(width=1.0)
    for name, (kwargs, _kind) in sorted(STORE_MEMBERS.items()):
        store.add_member(name, name, field=_kind_field(name), **kwargs)
    feeds = {"ints": [], "floats": [], "points": []}
    records, keys = [], []
    for epoch in range(EPOCHS):
        rng = np.random.default_rng(900 + epoch)
        ints = rng.integers(0, 50, size=160).tolist()
        floats = rng.random(160).tolist()
        points = list(rng.random((24, 2)))
        feeds["ints"].append(ints)
        feeds["floats"].append(floats)
        feeds["points"].append(points)
        for i in range(160):
            record = {"ints": ints[i], "floats": floats[i]}
            if i < 24:
                record["points"] = points[i]
            records.append(record)
            keys.append(float(epoch))
    store.ingest(records, keys)
    store.compact()
    return store, feeds


def _kind_field(name: str) -> str:
    return STORE_MEMBERS[name][1]


@pytest.fixture(scope="module")
def answers(populated):
    store, feeds = populated
    lo, hi = QUERY
    rollup = store.query(float(lo), float(hi))
    naive = store.query(float(lo), float(hi), use_rollups=False)
    return store, feeds, rollup, naive


def test_planner_fan_in_is_logarithmic(answers):
    _store, _feeds, rollup, naive = answers
    lo, hi = QUERY
    assert naive.plan.fan_in == hi - lo == 56
    assert rollup.plan.fan_in <= fan_in_bound(hi - lo) == 14
    assert rollup.plan.rollup_nodes >= 1
    assert rollup.plan.base_covered == naive.plan.fan_in


@pytest.mark.parametrize("name", sorted(STORE_MEMBERS))
def test_rollup_answers_match_naive_scan(answers, name):
    _store, feeds, rollup_result, naive_result = answers
    rollup, naive = rollup_result[name], naive_result[name]
    assert rollup.n == naive.n
    lo, hi = QUERY
    covered = feeds[_kind_field(name)][lo:hi]
    if name in STATE_IDENTICAL:
        assert _canon(rollup) == _canon(naive)
    elif name in CUSTOM_CHECKS:
        CUSTOM_CHECKS[name](rollup, naive, covered)
    else:
        spec = MERGE_SPECS[name]
        assert spec.mode == "bounded"
        spec.check(naive, rollup, covered)
