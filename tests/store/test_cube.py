"""Dimension-cube suite: planner covers ≡ naive full scans, for every type.

Mirrors the flat store's S=64 equivalence proof (`test_store.py`): the
cube planner may answer a query from any mix of pre-merged mask cells,
dyadic time roll-ups, and stale-epoch base-cell fallbacks — mergeability
says the answer must match the naive one-merge-per-base-cell scan.  The
same three-way classification applies:

- ``STATE_IDENTICAL`` types must match bit-for-bit (canonicalized);
- ``CUSTOM_CHECKS`` types get per-type answer checks;
- the rest reuse the merge-runtime suite's bounded checkers.

Plus the cube-specific machinery: ingest invalidation and staleness,
workload-aware budgeted compaction, planner degradation surfacing, the
view cache, fault injection through the merge engine, and persistence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ParameterError, QueryError, SerializationError
from repro.engine import FaultModel, RetryPolicy
from repro.store import CubeStore, SegmentStore, load_cube

from tests.test_merge_runtime import MERGE_SPECS

from .test_store import (
    CUSTOM_CHECKS,
    STATE_IDENTICAL,
    STORE_MEMBERS,
    _canon,
    _kind_field,
)

EPOCHS = 32
REGIONS = ("ap", "eu", "us")
QUERY = (5, 29)  # ragged edges plus deep dyadic blocks


# ---------------------------------------------------------------------------
# Registry-wide equivalence: cube cover ≡ naive scan for every type
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def populated():
    """One cube holding every registered type, plus per-(region, kind,
    epoch) feeds for ground truth."""
    cube = CubeStore(width=1.0, dims=("region",))
    for name, (kwargs, _kind) in sorted(STORE_MEMBERS.items()):
        cube.add_member(name, name, field=_kind_field(name), **kwargs)
    feeds = {
        region: {"ints": [], "floats": [], "points": []} for region in REGIONS
    }
    records, keys = [], []
    for epoch in range(EPOCHS):
        for r, region in enumerate(REGIONS):
            rng = np.random.default_rng(1700 + epoch * len(REGIONS) + r)
            ints = rng.integers(0, 50, size=60).tolist()
            floats = rng.random(60).tolist()
            points = list(rng.random((10, 2)))
            feeds[region]["ints"].append(ints)
            feeds[region]["floats"].append(floats)
            feeds[region]["points"].append(points)
            for i in range(60):
                record = {"region": region, "ints": ints[i], "floats": floats[i]}
                if i < 10:
                    record["points"] = points[i]
                records.append(record)
                keys.append(float(epoch))
    cube.ingest(records, keys)
    # log the query shapes the compactor should serve, then materialize
    cube.query(0.0, float(EPOCHS))
    cube.query(0.0, float(EPOCHS), group_by=("region",))
    cube.compact(budget=10**6)
    return cube, feeds


def _covered(feeds, name: str, regions=REGIONS) -> list:
    lo, hi = QUERY
    kind = _kind_field(name)
    return [feeds[region][kind][epoch] for region in regions for epoch in range(lo, hi)]


def _check_equivalent(name: str, rollup, naive, covered) -> None:
    assert rollup.n == naive.n
    if name in STATE_IDENTICAL:
        assert _canon(rollup) == _canon(naive)
    elif name in CUSTOM_CHECKS:
        CUSTOM_CHECKS[name](rollup, naive, covered)
    else:
        spec = MERGE_SPECS[name]
        assert spec.mode == "bounded"
        spec.check(naive, rollup, covered)


@pytest.fixture(scope="module")
def answers(populated):
    cube, feeds = populated
    lo, hi = QUERY
    rollup = cube.query(float(lo), float(hi))
    naive = cube.query(float(lo), float(hi), use_rollups=False)
    grouped = cube.query(float(lo), float(hi), group_by=("region",))
    grouped_naive = cube.query(
        float(lo), float(hi), group_by=("region",), use_rollups=False
    )
    return cube, feeds, (rollup, naive), (grouped, grouped_naive)


def test_grand_total_served_from_mask(answers):
    cube, _feeds, (rollup, naive), _ = answers
    assert rollup.plan.serving_mask == ()
    assert naive.plan.serving_mask is None
    # the mask collapses |REGIONS| chains into one: strictly fewer cells
    assert rollup.plan.cells_merged * 5 <= naive.plan.cells_merged
    assert rollup.plan.rollup_nodes >= 1


def test_group_by_served_from_time_rollups(answers):
    cube, _feeds, _, (grouped, grouped_naive) = answers
    # grouping by every dim needs the base cells (they ARE the finest
    # mask), but the dyadic time roll-ups still shrink the cover
    assert grouped.plan.serving_mask is None
    assert grouped.plan.rollup_nodes >= 1
    assert grouped.plan.cells_merged * 2 <= grouped_naive.plan.cells_merged
    assert set(grouped.keys()) == {(r,) for r in REGIONS}
    assert set(grouped_naive.keys()) == {(r,) for r in REGIONS}


@pytest.mark.parametrize("name", sorted(STORE_MEMBERS))
def test_cube_grand_total_matches_naive_scan(answers, name):
    _cube, feeds, (rollup, naive), _ = answers
    _check_equivalent(name, rollup.members[name], naive.members[name],
                      _covered(feeds, name))


@pytest.mark.parametrize("name", sorted(STORE_MEMBERS))
def test_cube_groups_match_naive_scan(answers, name):
    _cube, feeds, _, (grouped, grouped_naive) = answers
    for region in REGIONS:
        _check_equivalent(
            name,
            grouped[region][name],
            grouped_naive[region][name],
            _covered(feeds, name, regions=(region,)),
        )


def test_where_filter_matches_naive_scan(answers):
    cube, feeds, _, _ = answers
    lo, hi = QUERY
    filtered = cube.query(float(lo), float(hi), where={"region": "eu"})
    naive = cube.query(
        float(lo), float(hi), where={"region": "eu"}, use_rollups=False
    )
    for name in sorted(STORE_MEMBERS):
        _check_equivalent(
            name,
            filtered.members[name],
            naive.members[name],
            _covered(feeds, name, regions=("eu",)),
        )


# ---------------------------------------------------------------------------
# Construction and validation
# ---------------------------------------------------------------------------


def _small_cube(**kwargs) -> CubeStore:
    cube = CubeStore(width=kwargs.pop("width", 2.0),
                     dims=kwargs.pop("dims", ("region", "device")), **kwargs)
    cube.add_member("count", "exact_counter", field="v")
    return cube


def _records(n: int, seed: int = 0) -> list:
    rng = np.random.default_rng(seed)
    return [
        {
            "region": ["ap", "eu", "us"][int(rng.integers(0, 3))],
            "device": ["ios", "android"][int(rng.integers(0, 2))],
            "v": int(rng.integers(0, 20)),
        }
        for _ in range(n)
    ]


class TestValidation:
    def test_bad_width(self):
        with pytest.raises(ParameterError):
            CubeStore(width=0, dims=("a",))

    def test_no_dims(self):
        with pytest.raises(ParameterError):
            CubeStore(width=1.0, dims=())

    def test_duplicate_dims(self):
        with pytest.raises(ParameterError):
            CubeStore(width=1.0, dims=("a", "a"))

    def test_member_field_cannot_be_a_dimension(self):
        cube = CubeStore(width=1.0, dims=("region",))
        with pytest.raises(ParameterError):
            cube.add_member("count", "exact_counter", field="region")

    def test_negative_budget_rejected(self):
        cube = _small_cube()
        with pytest.raises(ParameterError):
            cube.compact(budget=-1)

    def test_record_missing_dimension(self):
        cube = _small_cube()
        with pytest.raises(ParameterError):
            cube.ingest([{"region": "eu", "v": 1}])  # no device

    def test_non_scalar_dimension_value(self):
        cube = _small_cube()
        with pytest.raises(ParameterError):
            cube.ingest([{"region": ["eu"], "device": "ios", "v": 1}])

    def test_unknown_where_dimension(self):
        cube = _small_cube()
        cube.ingest(_records(8))
        with pytest.raises(ParameterError):
            cube.query(0, 8, where={"bogus": 1})

    def test_where_and_group_by_overlap(self):
        cube = _small_cube()
        cube.ingest(_records(8))
        with pytest.raises(ParameterError):
            cube.query(0, 8, where={"region": "eu"}, group_by=("region",))

    def test_empty_range(self):
        cube = _small_cube()
        cube.ingest(_records(8))
        with pytest.raises(ParameterError):
            cube.query(5, 5)

    def test_query_without_members(self):
        cube = CubeStore(width=1.0, dims=("region",))
        with pytest.raises(QueryError):
            cube.query(0, 1)


class TestResultShape:
    def test_scalar_key_normalization(self):
        cube = _small_cube()
        cube.ingest(_records(40))
        result = cube.query(0, 40, group_by=("region",))
        assert result["eu"] is result[("eu",)]
        assert "eu" in result

    def test_members_requires_single_group(self):
        cube = _small_cube()
        cube.ingest(_records(40))
        result = cube.query(0, 40, group_by=("region",))
        with pytest.raises(QueryError):
            result.members

    def test_empty_window_yields_fresh_members(self):
        cube = _small_cube()
        cube.ingest(_records(8))
        result = cube.query(100, 120)
        assert result.members["count"].n == 0


# ---------------------------------------------------------------------------
# Staleness: ingest after compaction must never serve stale cells
# ---------------------------------------------------------------------------


class TestStaleness:
    def test_reingest_invalidates_masks_but_stays_correct(self):
        cube = _small_cube(width=4.0)
        batch = _records(200, seed=1)
        cube.ingest(batch)
        cube.query(0, cube.records)
        cube.compact(budget=10**6)
        assert () in cube.materialized_masks()

        cube.ingest(_records(120, seed=2))
        fresh = cube.query(0, cube.records)
        naive = cube.query(0, cube.records, use_rollups=False)
        assert fresh.plan.stale_epochs > 0
        assert _canon(fresh.members["count"]) == _canon(naive.members["count"])
        label_stats = cube.stats()["masks"]["()"]
        assert label_stats["stale_epochs"] > 0

    def test_recompaction_clears_stale_marks(self):
        cube = _small_cube(width=4.0)
        cube.ingest(_records(200, seed=3))
        cube.query(0, cube.records)
        cube.compact(budget=10**6)
        cube.ingest(_records(60, seed=4))
        cube.compact(budget=10**6)
        result = cube.query(0, cube.records)
        assert result.plan.stale_epochs == 0
        assert cube.stats()["masks"]["()"]["stale_epochs"] == 0
        naive = cube.query(0, cube.records, use_rollups=False)
        assert _canon(result.members["count"]) == _canon(naive.members["count"])


# ---------------------------------------------------------------------------
# Workload-aware budgeted compaction
# ---------------------------------------------------------------------------


class TestBudgetedCompaction:
    def test_zero_budget_materializes_no_masks(self):
        cube = _small_cube(width=4.0)
        cube.ingest(_records(200, seed=5))
        cube.query(0, cube.records)
        stats = cube.compact(budget=0)
        assert stats["masks"] == 0
        assert cube.materialized_masks() == []
        # time roll-ups over base cells are free of the cell budget
        assert stats["time_rollups_built"] > 0

    def test_workload_steers_mask_choice(self):
        cube = _small_cube(width=4.0)
        cube.ingest(_records(400, seed=6))
        cube.compact(
            budget=10**6, workload=[{"group_by": ["region"], "weight": 5}]
        )
        masks = cube.materialized_masks()
        assert ("region",) in masks
        assert ("device",) not in masks

    def test_budget_is_respected(self):
        cube = _small_cube(width=4.0)
        cube.ingest(_records(400, seed=7))
        budget = 30
        stats = cube.compact(
            budget=budget,
            workload=[{"group_by": ["region"]}, {"group_by": ["device"]}],
        )
        assert stats["materialized_cells"] <= budget

    def test_observed_queries_drive_default_workload(self):
        cube = _small_cube(width=4.0)
        cube.ingest(_records(300, seed=8))
        cube.query(0, cube.records, group_by=("device",))
        cube.compact(budget=10**6)
        assert ("device",) in cube.materialized_masks()

    def test_mask_serving_prefers_cheapest_cover(self):
        cube = _small_cube(width=4.0)
        cube.ingest(_records(300, seed=9))
        cube.compact(
            budget=10**6,
            workload=[{"group_by": ["region"]}, {"group_by": []}],
        )
        result = cube.query(0, cube.records)
        # the grand-total mask is strictly smaller than (region,)
        assert result.plan.serving_mask == ()


# ---------------------------------------------------------------------------
# Planner degradation surfacing and the view cache
# ---------------------------------------------------------------------------


class TestObservability:
    def test_stale_epochs_count_as_degraded(self):
        cube = _small_cube(width=4.0)
        cube.ingest(_records(200, seed=10))
        cube.query(0, cube.records)
        cube.compact(budget=10**6)
        cube.ingest(_records(80, seed=11))
        result = cube.query(0, cube.records)
        assert result.plan.stale_epochs > 0
        assert result.plan.degraded_blocks >= result.plan.stale_epochs
        assert "stale" in result.plan.describe()
        assert cube.stats()["planner"]["degraded_blocks_total"] > 0

    def test_view_cache_hits(self):
        cube = _small_cube(width=4.0, view_capacity=4)
        cube.ingest(_records(100, seed=12))
        first = cube.query(0, cube.records)
        again = cube.query(0, cube.records)
        assert again is first
        stats = cube.stats()["view_cache"]
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_view_cache_disabled(self):
        cube = _small_cube(width=4.0, view_capacity=0)
        cube.ingest(_records(100, seed=13))
        first = cube.query(0, cube.records)
        again = cube.query(0, cube.records)
        assert again is not first

    def test_ingest_invalidates_cached_views(self):
        cube = _small_cube(width=4.0)
        cube.ingest(_records(100, seed=14))
        stale_view = cube.query(0, cube.records)
        cube.ingest(_records(50, seed=15))
        fresh = cube.query(0, cube.records)
        assert fresh is not stale_view
        assert fresh.members["count"].n == 150


# ---------------------------------------------------------------------------
# Fault injection: compaction rides the merge engine's guarantees
# ---------------------------------------------------------------------------


class TestFaults:
    def test_lossy_compaction_retries_to_correctness(self):
        cube = _small_cube(width=4.0)
        cube.ingest(_records(300, seed=16))
        cube.query(0, cube.records)
        stats = cube.compact(
            budget=10**6,
            fault_model=FaultModel(loss=0.3, rng=11),
            retry_policy=RetryPolicy(max_attempts=6),
        )
        assert stats["retries"] > 0
        result = cube.query(0, cube.records)
        naive = cube.query(0, cube.records, use_rollups=False)
        assert _canon(result.members["count"]) == _canon(naive.members["count"])

    def test_exhausted_retries_leave_stale_marks_not_bad_data(self):
        cube = _small_cube(width=4.0)
        cube.ingest(_records(300, seed=17))
        cube.query(0, cube.records)
        stats = cube.compact(
            budget=10**6,
            fault_model=FaultModel(loss=0.5, rng=3),
            retry_policy=RetryPolicy(max_attempts=1),
        )
        assert stats["cells_failed"] > 0
        result = cube.query(0, cube.records)
        naive = cube.query(0, cube.records, use_rollups=False)
        assert _canon(result.members["count"]) == _canon(naive.members["count"])

    def test_corruption_model_rejected(self):
        cube = _small_cube(width=4.0)
        cube.ingest(_records(40, seed=18))
        with pytest.raises(ParameterError):
            cube.compact(fault_model=FaultModel(corruption=0.1, rng=1))


# ---------------------------------------------------------------------------
# Persistence
# ---------------------------------------------------------------------------


class TestPersistence:
    def test_round_trip_fingerprint(self, tmp_path):
        cube = _small_cube(width=4.0)
        cube.ingest(_records(200, seed=19))
        cube.query(0, cube.records)
        cube.compact(budget=10**6)
        cube.save(tmp_path / "cube")
        restored = CubeStore.open(tmp_path / "cube")
        assert restored.fingerprint() == cube.fingerprint()
        a = restored.query(0, restored.records)
        b = cube.query(0, cube.records)
        assert _canon(a.members["count"]) == _canon(b.members["count"])

    def test_stale_marks_survive_restart(self, tmp_path):
        cube = _small_cube(width=4.0)
        cube.ingest(_records(200, seed=20))
        cube.query(0, cube.records)
        cube.compact(budget=10**6)
        cube.ingest(_records(80, seed=21))  # stale-marks the masks
        cube.save(tmp_path / "cube")
        restored = CubeStore.open(tmp_path / "cube")
        assert restored.fingerprint() == cube.fingerprint()
        result = restored.query(0, restored.records)
        naive = restored.query(0, restored.records, use_rollups=False)
        assert result.plan.stale_epochs > 0
        assert _canon(result.members["count"]) == _canon(naive.members["count"])

    def test_incremental_save_reuses_cells(self, tmp_path):
        cube = _small_cube(width=4.0)
        cube.ingest(_records(200, seed=22))
        first = cube.save(tmp_path / "cube")
        cube.ingest(_records(40, seed=23))
        second = cube.save(tmp_path / "cube")
        assert second["written"] < first["written"]
        restored = CubeStore.open(tmp_path / "cube")
        assert restored.fingerprint() == cube.fingerprint()

    def test_flat_store_refuses_cube_directory(self, tmp_path):
        cube = _small_cube(width=4.0)
        cube.ingest(_records(40, seed=24))
        cube.save(tmp_path / "cube")
        with pytest.raises(SerializationError, match="CubeStore.open"):
            SegmentStore.open(tmp_path / "cube")

    def test_cube_refuses_flat_directory(self, tmp_path):
        store = SegmentStore(width=4.0)
        store.add_member("count", "exact_counter", field="v")
        store.ingest([{"v": i} for i in range(20)])
        store.save(tmp_path / "flat")
        with pytest.raises(SerializationError, match="SegmentStore.open"):
            load_cube(tmp_path / "flat")

    def test_view_capacity_survives_restart(self, tmp_path):
        cube = CubeStore(width=4.0, dims=("region",), view_capacity=3)
        cube.add_member("count", "exact_counter", field="v")
        cube.ingest(
            [{"region": "eu", "v": i} for i in range(20)]
        )
        cube.save(tmp_path / "cube")
        restored = CubeStore.open(tmp_path / "cube")
        for lo in range(5):  # 5 distinct views through a capacity-3 LRU
            restored.query(float(lo), float(lo) + 4.0)
        assert restored.stats()["view_cache"]["size"] == 3
