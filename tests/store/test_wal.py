"""Unit tests for the write-ahead ingest log (framing, policies, retire)."""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path

import pytest

from repro.core import SerializationError
from repro.store import WriteAheadLog, scan_wal, wal_files


def _read(path):
    with open(path, "rb") as handle:
        return handle.read()


def test_append_scan_round_trip(tmp_path):
    wal = WriteAheadLog(tmp_path)
    wal.append(1, [{"v": 1}, {"v": 2}], [0.0, 1.5], [3, 4])
    wal.append(2, [{"v": 9}], [2.0], None)
    wal.close()
    scan = scan_wal(wal_files(tmp_path)[0])
    assert not scan.torn
    assert scan.good_bytes == scan.total_bytes
    assert [r.seq for r in scan.records] == [1, 2]
    assert scan.records[0].records == [{"v": 1}, {"v": 2}]
    assert scan.records[0].keys == [0.0, 1.5]
    assert scan.records[0].weights == [3, 4]
    assert scan.records[1].weights is None
    assert scan.last_seq == 2


def test_each_writer_gets_a_fresh_file(tmp_path):
    first = WriteAheadLog(tmp_path)
    first.append(1, [{"v": 1}], [0.0])
    first.close()
    second = WriteAheadLog(tmp_path)
    second.append(2, [{"v": 2}], [1.0])
    second.close()
    files = wal_files(tmp_path)
    assert len(files) == 2
    assert [os.path.basename(f) for f in files] == [
        "wal-000001.log",
        "wal-000002.log",
    ]
    assert scan_wal(files[0]).last_seq == 1
    assert scan_wal(files[1]).last_seq == 2


def test_idle_writer_leaves_no_file(tmp_path):
    WriteAheadLog(tmp_path).close()
    assert wal_files(tmp_path) == []


def test_fsync_batching_policy(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync_every=3)
    wal.append(1, [{"v": 1}], [0.0])
    wal.append(2, [{"v": 2}], [1.0])
    assert wal.pending == 2
    wal.append(3, [{"v": 3}], [2.0])
    assert wal.pending == 0  # third append crossed the batch boundary
    manual = WriteAheadLog(tmp_path, fsync_every=0)
    manual.append(4, [{"v": 4}], [3.0])
    assert manual.pending == 1
    manual.sync()
    assert manual.pending == 0
    with pytest.raises(SerializationError, match="fsync_every"):
        WriteAheadLog(tmp_path, fsync_every=-1)


def test_sequence_must_be_monotonic(tmp_path):
    wal = WriteAheadLog(tmp_path)
    wal.append(5, [{"v": 1}], [0.0])
    with pytest.raises(SerializationError, match="monotonic"):
        wal.append(5, [{"v": 2}], [1.0])
    with pytest.raises(SerializationError, match="monotonic"):
        wal.append(4, [{"v": 2}], [1.0])


def test_records_must_be_json_compatible(tmp_path):
    wal = WriteAheadLog(tmp_path)
    with pytest.raises(SerializationError, match="JSON"):
        wal.append(1, [{"v": object()}], [0.0])


class TestScanDamage:
    def _wal_file(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(1, [{"v": 1}], [0.0])
        wal.append(2, [{"v": 2}], [1.0])
        wal.close()
        return Path(wal_files(tmp_path)[0])

    def test_missing_file(self, tmp_path):
        scan = scan_wal(tmp_path / "wal-000009.log")
        assert scan.torn and "cannot read" in scan.error

    def test_bad_magic(self, tmp_path):
        path = self._wal_file(tmp_path)
        data = bytearray(_read(path))
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        assert "header" in scan_wal(path).error

    def test_unsupported_version(self, tmp_path):
        path = self._wal_file(tmp_path)
        data = bytearray(_read(path))
        data[4] = 99
        path.write_bytes(bytes(data))
        assert "version" in scan_wal(path).error

    def test_crc_flip_stops_scan_at_good_prefix(self, tmp_path):
        path = self._wal_file(tmp_path)
        data = bytearray(_read(path))
        data[-1] ^= 0x01  # inside the second frame's body
        path.write_bytes(bytes(data))
        scan = scan_wal(path)
        assert scan.torn and "CRC" in scan.error
        assert [r.seq for r in scan.records] == [1]
        assert 0 < scan.good_bytes < scan.total_bytes

    def test_truncated_frame_header_and_body(self, tmp_path):
        path = self._wal_file(tmp_path)
        data = _read(path)
        path.write_bytes(data[: 5 + 3])  # mid frame header
        assert "truncated frame header" in scan_wal(path).error
        path.write_bytes(data[: 5 + 10])  # mid body
        assert "truncated frame body" in scan_wal(path).error

    def test_non_monotonic_sequence(self, tmp_path):
        path = tmp_path / "wal-000001.log"
        body = b'{"keys":[0.0],"records":[{"v":1}],"seq":1,"weights":null}'
        frame = struct.pack("!II", len(body), zlib.crc32(body)) + body
        path.write_bytes(b"RWAL\x01" + frame + frame)  # seq 1 twice
        scan = scan_wal(path)
        assert scan.torn and "non-monotonic" in scan.error
        assert [r.seq for r in scan.records] == [1]


def test_retire_removes_only_clean_covered_files(tmp_path):
    first = WriteAheadLog(tmp_path)
    first.append(1, [{"v": 1}], [0.0])
    first.close()
    second = WriteAheadLog(tmp_path)
    second.append(2, [{"v": 2}], [1.0])
    second.close()
    torn = tmp_path / "wal-000000.log"  # sorts first, damaged
    torn.write_bytes(b"RWAL\x01" + b"\x00\x00")
    wal = WriteAheadLog(tmp_path)
    assert wal.retire(1) == 1  # only wal-000001 is clean AND covered
    names = {os.path.basename(f) for f in wal_files(tmp_path)}
    assert names == {"wal-000000.log", "wal-000002.log"}
    assert wal.retire(2) == 1
    assert {os.path.basename(f) for f in wal_files(tmp_path)} == {
        "wal-000000.log"
    }


def test_retire_spares_the_active_file_with_newer_records(tmp_path):
    wal = WriteAheadLog(tmp_path)
    wal.append(1, [{"v": 1}], [0.0])
    wal.append(2, [{"v": 2}], [1.0])
    assert wal.retire(1) == 0  # active file holds seq 2 > 1
    assert len(wal_files(tmp_path)) == 1
    wal.append(3, [{"v": 3}], [2.0])  # still appendable
    wal.close()
    assert scan_wal(wal_files(tmp_path)[0]).last_seq == 3
