"""The planner proof: range queries cost O(log S) merges, never O(S).

Builds stores with S >= 64 base segments, compacts the dyadic roll-up
tree, and asserts for exhaustive and randomized ranges that the plan's
fan-in respects the segment-tree bound ``2 * ceil(log2 E) + 2`` while
the naive plan pays one merge per covered segment — plus the graceful
degradation cases (no compaction, partially invalidated tree).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ParameterError
from repro.store import SegmentStore, fan_in_bound, plan_range


def _store(num_epochs: int, compact: bool = True) -> SegmentStore:
    store = SegmentStore(width=1.0)
    store.add_member("count", "exact_counter", field="value")
    values = list(range(num_epochs * 3))
    keys = [float(i // 3) for i in range(num_epochs * 3)]
    store.ingest([{"value": v} for v in values], keys)
    assert store.num_segments == num_epochs
    if compact:
        store.compact()
    return store


class TestFanInBound:
    def test_bound_formula(self):
        assert fan_in_bound(1) == 2
        assert fan_in_bound(2) == 4
        assert fan_in_bound(64) == 14
        assert fan_in_bound(100) == 16

    @pytest.mark.parametrize("num_epochs", [64, 100, 256])
    def test_exhaustive_ranges_respect_logarithmic_fan_in(self, num_epochs):
        store = _store(num_epochs)
        step = max(1, num_epochs // 32)
        for lo in range(0, num_epochs, step):
            for hi in range(lo + 1, num_epochs + 1, step):
                plan = store.plan(float(lo), float(hi))
                bound = fan_in_bound(hi - lo)
                assert plan.fan_in <= bound, plan.describe()
                assert plan.base_covered == hi - lo
                naive = store.plan(float(lo), float(hi), use_rollups=False)
                assert naive.fan_in == hi - lo
                assert naive.rollup_nodes == 0
                assert plan.records == naive.records

    def test_full_span_collapses_to_one_node(self):
        store = _store(64)
        plan = store.plan(0.0, 64.0)
        assert plan.fan_in == 1
        assert plan.segments[0].level == 6

    def test_wide_query_beats_naive_by_a_growing_margin(self):
        store = _store(256)
        plan = store.plan(1.0, 255.0)
        naive = store.plan(1.0, 255.0, use_rollups=False)
        assert naive.fan_in == 254
        assert plan.fan_in <= fan_in_bound(254) == 18
        assert plan.rollup_nodes >= 1

    def test_randomized_ranges_with_sparse_epochs(self):
        # only every third epoch has data; present-count accounting and
        # the bound must both survive holes
        store = SegmentStore(width=1.0)
        store.add_member("count", "exact_counter", field="value")
        epochs = [e for e in range(96) if e % 3 == 0]
        store.ingest(
            [{"value": e} for e in epochs], [float(e) for e in epochs]
        )
        store.compact()
        rng = np.random.default_rng(11)
        for _ in range(50):
            lo = int(rng.integers(0, 95))
            hi = int(rng.integers(lo + 1, 97))
            plan = store.plan(float(lo), float(hi))
            assert plan.fan_in <= fan_in_bound(hi - lo)
            covered = sum(1 for e in epochs if lo <= e < hi)
            assert plan.base_covered == covered
            assert plan.records == covered


class TestGracefulDegradation:
    def test_uncompacted_store_degrades_to_base_segments(self):
        store = _store(64, compact=False)
        plan = store.plan(0.0, 64.0)
        assert plan.fan_in == 64
        assert plan.rollup_nodes == 0

    def test_invalidated_blocks_split_into_children(self):
        store = _store(64)
        # fresh ingest into epoch 10 drops every roll-up covering it
        store.ingest([{"value": -1}], [10.0])
        plan = store.plan(0.0, 64.0)
        naive = store.plan(0.0, 64.0, use_rollups=False)
        # degraded but still logarithmic: the invalidated path re-opens
        # one dyadic block per level, never the whole tree
        assert plan.fan_in <= fan_in_bound(64) + 7
        assert plan.fan_in < naive.fan_in == 64
        assert plan.records == naive.records
        # recompacting restores the single-node cover
        store.compact()
        assert store.plan(0.0, 64.0).fan_in == 1

    def test_degraded_blocks_counted_and_surfaced(self):
        store = _store(64)
        store.ingest([{"value": -1}], [10.0])  # invalidate covering blocks
        degraded = store.plan(0.0, 64.0)
        # one re-opened dyadic block per level above the fresh epoch
        assert degraded.degraded_blocks > 0
        assert f"degraded={degraded.degraded_blocks} blocks" in degraded.describe()
        assert store.stats()["planner"]["degraded_blocks_total"] >= (
            degraded.degraded_blocks
        )
        # a clean plan reports none, and describe() stays quiet about it
        store.compact()
        clean = store.plan(0.0, 64.0)
        assert clean.degraded_blocks == 0
        assert "degraded" not in clean.describe()

    def test_uncompacted_plans_count_every_missing_block(self):
        store = _store(8, compact=False)
        plan = store.plan(0.0, 8.0)
        # every dyadic block above level 0 is absent but has base data
        assert plan.degraded_blocks > 0
        assert plan.rollup_nodes == 0

    def test_plan_range_rejects_empty_range(self):
        store = _store(4)
        with pytest.raises(ParameterError):
            store.plan(3.0, 3.0)
        with pytest.raises(ParameterError):
            plan_range(5, 5, {}, {}, max_level=1)

    def test_empty_store_plans_empty_cover(self):
        plan = plan_range(0, 8, {}, {}, max_level=3)
        assert plan.fan_in == 0
        assert plan.records == 0

    def test_describe_mentions_fan_in(self):
        store = _store(8)
        text = store.plan(0.0, 8.0).describe()
        assert "fan_in=" in text and "roll-ups" in text
