"""Property-based tests (hypothesis) for the extension components.

Same discipline as the §2/§3 property suites: quantify over arbitrary
streams and split points, assert the invariant each extension claims.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frequency import DyadicHierarchy
from repro.quantiles import KLLQuantiles
from repro.sketches import BloomFilter, HyperLogLog, KMinValues

small_domain_items = st.lists(st.integers(0, 255), min_size=1, max_size=250)


def _split(stream: List[int], cut: int) -> tuple:
    cut = cut % (len(stream) + 1)
    return stream[:cut], stream[cut:]


# ---------------------------------------------------------------------------
# Dyadic hierarchy: bracketing under any stream and any split
# ---------------------------------------------------------------------------


@given(stream=small_domain_items, k=st.integers(2, 16), cut=st.integers(0, 10**6),
       lo=st.integers(0, 255), hi=st.integers(0, 255))
@settings(max_examples=100, deadline=None)
def test_hierarchy_range_brackets_truth_after_merge(stream, k, cut, lo, hi):
    if lo > hi:
        lo, hi = hi, lo
    left, right = _split(stream, cut)
    a = DyadicHierarchy(k, 8)
    b = DyadicHierarchy(k, 8)
    for x in left:
        a.update(x)
    for x in right:
        b.update(x)
    a.merge(b)
    truth = sum(1 for x in stream if lo <= x <= hi)
    assert a.range_count(lo, hi) <= truth <= a.range_count_upper(lo, hi)


@given(stream=small_domain_items, k=st.integers(2, 16))
@settings(max_examples=80, deadline=None)
def test_hierarchy_levels_conserve_total(stream, k):
    h = DyadicHierarchy(k, 8)
    for x in stream:
        h.update(x)
    # top level has a single block holding everything: exact count
    assert h.prefix_estimate(0, 8) == len(stream)
    assert h.n == len(stream)


# ---------------------------------------------------------------------------
# Distinct sketches: merged state == sequential state, any split
# ---------------------------------------------------------------------------


@given(stream=small_domain_items, cut=st.integers(0, 10**6))
@settings(max_examples=100, deadline=None)
def test_kmv_merge_equals_sequential(stream, cut):
    left, right = _split(stream, cut)
    sequential = KMinValues(16, seed=5).extend(stream)
    merged = KMinValues(16, seed=5).extend(left)
    merged.merge(KMinValues(16, seed=5).extend(right))
    assert merged.to_dict()["values"] == sequential.to_dict()["values"]


@given(stream=small_domain_items, cut=st.integers(0, 10**6))
@settings(max_examples=100, deadline=None)
def test_hll_merge_equals_sequential(stream, cut):
    left, right = _split(stream, cut)
    sequential = HyperLogLog(p=4, seed=5).extend(stream)
    merged = HyperLogLog(p=4, seed=5).extend(left)
    merged.merge(HyperLogLog(p=4, seed=5).extend(right))
    assert (merged._registers == sequential._registers).all()


@given(stream=small_domain_items)
@settings(max_examples=60, deadline=None)
def test_kmv_small_cardinality_exact(stream):
    distinct = len(set(stream))
    kmv = KMinValues(1024, seed=1).extend(stream)
    if distinct < 1024:
        assert kmv.distinct() == distinct


# ---------------------------------------------------------------------------
# Bloom: never a false negative, any split + merge
# ---------------------------------------------------------------------------


@given(stream=small_domain_items, cut=st.integers(0, 10**6))
@settings(max_examples=100, deadline=None)
def test_bloom_no_false_negatives_after_merge(stream, cut):
    left, right = _split(stream, cut)
    a = BloomFilter(256, 3, seed=2).extend(left) if left else BloomFilter(256, 3, seed=2)
    b = BloomFilter(256, 3, seed=2).extend(right) if right else BloomFilter(256, 3, seed=2)
    a.merge(b)
    for x in stream:
        assert x in a


# ---------------------------------------------------------------------------
# KLL: weight conservation and monotone ranks under splits
# ---------------------------------------------------------------------------


@given(
    values=st.lists(
        st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=200,
    ),
    cut=st.integers(0, 10**6),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=100, deadline=None)
def test_kll_weight_conserved_after_merge(values, cut, seed):
    left, right = _split(values, cut)
    a = KLLQuantiles(16, rng=seed).extend(left) if left else KLLQuantiles(16, rng=seed)
    b = KLLQuantiles(16, rng=seed + 1).extend(right) if right else KLLQuantiles(
        16, rng=seed + 1
    )
    a.merge(b)
    total = sum((2**level) * len(buf) for level, buf in enumerate(a._levels))
    assert total == a.n == len(values)


@given(
    values=st.lists(
        st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=150,
    ),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=80, deadline=None)
def test_kll_rank_monotone(values, seed):
    kll = KLLQuantiles(16, rng=seed).extend(values)
    probes = sorted(set(values))
    ranks = [kll.rank(x) for x in probes]
    assert ranks == sorted(ranks)
    assert ranks[-1] <= len(values)


@given(
    values=st.lists(
        st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=150,
    ),
    q=st.floats(0, 1),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=80, deadline=None)
def test_kll_quantile_returns_input_value(values, q, seed):
    kll = KLLQuantiles(16, rng=seed).extend(values)
    assert kll.quantile(q) in set(float(v) for v in values)
