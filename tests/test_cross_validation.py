"""Cross-validation between independent implementations of the same math.

Several components of this library answer the *same question* through
different code paths; agreement between them is a strong correctness
signal that no single-implementation test can give:

- quantile summaries and the 1-D eps-approximation both estimate ranks
  (an interval count IS a rank difference);
- the MG heap implementation and the explicit float implementation
  inside DecayedMisraGries (at zero decay) realize the same algorithm;
- the eps-kernel and the convex hull agree on every grid direction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import EpsApproximation, EpsKernel, MergeableQuantiles, MisraGries
from repro.decay import DecayedMisraGries
from repro.kernels import convex_hull, directional_width
from repro.workloads import value_stream, zipf_stream


class TestQuantileVsEpsApproximation:
    """Section 3.2 is the 1-D case of Section 4: both structures use the
    identical block/halving machinery, so at equal s their rank errors
    must be of the same magnitude."""

    def test_rank_errors_same_magnitude(self):
        data = value_stream(2**14, "uniform", rng=1)
        s = 128
        mq = MergeableQuantiles(s, rng=2).extend(data)
        ea = EpsApproximation("intervals_1d", s=s, rng=3).extend_points(data)
        data_sorted = np.sort(data)
        mq_errs, ea_errs = [], []
        for b in np.linspace(0.05, 0.95, 19):
            true = float(np.searchsorted(data_sorted, b, side="right"))
            mq_errs.append(abs(mq.rank(b) - true))
            ea_errs.append(abs(ea.count((-np.inf, b)) - true))
        assert max(ea_errs) <= 10 * max(max(mq_errs), 1)
        assert max(mq_errs) <= 10 * max(max(ea_errs), 1)

    def test_both_conserve_weight(self):
        data = value_stream(5_000, "uniform", rng=4)
        s = 64
        mq = MergeableQuantiles(s, rng=5).extend(data)
        ea = EpsApproximation("intervals_1d", s=s, rng=6).extend_points(data)
        assert mq.rank(2.0) == len(data)
        assert ea.count((-np.inf, 2.0)) == len(data)


class TestMisraGriesVsDecayedAtZeroDecay:
    """With all events at one timestamp, DecayedMisraGries runs plain MG
    with float arithmetic: the two independent implementations (lazy
    heap vs explicit dict) must produce identical counters."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_counters_identical(self, seed):
        stream = zipf_stream(5_000, alpha=1.1, universe=300, rng=seed).tolist()
        k = 16
        # feed both implementations the identical per-item sequence
        # (batched extend pre-aggregates, which is only semantically —
        # not state-level — equivalent for order-dependent MG)
        mg = MisraGries(k)
        dmg = DecayedMisraGries(k, half_life=1e9)
        for item in stream:
            mg.update(item)
            dmg.observe(item, 0.0)
        mg_counters = {item: float(v) for item, v in mg.counters().items()}
        dmg_counters = {
            item: round(v, 6) for item, v in dmg.counters().items()
        }
        assert dmg_counters == {i: round(v, 6) for i, v in mg_counters.items()}
        assert dmg.deduction == pytest.approx(mg.deduction)


class TestKernelVsHull:
    """On the kernel's own grid directions the kernel is *exact*: its
    extreme points coincide with the hull's extremes."""

    def test_exact_on_grid_directions(self):
        rng = np.random.default_rng(7)
        pts = rng.normal(size=(2_000, 2))
        kernel = EpsKernel(0.05).extend_points(pts)
        hull = convex_hull(pts)
        for u in kernel._directions:
            assert kernel.width(u) == pytest.approx(directional_width(hull, u))

    def test_kernel_hull_is_subset_of_true_hull_extremes(self):
        rng = np.random.default_rng(8)
        pts = rng.normal(size=(1_000, 2))
        kernel = EpsKernel(0.1).extend_points(pts)
        hull_set = {tuple(np.round(p, 9)) for p in convex_hull(pts)}
        for p in convex_hull(kernel.kernel_points()):
            assert tuple(np.round(p, 9)) in hull_set
