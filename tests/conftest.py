"""Shared fixtures for the repro test suite."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.workloads import zipf_stream


@pytest.fixture
def rng():
    """A seeded generator; tests stay deterministic."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def zipf_items():
    """A medium Zipf stream as a Python-int list (session-cached)."""
    return zipf_stream(20_000, alpha=1.2, universe=5_000, rng=7).tolist()


@pytest.fixture(scope="session")
def zipf_truth(zipf_items):
    """Exact counts for :func:`zipf_items`."""
    return Counter(zipf_items)


@pytest.fixture(scope="session")
def uniform_values():
    """A medium real-valued uniform stream (session-cached)."""
    return np.random.default_rng(11).random(2**14)
