"""Protocol-conformance suite: every registered summary, same contract.

Parametrized over all registered summary types, these tests pin the
library-wide invariants that make summaries interchangeable behind the
`Summary` protocol:

- fresh summaries are empty;
- `merge` adds `n` exactly and leaves the other operand untouched;
- `merge` accepts a wire-round-tripped operand;
- serialization preserves `n` and `size`;
- `compatible_with` accepts an identically configured twin;
- `update` rejects non-positive weights.

A new summary type only needs a `Spec` entry here (and the suite fails
loudly if a registered type forgets to add one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np
import pytest

from repro.core import ParameterError, Summary, dumps, loads, registered_names

# ---------------------------------------------------------------------------
# Per-type specifications
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Spec:
    name: str
    factory: Callable[[], Summary]
    feed_a: Callable[[], list]
    feed_b: Callable[[], list]
    #: lattice summaries (idempotent joins) vs additive ones
    supports_plain_update: bool = True


def _items(seed: int, n: int = 120) -> list:
    return np.random.default_rng(seed).integers(0, 40, size=n).tolist()


def _values(seed: int, n: int = 120) -> list:
    return np.random.default_rng(seed).random(n).tolist()


def _points(seed: int, n: int = 40) -> list:
    return list(np.random.default_rng(seed).random((n, 2)))


def _specs() -> List[Spec]:
    from repro.decay import DecayedMisraGries, WindowedMisraGries
    from repro.frequency import (
        ConservativeCountMin,
        DyadicHierarchy,
        CountMin,
        CountSketch,
        ExactCounter,
        MajorityVote,
        MisraGries,
        SpaceSaving,
    )
    from repro.kernels import EpsKernel
    from repro.quantiles import (
        BottomKSample,
        EqualWeightQuantiles,
        ExactQuantiles,
        GKQuantiles,
        HybridQuantiles,
        KLLQuantiles,
        MergeableQuantiles,
        MomentSketch,
        MRLQuantiles,
    )
    from repro.ranges import EpsApproximation
    from repro.sketches import AmsF2Sketch, BloomFilter, HyperLogLog, KMinValues

    def decayed_factory():
        return DecayedMisraGries(8, half_life=10.0)

    def windowed_factory():
        import warnings

        with warnings.catch_warnings():
            # deprecated alias; the deprecation itself is pinned in
            # tests/windows/test_windowed.py
            warnings.simplefilter("ignore", DeprecationWarning)
            return WindowedMisraGries(8, bucket_width=5.0, num_buckets=8)

    return [
        Spec("misra_gries", lambda: MisraGries(8), lambda: _items(1), lambda: _items(2)),
        Spec("space_saving", lambda: SpaceSaving(8), lambda: _items(3), lambda: _items(4)),
        Spec("majority_vote", MajorityVote, lambda: _items(5), lambda: _items(6)),
        Spec("count_min", lambda: CountMin(16, 3, seed=1), lambda: _items(7), lambda: _items(8)),
        Spec(
            "conservative_count_min",
            lambda: ConservativeCountMin(16, 3, seed=1),
            lambda: _items(9),
            lambda: _items(10),
        ),
        Spec(
            "dyadic_hierarchy",
            lambda: DyadicHierarchy(8, 8),
            lambda: _items(47),
            lambda: _items(48),
        ),
        Spec("count_sketch", lambda: CountSketch(16, 3, seed=1), lambda: _items(11), lambda: _items(12)),
        Spec("exact_counter", ExactCounter, lambda: _items(13), lambda: _items(14)),
        Spec("exact_quantiles", ExactQuantiles, lambda: _values(15), lambda: _values(16)),
        Spec("gk_quantiles", lambda: GKQuantiles(0.1), lambda: _values(17), lambda: _values(18)),
        Spec(
            "equal_weight_quantiles",
            lambda: EqualWeightQuantiles(8, rng=1),
            lambda: _values(19, n=8),
            lambda: _values(20, n=8),
        ),
        Spec(
            "mergeable_quantiles",
            lambda: MergeableQuantiles(16, rng=1),
            lambda: _values(21),
            lambda: _values(22),
        ),
        Spec(
            "hybrid_quantiles",
            lambda: HybridQuantiles(0.2, rng=1),
            lambda: _values(23),
            lambda: _values(24),
        ),
        Spec("kll_quantiles", lambda: KLLQuantiles(16, rng=1), lambda: _values(25), lambda: _values(26)),
        Spec("moment_sketch", lambda: MomentSketch(10), lambda: _values(49), lambda: _values(50)),
        Spec("mrl_quantiles", lambda: MRLQuantiles(16), lambda: _values(27), lambda: _values(28)),
        Spec(
            "bottom_k_sample",
            lambda: BottomKSample(20, rng=1),
            lambda: _values(29),
            lambda: _values(30),
        ),
        Spec(
            "eps_approximation",
            lambda: EpsApproximation("intervals_1d", s=8, rng=1),
            lambda: _values(31),
            lambda: _values(32),
        ),
        Spec("eps_kernel", lambda: EpsKernel(0.2), lambda: _points(33), lambda: _points(34)),
        Spec("k_min_values", lambda: KMinValues(16, seed=1), lambda: _items(35), lambda: _items(36)),
        Spec("hyperloglog", lambda: HyperLogLog(p=4, seed=1), lambda: _items(37), lambda: _items(38)),
        Spec("bloom_filter", lambda: BloomFilter(64, 3, seed=1), lambda: _items(39), lambda: _items(40)),
        Spec("ams_f2", lambda: AmsF2Sketch(8, 3, seed=1), lambda: _items(41), lambda: _items(42)),
        Spec(
            "decayed_misra_gries",
            decayed_factory,
            lambda: _items(43),
            lambda: _items(44),
        ),
        Spec(
            "windowed_misra_gries",
            windowed_factory,
            lambda: _items(45),
            lambda: _items(46),
        ),
    ]


def _windowed_specs(base_specs: List[Spec]) -> List[Spec]:
    """Derive a spec for every auto-registered ``windowed.<name>`` variant.

    Zero per-type code: the windowed combinator is parametrized by an
    empty prototype, so each base spec's factory doubles as the
    prototype factory.  Coarse granularity keeps the sub-summary count
    (and suite runtime) small while still exercising the EH cascade.
    """
    from repro.windows import windowed_names

    derived = set(windowed_names())
    specs = []
    for spec in base_specs:
        name = f"windowed.{spec.name}"
        if name not in derived:
            continue
        specs.append(
            Spec(
                name,
                lambda s=spec: s.factory().windowed(eps=0.25, granularity=4),
                spec.feed_a,
                spec.feed_b,
                spec.supports_plain_update,
            )
        )
    return specs


BASE_SPECS = {spec.name: spec for spec in _specs()}
SPECS = dict(BASE_SPECS)
SPECS.update({spec.name: spec for spec in _windowed_specs(list(BASE_SPECS.values()))})


def test_every_registered_type_has_a_spec():
    missing = set(registered_names()) - set(SPECS)
    assert not missing, f"conformance suite misses registered types: {missing}"


@pytest.fixture(params=sorted(SPECS), ids=sorted(SPECS))
def spec(request) -> Spec:
    return SPECS[request.param]


class TestProtocolConformance:
    def test_fresh_summary_is_empty(self, spec):
        summary = spec.factory()
        assert summary.is_empty
        assert summary.n == 0

    def test_extend_counts_n(self, spec):
        feed = spec.feed_a()
        summary = spec.factory().extend(feed)
        assert summary.n == len(feed)
        assert not summary.is_empty
        assert summary.size() >= 0

    def test_merge_adds_n_exactly(self, spec):
        a = spec.factory().extend(spec.feed_a())
        b = spec.factory().extend(spec.feed_b())
        total = a.n + b.n
        assert a.merge(b) is a
        assert a.n == total

    def test_merge_leaves_other_unchanged(self, spec):
        a = spec.factory().extend(spec.feed_a())
        b = spec.factory().extend(spec.feed_b())
        b_n, b_size = b.n, b.size()
        a.merge(b)
        assert b.n == b_n
        assert b.size() == b_size

    def test_serialization_preserves_shape(self, spec):
        summary = spec.factory().extend(spec.feed_a())
        restored = loads(dumps(summary))
        assert type(restored) is type(summary)
        assert restored.n == summary.n
        assert restored.size() == summary.size()

    def test_merge_accepts_roundtripped_operand(self, spec):
        a = spec.factory().extend(spec.feed_a())
        b = loads(dumps(spec.factory().extend(spec.feed_b())))
        total = a.n + b.n
        a.merge(b)
        assert a.n == total

    def test_compatible_with_identical_twin(self, spec):
        a = spec.factory()
        b = spec.factory()
        assert a.compatible_with(b) is None

    def test_update_rejects_nonpositive_weight(self, spec):
        if not spec.supports_plain_update:
            pytest.skip("type has no plain update")
        summary = spec.factory()
        sample = spec.feed_a()[0]
        for bad in (0, -3):
            with pytest.raises(ParameterError):
                summary.update(sample, weight=bad)

    def test_len_matches_size(self, spec):
        summary = spec.factory().extend(spec.feed_a())
        assert len(summary) == summary.size()
