"""Tests for rng plumbing, stable hashing, and item normalization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import stable_hash
from repro.core.items import plain
from repro.core.rng import resolve_rng, spawn


class TestResolveRng:
    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        assert resolve_rng(42).random() == resolve_rng(42).random()

    def test_generator_passed_through(self):
        gen = np.random.default_rng(1)
        assert resolve_rng(gen) is gen

    def test_numpy_integer_seed_accepted(self):
        assert isinstance(resolve_rng(np.int64(7)), np.random.Generator)

    def test_bad_type_raises(self):
        with pytest.raises(TypeError):
            resolve_rng("seed")

    def test_spawn_children_are_independent_but_reproducible(self):
        parent_a = resolve_rng(5)
        parent_b = resolve_rng(5)
        child_a = spawn(parent_a)
        child_b = spawn(parent_b)
        assert child_a.random() == child_b.random()


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("abc") == stable_hash("abc")

    def test_seed_changes_hash(self):
        assert stable_hash("abc", seed=1) != stable_hash("abc", seed=2)

    def test_int_and_numpy_int_agree(self):
        assert stable_hash(5) == stable_hash(int(np.int64(5)))

    def test_distinct_items_rarely_collide(self):
        hashes = {stable_hash(i) for i in range(10_000)}
        assert len(hashes) == 10_000

    def test_types_are_domain_separated(self):
        assert stable_hash("5") != stable_hash(5)
        assert stable_hash(b"x") != stable_hash("x")

    def test_negative_ints_supported(self):
        assert stable_hash(-1) != stable_hash(1)

    def test_64_bit_range(self):
        h = stable_hash("anything")
        assert 0 <= h < 2**64


class TestPlain:
    def test_numpy_scalar_converted(self):
        assert plain(np.int64(3)) == 3
        assert type(plain(np.int64(3))) is int
        assert type(plain(np.float64(0.5))) is float

    def test_python_values_passed_through(self):
        for value in (3, "x", None, (1, 2)):
            assert plain(value) is value
