"""Tests for SummaryBundle: multi-summary record streams."""

from __future__ import annotations

import pytest

from repro import HyperLogLog, MergeableQuantiles, MisraGries
from repro.core import MergeError, ParameterError, SummaryBundle


def _make_bundle(seed_offset: int = 0) -> SummaryBundle:
    bundle = SummaryBundle()
    bundle.add("pages", MisraGries(16), field="page")
    bundle.add("users", HyperLogLog(p=8, seed=1), field="user")
    bundle.add("latency", MergeableQuantiles(16, rng=5 + seed_offset), field="ms")
    return bundle


RECORDS = [
    {"page": "/home", "user": 1, "ms": 12.0},
    {"page": "/home", "user": 2, "ms": 40.0},
    {"page": "/about", "user": 1, "ms": 7.0},
]


class TestComposition:
    def test_add_returns_self_for_chaining(self):
        bundle = SummaryBundle()
        assert bundle.add("a", MisraGries(4), field="x") is bundle

    def test_duplicate_name_rejected(self):
        bundle = SummaryBundle().add("a", MisraGries(4), field="x")
        with pytest.raises(ParameterError, match="already has a member"):
            bundle.add("a", MisraGries(4), field="y")

    def test_non_summary_rejected(self):
        with pytest.raises(ParameterError, match="must be a Summary"):
            SummaryBundle().add("a", object(), field="x")

    def test_getitem_and_contains(self):
        bundle = _make_bundle()
        assert isinstance(bundle["pages"], MisraGries)
        assert "users" in bundle
        assert "nope" not in bundle
        with pytest.raises(ParameterError, match="no bundle member"):
            bundle["nope"]

    def test_iteration_lists_members(self):
        assert set(_make_bundle()) == {"pages", "users", "latency"}


class TestUpdates:
    def test_records_route_to_fields(self):
        bundle = _make_bundle().extend(RECORDS)
        assert bundle["pages"].estimate("/home") == 2
        assert bundle["latency"].n == 3
        assert bundle.n == 3

    def test_sparse_records_skip_members(self):
        bundle = _make_bundle()
        bundle.update({"page": "/x"})
        assert bundle["pages"].n == 1
        assert bundle["latency"].n == 0

    def test_strict_mode_requires_all_fields(self):
        bundle = _make_bundle()
        with pytest.raises(ParameterError, match="missing field"):
            bundle.update({"page": "/x"}, strict=True)

    def test_empty_bundle_update_rejected(self):
        with pytest.raises(ParameterError, match="no members"):
            SummaryBundle().update({"x": 1})


class TestMerge:
    def test_memberwise_merge(self):
        a = _make_bundle().extend(RECORDS)
        b = _make_bundle(seed_offset=1).extend(
            [{"page": "/home", "user": 3, "ms": 100.0}]
        )
        a.merge(b)
        assert a["pages"].estimate("/home") == 3
        assert a.n == 4
        assert round(a["users"].distinct()) == 3

    def test_layout_mismatch_rejected(self):
        a = _make_bundle()
        b = SummaryBundle().add("pages", MisraGries(16), field="page")
        with pytest.raises(MergeError, match="member mismatch"):
            a.merge(b)

    def test_field_binding_mismatch_rejected(self):
        a = SummaryBundle().add("pages", MisraGries(16), field="page")
        b = SummaryBundle().add("pages", MisraGries(16), field="url")
        with pytest.raises(MergeError, match="bound to field"):
            a.merge(b)

    def test_member_parameter_mismatch_rejected_before_mutation(self):
        a = SummaryBundle().add("pages", MisraGries(16), field="page")
        a.update({"page": "/x"})
        b = SummaryBundle().add("pages", MisraGries(8), field="page")
        with pytest.raises(MergeError, match="incompatible"):
            a.merge(b)
        assert a["pages"].n == 1  # untouched

    def test_member_type_mismatch_rejected(self):
        a = SummaryBundle().add("m", MisraGries(16), field="x")
        b = SummaryBundle().add("m", HyperLogLog(p=8), field="x")
        with pytest.raises(MergeError, match="type mismatch"):
            a.merge(b)

    def test_non_bundle_rejected(self):
        with pytest.raises(MergeError):
            _make_bundle().merge(MisraGries(4))


class TestSerialization:
    def test_roundtrip(self):
        bundle = _make_bundle().extend(RECORDS)
        restored = SummaryBundle.from_dict(bundle.to_dict())
        assert restored.n == 3
        assert restored["pages"].counters() == bundle["pages"].counters()
        assert set(restored) == set(bundle)

    def test_restored_bundle_still_merges(self):
        a = _make_bundle().extend(RECORDS)
        b = SummaryBundle.from_dict(_make_bundle().extend(RECORDS).to_dict())
        a.merge(b)
        assert a.n == 6
