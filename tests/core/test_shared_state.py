"""Shared-memory state transport: export/import round-trips.

The persistent worker runtime moves slot state between processes as
small descriptors over pipes plus bulk bytes in shared-memory arenas
(:mod:`repro.core.shared_state`).  These tests pin the transport's
contract in-process: exports must not mutate the exported object,
imports must be byte-identical, descriptors must stay small, and the
copy/view semantics must hold.  Cross-process behaviour is covered by
the runtime tests in ``tests/test_merge_runtime.py``.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import dumps
from repro.core.shared_state import (
    BlockCache,
    ShmArena,
    export_value,
    import_value,
    shared_memory_available,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no shared memory on this platform"
)


@pytest.fixture
def transport():
    """(arena, cache) pair torn down with the blocks unlinked."""
    arena = ShmArena()
    cache = BlockCache()
    yield arena, cache
    arena.close()
    cache.unlink_all(list(arena.blocks))
    cache.close()


def _adapted_values():
    from repro.frequency import ConservativeCountMin, CountMin, CountSketch
    from repro.quantiles import KLLQuantiles
    from repro.sketches import HyperLogLog

    rng = np.random.default_rng(7)
    ints = rng.integers(0, 400, size=2000)
    floats = rng.random(2000)

    cm = CountMin(64, 3, seed=1)
    cm.update_batch(ints)
    ccm = ConservativeCountMin(64, 3, seed=1)
    ccm.update_batch(ints)
    cs = CountSketch(64, 3, seed=1)
    cs.update_batch(ints)
    hll = HyperLogLog(p=6, seed=1)
    hll.update_batch(ints)
    kll = KLLQuantiles(32, rng=5)
    kll.update_batch(floats)
    return {
        "count_min": cm,
        "conservative_count_min": ccm,
        "count_sketch": cs,
        "hyperloglog": hll,
        "kll_quantiles": kll,
    }


@pytest.mark.parametrize("name", sorted(_adapted_values()))
def test_adapted_round_trip_is_byte_identical(transport, name):
    arena, cache = transport
    value = _adapted_values()[name]
    before = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)

    descriptor = export_value(value, arena)
    assert descriptor["kind"] == "adapted", f"{name} should ship via adapter"
    # export is strictly read-only on the value
    assert pickle.dumps(value, pickle.HIGHEST_PROTOCOL) == before

    restored = import_value(descriptor, cache)
    assert dumps(restored) == dumps(value)
    if name != "kll_quantiles":
        # KLL imports deliberately shed the instance view-cache slot
        # (see test_kll_export_drops_the_query_view_cache); everything
        # else round-trips to the exact same pickle bytes
        assert pickle.dumps(restored, pickle.HIGHEST_PROTOCOL) == before


def test_unadapted_types_round_trip_via_arena_pickle(transport):
    from repro.frequency import MisraGries

    arena, cache = transport
    mg = MisraGries(16)
    mg.update_batch(np.random.default_rng(3).integers(0, 50, size=500))

    descriptor = export_value(mg, arena)
    assert descriptor["kind"] == "pickled"
    # the pickle bytes live in the arena, not the descriptor
    assert "data" not in descriptor
    restored = import_value(descriptor, cache)
    assert dumps(restored) == dumps(mg)


def test_store_segments_adapt_member_wise(transport):
    from repro.frequency import CountMin, MisraGries
    from repro.store.segment import Segment

    arena, cache = transport
    ints = np.random.default_rng(5).integers(0, 300, size=1500)
    cm = CountMin(64, 3, seed=2)
    cm.update_batch(ints)
    mg = MisraGries(16)
    mg.update_batch(ints)
    segment = Segment(
        segment_id="s000001-L0-e0",
        level=0,
        start=0,
        count=len(ints),
        members={"freq": cm, "heavy": mg},
    )

    descriptor = export_value(segment, arena)
    assert descriptor["kind"] == "adapted"
    restored = import_value(descriptor, cache)
    assert restored.segment_id == segment.segment_id
    assert restored.fingerprint() == segment.fingerprint()


def test_descriptor_is_small_relative_to_the_state(transport):
    from repro.frequency import CountMin

    arena, cache = transport
    cm = CountMin(4096, 5, seed=1)  # 160 KiB of table
    cm.update_batch(np.random.default_rng(1).integers(0, 10000, size=100))

    descriptor = export_value(cm, arena)
    wire = pickle.dumps(descriptor, pickle.HIGHEST_PROTOCOL)
    assert len(wire) < 2048, "descriptor must stay pipe-sized"
    assert arena.bytes_written >= cm._table.nbytes


def test_copy_import_detaches_from_the_block(transport):
    from repro.frequency import CountMin

    arena, cache = transport
    cm = CountMin(32, 3, seed=1)
    cm.update_batch(np.arange(100))
    descriptor = export_value(cm, arena)

    copied = import_value(descriptor, cache, copy=True)
    viewed = import_value(descriptor, cache, copy=False)
    assert not copied._table.flags["OWNDATA"] or copied._table.base is None
    # the view aliases the shared block; the copy does not
    offset, length = descriptor["spans"][0][1], descriptor["spans"][0][2]
    raw = cache.view(descriptor["spans"][0][0], offset, length)
    np.frombuffer(raw, dtype=viewed._table.dtype)[0] = 424242
    assert viewed._table.flat[0] == 424242
    assert copied._table.flat[0] != 424242


def test_kll_export_drops_the_query_view_cache(transport):
    from repro.quantiles import KLLQuantiles

    arena, cache = transport
    kll = KLLQuantiles(32, rng=5)
    kll.update_batch(np.random.default_rng(2).random(2000))
    kll.quantile(0.5)  # populate the cached sorted view
    assert "_view" in kll.__dict__

    before = pickle.dumps(kll, pickle.HIGHEST_PROTOCOL)
    descriptor = export_value(kll, arena)
    # strip/restore must leave the exported object untouched, view and all
    assert pickle.dumps(kll, pickle.HIGHEST_PROTOCOL) == before

    restored = import_value(descriptor, cache)
    assert "_view" not in restored.__dict__, "imports must not carry the cache"
    assert restored.quantile(0.5) == kll.quantile(0.5)
    assert dumps(restored) == dumps(kll)


def test_inline_fallback_when_the_arena_is_unavailable(transport):
    from repro.frequency import CountMin

    arena, cache = transport
    arena.available = False
    cm = CountMin(32, 3, seed=1)
    cm.update_batch(np.arange(64))
    descriptor = export_value(cm, arena)
    assert descriptor["kind"] == "inline"
    assert arena.bytes_written == 0
    assert dumps(import_value(descriptor, cache)) == dumps(cm)


def test_prefixed_arena_names_blocks_deterministically():
    arena = ShmArena(prefix="rstestcorex")
    cache = BlockCache()
    try:
        arena.put(b"x" * 16)
        assert arena.blocks == ["rstestcorex0"]
        # force a second block: larger than what remains of the first
        arena.put(b"y" * (64 << 20) if False else bytes(2 << 20))
        assert arena.blocks == ["rstestcorex0", "rstestcorex1"]
    finally:
        arena.close()
        cache.unlink_all(list(arena.blocks))
        cache.close()


def test_unlink_all_releases_the_blocks():
    from multiprocessing import shared_memory

    arena = ShmArena()
    arena.put(b"z" * 128)
    names = list(arena.blocks)
    arena.close()
    BlockCache().unlink_all(names)
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
