"""Tests for the Summary ABC and merge protocol."""

from __future__ import annotations

import pytest

from repro.core import MergeError, Summary
from repro.frequency import ExactCounter, MisraGries


class TestSummaryProtocol:
    def test_new_summary_is_empty(self):
        assert ExactCounter().is_empty
        assert ExactCounter().n == 0

    def test_extend_returns_self(self):
        summary = ExactCounter()
        assert summary.extend([1, 2, 3]) is summary
        assert summary.n == 3

    def test_from_items_builds_and_counts(self):
        summary = ExactCounter.from_items([1, 1, 2])
        assert summary.n == 3
        assert summary.estimate(1) == 2

    def test_from_items_forwards_kwargs(self):
        summary = MisraGries.from_items([1, 2, 3], k=2)
        assert summary.k == 2

    def test_len_equals_size(self):
        summary = ExactCounter.from_items([1, 2, 2])
        assert len(summary) == summary.size() == 2

    def test_repr_mentions_type(self):
        assert "ExactCounter" in repr(ExactCounter())


class TestMergeProtocol:
    def test_merge_returns_self(self):
        a = ExactCounter.from_items([1])
        b = ExactCounter.from_items([2])
        assert a.merge(b) is a

    def test_merge_leaves_other_unchanged(self):
        a = ExactCounter.from_items([1, 1])
        b = ExactCounter.from_items([2])
        a.merge(b)
        assert b.n == 1
        assert b.estimate(2) == 1

    def test_merge_rejects_different_types(self):
        with pytest.raises(MergeError, match="identical summary types"):
            ExactCounter().merge(MisraGries(4))

    def test_merge_rejects_incompatible_parameters(self):
        with pytest.raises(MergeError, match="k mismatch"):
            MisraGries(4).merge(MisraGries(8))

    def test_merge_accumulates_n(self):
        a = ExactCounter.from_items([1, 2])
        b = ExactCounter.from_items([3])
        assert a.merge(b).n == 3

    def test_merge_with_empty_is_identity(self):
        a = ExactCounter.from_items([1, 1, 2])
        before = a.counters()
        a.merge(ExactCounter())
        assert a.counters() == before

    def test_summary_is_abstract(self):
        with pytest.raises(TypeError):
            Summary()  # type: ignore[abstract]
