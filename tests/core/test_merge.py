"""Tests for the generic merge executors."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core import (
    MergeError,
    ParameterError,
    merge_all,
    merge_chain,
    merge_random_tree,
    merge_tree,
)
from repro.frequency import ExactCounter


def _parts(groups):
    return [ExactCounter.from_items(g) for g in groups]


GROUPS = [[1, 1, 2], [2, 3], [3, 3, 3], [4], [1, 4]]
EXPECTED = Counter(sum(GROUPS, []))


class TestMergeChain:
    def test_result_covers_all_inputs(self):
        merged = merge_chain(_parts(GROUPS))
        assert merged.counters() == dict(EXPECTED)
        assert merged.n == sum(EXPECTED.values())

    def test_single_summary_passthrough(self):
        only = ExactCounter.from_items([5])
        assert merge_chain([only]) is only

    def test_empty_list_raises(self):
        with pytest.raises(MergeError, match="empty list"):
            merge_chain([])


class TestMergeTree:
    def test_result_covers_all_inputs(self):
        merged = merge_tree(_parts(GROUPS))
        assert merged.counters() == dict(EXPECTED)

    def test_odd_count_handled(self):
        merged = merge_tree(_parts([[1], [2], [3]]))
        assert merged.counters() == {1: 1, 2: 1, 3: 1}

    def test_empty_list_raises(self):
        with pytest.raises(MergeError):
            merge_tree([])


class TestMergeRandomTree:
    def test_result_covers_all_inputs(self):
        merged = merge_random_tree(_parts(GROUPS), rng=3)
        assert merged.counters() == dict(EXPECTED)

    def test_deterministic_under_seed(self):
        a = merge_random_tree(_parts(GROUPS), rng=9)
        b = merge_random_tree(_parts(GROUPS), rng=9)
        assert a.counters() == b.counters()

    def test_empty_list_raises(self):
        with pytest.raises(MergeError):
            merge_random_tree([], rng=1)


class TestMergeAll:
    @pytest.mark.parametrize("strategy", ["chain", "tree", "random", "kway"])
    def test_all_strategies_agree_on_exact_counts(self, strategy):
        rng = 5 if strategy == "random" else None
        merged = merge_all(_parts(GROUPS), strategy=strategy, rng=rng)
        assert merged.counters() == dict(EXPECTED)

    def test_unknown_strategy_raises(self):
        with pytest.raises(ParameterError, match="unknown merge strategy"):
            merge_all(_parts(GROUPS), strategy="zigzag")

    def test_rng_rejected_by_deterministic_strategies(self):
        with pytest.raises(ParameterError, match="does not use rng"):
            merge_all(_parts(GROUPS), strategy="kway", rng=5)
        with pytest.raises(ParameterError, match="does not use rng"):
            merge_all(_parts(GROUPS), strategy="chain", rng=5)

    def test_executor_rejected_by_sequential_strategies(self):
        with pytest.raises(ParameterError, match="cannot run on an executor"):
            merge_all(_parts(GROUPS), strategy="random", rng=1, executor=2)
        with pytest.raises(ParameterError, match="cannot run on an executor"):
            merge_all(_parts(GROUPS), strategy="chain", executor=2)
