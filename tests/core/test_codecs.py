"""Codec-stack conformance: every registered summary x every codec.

The codec registry is the single serialization layer shared by the
distributed wire format and the segment store, so its contract is
checked combinatorially:

- every registered summary type round-trips through every registered
  codec with **byte-identical** ``to_dict()`` state;
- :func:`decode_summary` auto-detects each codec's payloads;
- legacy payloads (format-1 envelopes, no checksum) still load;
- corruption — bit flips, truncation, wrong magic, checksum edits —
  is detected, never silently decoded.
"""

from __future__ import annotations

import json
import zlib

import pytest

from repro.core import (
    SerializationError,
    decode_summary,
    encode_summary,
    get_codec,
    registered_codecs,
    registered_names,
)
from repro.core.codecs import (
    _BINARY_MAGIC,
    DEFAULT_CODEC,
    state_checksum,
    to_envelope,
)
from repro.frequency import MisraGries

from .test_serialization import _build_all_registered


def _canonical_state(summary) -> str:
    """Serialized ``to_dict`` with the volatile RNG re-seed field removed.

    Randomized summaries draw a fresh seed on every ``to_dict`` call so
    that restored copies own an independent stream; every other byte of
    state must survive any codec unchanged.
    """

    def strip(value):
        if isinstance(value, dict):
            return {k: strip(v) for k, v in value.items() if k != "seed"}
        if isinstance(value, list):
            return [strip(v) for v in value]
        return value

    return json.dumps(strip(summary.to_dict()), sort_keys=True)


def test_expected_codecs_are_registered():
    names = registered_codecs()
    assert {"json.v1", "json.v2", "binary.v1"} <= set(names)
    assert DEFAULT_CODEC in names


def test_unknown_codec_raises():
    with pytest.raises(SerializationError, match="unknown codec"):
        get_codec("carrier.pigeon")
    with pytest.raises(SerializationError, match="unknown codec"):
        encode_summary(MisraGries(4), codec="carrier.pigeon")


@pytest.fixture(scope="module")
def instances():
    return _build_all_registered()


class TestConformanceMatrix:
    """Registry x codec round trips, driven off both registries."""

    def test_no_registered_type_is_missing(self, instances):
        missing = set(registered_names()) - set(instances)
        assert not missing, f"codec conformance misses types: {missing}"

    @pytest.mark.parametrize("codec_name", sorted(registered_codecs()))
    def test_every_type_round_trips_byte_identically(
        self, instances, codec_name
    ):
        for name, summary in instances.items():
            payload = encode_summary(summary, codec=codec_name)
            restored = decode_summary(payload)
            assert type(restored) is type(summary), (codec_name, name)
            assert _canonical_state(restored) == _canonical_state(summary), (
                codec_name,
                name,
            )

    @pytest.mark.parametrize("codec_name", sorted(registered_codecs()))
    def test_payload_kind_matches_codec_declaration(self, codec_name):
        codec = get_codec(codec_name)
        payload = encode_summary(MisraGries(4).extend([1, 1, 2]), codec_name)
        if codec.binary:
            assert isinstance(payload, bytes)
        else:
            assert isinstance(payload, str)

    def test_binary_payload_is_smaller_for_bulky_state(self, instances):
        bulky = instances["mergeable_quantiles"]
        text = encode_summary(bulky, codec="json.v2").encode("utf-8")
        binary = encode_summary(bulky, codec="binary.v1")
        assert len(binary) < len(text)


class TestAutoDetection:
    def test_binary_payloads_sniffed_by_magic(self):
        payload = encode_summary(MisraGries(4).extend([1, 2]), "binary.v1")
        assert payload.startswith(_BINARY_MAGIC)
        assert decode_summary(payload).n == 2

    def test_json_text_and_bytes_both_accepted(self):
        payload = encode_summary(MisraGries(4).extend([1, 2]), "json.v2")
        assert decode_summary(payload).n == 2
        assert decode_summary(payload.encode("utf-8")).n == 2

    def test_v1_codec_output_loads_through_v2_decoder(self):
        """Envelopes written by the legacy codec keep loading forever."""
        payload = encode_summary(MisraGries(4).extend([1, 2, 2]), "json.v1")
        envelope = json.loads(payload)
        assert envelope["format"] == 1
        assert "checksum" not in envelope
        assert decode_summary(payload).n == 3


class TestCorruptionDetection:
    def _binary(self):
        return encode_summary(MisraGries(8).extend([1, 1, 2, 3]), "binary.v1")

    def test_wrong_magic_rejected(self):
        payload = b"XXXX" + self._binary()[4:]
        with pytest.raises(SerializationError):
            decode_summary(payload)

    def test_truncated_binary_rejected(self):
        payload = self._binary()
        for cut in (3, len(payload) // 2, len(payload) - 1):
            with pytest.raises(SerializationError):
                decode_summary(payload[:cut])

    def test_flipped_body_byte_rejected(self):
        payload = bytearray(self._binary())
        payload[-1] ^= 0xFF
        with pytest.raises(SerializationError):
            decode_summary(bytes(payload))

    def test_corrupted_compressed_body_rejected(self):
        # flip a byte in the middle of the zlib stream
        payload = bytearray(self._binary())
        payload[len(payload) // 2] ^= 0x01
        with pytest.raises(SerializationError):
            decode_summary(bytes(payload))

    def test_checksum_guards_decompressed_state(self):
        """A forged body with valid zlib framing still fails the CRC."""
        summary = MisraGries(8).extend([1, 1, 2, 3])
        envelope = to_envelope(summary)
        good = state_checksum(envelope["state"])
        envelope["state"]["n"] = 999
        assert state_checksum(envelope["state"]) != good

    def test_binary_trailing_garbage_rejected(self):
        with pytest.raises(SerializationError):
            decode_summary(self._binary() + b"extra")


class TestCompression:
    def test_body_is_zlib_of_canonical_state(self):
        summary = MisraGries(8).extend([5, 5, 6])
        payload = encode_summary(summary, "binary.v1")
        # layout: magic | header | name | zlib body
        import struct

        header = struct.Struct("!BHIII")
        offset = len(_BINARY_MAGIC)
        _v, name_len, _crc, _raw, comp = header.unpack_from(payload, offset)
        offset += header.size
        name = payload[offset : offset + name_len].decode("ascii")
        assert name == "misra_gries"
        body = zlib.decompress(payload[offset + name_len :])
        assert json.loads(body) == json.loads(
            json.dumps(summary.to_dict(), sort_keys=True)
        )
        assert comp == len(payload) - offset - name_len
