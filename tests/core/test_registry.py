"""Tests for the summary registry."""

from __future__ import annotations

import pytest

from repro.core import SerializationError, get_summary_class, registered_names
from repro.core.registry import register_summary
from repro.frequency import MisraGries


class TestRegistry:
    def test_lookup_returns_class(self):
        assert get_summary_class("misra_gries") is MisraGries

    def test_unknown_name_raises(self):
        with pytest.raises(SerializationError, match="unknown summary name"):
            get_summary_class("nope")

    def test_registered_names_sorted_and_complete(self):
        names = registered_names()
        assert names == sorted(names)
        assert "misra_gries" in names
        assert "mergeable_quantiles" in names
        assert "eps_kernel" in names

    def test_reregistering_same_class_is_noop(self):
        register_summary("misra_gries")(MisraGries)
        assert get_summary_class("misra_gries") is MisraGries

    def test_name_collision_raises(self):
        class Impostor(MisraGries):
            pass

        with pytest.raises(ValueError, match="already registered"):
            register_summary("misra_gries")(Impostor)

    def test_registry_name_attribute_set(self):
        assert MisraGries.registry_name == "misra_gries"
