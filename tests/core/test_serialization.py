"""Wire-format round-trips for every registered summary type."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import SerializationError, dumps, loads, registered_names
from repro.core.serialization import from_envelope, state_checksum, to_envelope
from repro.frequency import CountMin, ExactCounter, MisraGries
from repro.kernels import EpsKernel
from repro.quantiles import MergeableQuantiles
from repro.ranges import EpsApproximation


def _build_all_registered():
    """One populated instance per registered summary type."""
    from repro.frequency import CountSketch, MajorityVote, SpaceSaving
    from repro.quantiles import (
        BottomKSample,
        EqualWeightQuantiles,
        ExactQuantiles,
        GKQuantiles,
        HybridQuantiles,
        MomentSketch,
        MRLQuantiles,
    )

    from repro.decay import DecayedMisraGries, WindowedMisraGries
    from repro.quantiles import KLLQuantiles
    from repro.sketches import AmsF2Sketch, BloomFilter, HyperLogLog, KMinValues

    from repro.frequency import ConservativeCountMin

    def _conservative(items_):
        return ConservativeCountMin(32, 3, seed=1).extend(items_)

    def _hierarchy(items_):
        from repro.frequency import DyadicHierarchy

        return DyadicHierarchy(8, 8).extend(items_)

    rng = np.random.default_rng(3)
    items = rng.integers(0, 50, size=400).tolist()
    values = rng.random(400)
    points = rng.random((64, 2))
    decayed = DecayedMisraGries(8, half_life=5.0)
    for t, item in enumerate(items[:50]):
        decayed.observe(item, float(t))
    windowed = WindowedMisraGries(8, bucket_width=5.0, num_buckets=6)
    for t, item in enumerate(items[:50]):
        windowed.observe(item, float(t))
    instances = {
        "k_min_values": KMinValues(16, seed=1).extend(items),
        "hyperloglog": HyperLogLog(p=4, seed=1).extend(items),
        "bloom_filter": BloomFilter(64, 3, seed=1).extend(items),
        "ams_f2": AmsF2Sketch(8, 3, seed=1).extend(items),
        "decayed_misra_gries": decayed,
        "windowed_misra_gries": windowed,
        "kll_quantiles": KLLQuantiles(16, rng=1).extend(values),
        "moment_sketch": MomentSketch(10).extend(values),
        "misra_gries": MisraGries(8).extend(items),
        "space_saving": SpaceSaving(8).extend(items),
        "majority_vote": MajorityVote().extend(items),
        "count_min": CountMin(32, 3, seed=1).extend(items),
        "conservative_count_min": _conservative(items),
        "dyadic_hierarchy": _hierarchy(items),
        "count_sketch": CountSketch(32, 3, seed=1).extend(items),
        "exact_counter": ExactCounter().extend(items),
        "exact_quantiles": ExactQuantiles().extend(values),
        "gk_quantiles": GKQuantiles(0.05).extend(values),
        "equal_weight_quantiles": EqualWeightQuantiles(16).extend(values[:10]),
        "mergeable_quantiles": MergeableQuantiles(32, rng=1).extend(values),
        "hybrid_quantiles": HybridQuantiles(0.1, rng=1).extend(values),
        "mrl_quantiles": MRLQuantiles(32).extend(values),
        "bottom_k_sample": BottomKSample(50, rng=1).extend(values),
        "eps_approximation": EpsApproximation("intervals_1d", s=32, rng=1).extend_points(
            values
        ),
        "eps_kernel": EpsKernel(0.1).extend_points(points),
    }
    # auto-derived windowed.<name> variants: built from the conformance
    # suite's prototype factories so no per-type code is needed here
    from tests.test_protocol_conformance import SPECS as conformance_specs

    for name, spec in conformance_specs.items():
        if name.startswith("windowed."):
            instances[name] = spec.factory().extend(spec.feed_a())
    return instances


class TestRoundTrips:
    def test_every_registered_type_round_trips(self):
        instances = _build_all_registered()
        missing = set(registered_names()) - set(instances)
        assert not missing, f"serialization test misses registered types: {missing}"
        for name, summary in instances.items():
            restored = loads(dumps(summary))
            assert type(restored) is type(summary), name
            assert restored.n == summary.n, name
            assert restored.size() == summary.size(), name

    def test_frequency_estimates_survive(self):
        summary = MisraGries(8).extend([1, 1, 1, 2, 2, 3])
        restored = loads(dumps(summary))
        assert restored.counters() == summary.counters()
        assert restored.deduction == summary.deduction

    def test_quantile_answers_survive(self):
        values = np.random.default_rng(5).random(500)
        summary = MergeableQuantiles(32, rng=2).extend(values)
        restored = loads(dumps(summary))
        for q in (0.1, 0.5, 0.9):
            assert restored.quantile(q) == summary.quantile(q)

    def test_restored_summary_still_merges(self):
        a = MisraGries(8).extend([1, 1, 2])
        b = loads(dumps(MisraGries(8).extend([2, 3])))
        a.merge(b)
        assert a.n == 5

    def test_countmin_table_survives(self):
        sketch = CountMin(16, 2, seed=4).extend([1, 2, 3, 1])
        restored = loads(dumps(sketch))
        assert restored.estimate(1) == sketch.estimate(1)


class TestEnvelopeErrors:
    def test_invalid_json_raises(self):
        with pytest.raises(SerializationError, match="invalid JSON"):
            loads("{not json")

    def test_unknown_type_raises(self):
        payload = json.dumps({"format": 1, "type": "no_such", "state": {}})
        with pytest.raises(SerializationError, match="unknown summary name"):
            loads(payload)

    def test_missing_keys_raise(self):
        with pytest.raises(SerializationError, match="malformed"):
            from_envelope({"format": 1})

    def test_bad_version_raises(self):
        envelope = to_envelope(ExactCounter())
        envelope["format"] = 99
        with pytest.raises(SerializationError, match="unsupported envelope format"):
            from_envelope(envelope)

    def test_unregistered_class_raises(self):
        class Rogue(ExactCounter):
            pass

        rogue = Rogue()
        rogue.registry_name = None
        with pytest.raises(SerializationError, match="not registered"):
            to_envelope(rogue)


class TestChecksum:
    def test_envelope_carries_state_checksum(self):
        envelope = to_envelope(MisraGries(8).extend([1, 1, 2]))
        assert envelope["format"] == 2
        assert envelope["checksum"] == state_checksum(envelope["state"])

    def test_checksum_survives_wire_round_trip(self):
        """The CRC computed over the in-memory state must equal the one
        computed over the parsed state — for every registered type."""
        for name, summary in _build_all_registered().items():
            loads(dumps(summary))  # raises on any checksum instability

    def test_tampered_state_rejected(self):
        envelope = to_envelope(MisraGries(8).extend([1, 1, 2]))
        envelope["state"]["n"] = 999
        with pytest.raises(SerializationError, match="checksum mismatch"):
            from_envelope(envelope)

    def test_tampered_checksum_rejected(self):
        envelope = to_envelope(MisraGries(8).extend([1, 1, 2]))
        envelope["checksum"] ^= 1
        with pytest.raises(SerializationError, match="checksum mismatch"):
            from_envelope(envelope)

    def test_checksumless_v1_payload_still_loads(self):
        """Payloads persisted by the previous format version keep working."""
        envelope = to_envelope(MisraGries(8).extend([1, 2, 2]))
        legacy = {"format": 1, "type": envelope["type"], "state": envelope["state"]}
        restored = from_envelope(legacy)
        assert restored.n == 3

    def test_checksumless_v2_payload_still_loads(self):
        envelope = to_envelope(MisraGries(8).extend([1, 2]))
        del envelope["checksum"]
        assert from_envelope(envelope).n == 2

    def test_single_digit_flip_anywhere_is_detected(self):
        payload = dumps(MisraGries(8).extend([1, 1, 2, 3, 3, 3]))
        for i, char in enumerate(payload):
            if not char.isdigit():
                continue
            flipped = payload[:i] + str((int(char) + 1) % 10) + payload[i + 1 :]
            with pytest.raises(SerializationError):
                loads(flipped)
