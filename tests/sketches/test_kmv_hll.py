"""Unit tests for the distinct-count sketches (KMV, HyperLogLog)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MergeError, ParameterError, merge_all
from repro.sketches import HyperLogLog, KMinValues


@pytest.fixture(scope="module")
def big_stream():
    rng = np.random.default_rng(1)
    items = rng.integers(0, 30_000, size=150_000).tolist()
    return items, len(set(items))


class TestKMinValues:
    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            KMinValues(1)

    def test_small_cardinality_exact(self):
        kmv = KMinValues(64, seed=1).extend([1, 2, 3, 2, 1])
        assert kmv.distinct() == 3
        assert kmv.n == 5

    def test_duplicates_dont_grow_the_sketch(self):
        kmv = KMinValues(64, seed=1).extend([7] * 1000)
        assert kmv.size() == 1
        assert kmv.distinct() == 1

    def test_estimate_within_relative_error(self, big_stream):
        items, true_d = big_stream
        kmv = KMinValues(1024, seed=2).extend(items)
        assert abs(kmv.distinct() - true_d) / true_d <= 5 * kmv.relative_error

    def test_merge_is_lossless(self, big_stream):
        """Merged KMV state equals the sequentially built state exactly."""
        items, _ = big_stream
        sequential = KMinValues(512, seed=3).extend(items)
        parts = [KMinValues(512, seed=3).extend(items[i::8]) for i in range(8)]
        merged = merge_all(parts, strategy="random", rng=4)
        assert merged.to_dict()["values"] == sequential.to_dict()["values"]
        assert merged.n == sequential.n

    def test_idempotent_merge(self):
        """Merging a sketch with a copy of itself changes nothing
        (distinct counting is a lattice, not a sum)."""
        from repro.core import dumps, loads

        kmv = KMinValues(64, seed=5).extend(range(1000))
        clone = loads(dumps(kmv))
        before = kmv.distinct()
        kmv.merge(clone)
        assert kmv.distinct() == before

    def test_seed_mismatch_refused(self):
        with pytest.raises(MergeError):
            KMinValues(64, seed=1).merge(KMinValues(64, seed=2))

    def test_k_mismatch_refused(self):
        with pytest.raises(MergeError):
            KMinValues(64).merge(KMinValues(128))

    def test_size_bounded_by_k(self):
        kmv = KMinValues(32, seed=1).extend(range(10_000))
        assert kmv.size() == 32


class TestHyperLogLog:
    def test_invalid_precision(self):
        for bad in (3, 19):
            with pytest.raises(ParameterError):
                HyperLogLog(p=bad)

    def test_small_range_linear_counting(self):
        hll = HyperLogLog(p=10, seed=1).extend(range(100))
        assert abs(hll.distinct() - 100) <= 10

    def test_estimate_within_relative_error(self, big_stream):
        items, true_d = big_stream
        hll = HyperLogLog(p=12, seed=2).extend(items)
        assert abs(hll.distinct() - true_d) / true_d <= 5 * hll.relative_error

    def test_merge_is_lossless(self, big_stream):
        items, _ = big_stream
        sequential = HyperLogLog(p=10, seed=3).extend(items)
        parts = [HyperLogLog(p=10, seed=3).extend(items[i::6]) for i in range(6)]
        merged = merge_all(parts, strategy="chain")
        assert (merged._registers == sequential._registers).all()

    def test_idempotent_merge(self):
        from repro.core import dumps, loads

        hll = HyperLogLog(p=8, seed=4).extend(range(5_000))
        before = hll.distinct()
        hll.merge(loads(dumps(hll)))
        assert hll.distinct() == before

    def test_precision_mismatch_refused(self):
        with pytest.raises(MergeError):
            HyperLogLog(p=10, seed=1).merge(HyperLogLog(p=12, seed=1))

    def test_seed_mismatch_refused(self):
        with pytest.raises(MergeError):
            HyperLogLog(p=10, seed=1).merge(HyperLogLog(p=10, seed=2))

    def test_size_is_register_count(self):
        assert HyperLogLog(p=8).size() == 256

    def test_weight_affects_n_not_distinct(self):
        hll = HyperLogLog(p=8, seed=5)
        hll.update("x", weight=100)
        assert hll.n == 100
        assert abs(hll.distinct() - 1) <= 1
