"""Unit tests for the Bloom filter and AMS F2 sketch."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core import MergeError, ParameterError, merge_all
from repro.sketches import AmsF2Sketch, BloomFilter


class TestBloomFilter:
    def test_invalid_geometry(self):
        with pytest.raises(ParameterError):
            BloomFilter(4)
        with pytest.raises(ParameterError):
            BloomFilter(64, hashes=0)

    def test_for_capacity_sizing(self):
        bf = BloomFilter.for_capacity(1_000, 0.01)
        assert bf.bits >= 9_000  # ~9.6 bits/item at 1% fp
        assert 5 <= bf.hashes <= 10

    def test_for_capacity_validates(self):
        with pytest.raises(ParameterError):
            BloomFilter.for_capacity(0)
        with pytest.raises(ParameterError):
            BloomFilter.for_capacity(10, fp_rate=1.5)

    def test_no_false_negatives(self):
        bf = BloomFilter.for_capacity(500, 0.01, seed=1)
        bf.extend(range(500))
        assert all(i in bf for i in range(500))

    def test_false_positive_rate_near_design(self):
        bf = BloomFilter.for_capacity(1_000, 0.01, seed=2)
        bf.extend(range(1_000))
        fp = sum(1 for i in range(100_000, 110_000) if i in bf) / 10_000
        assert fp <= 0.03

    def test_merge_is_union(self):
        a = BloomFilter(1024, 4, seed=3).extend(range(100))
        b = BloomFilter(1024, 4, seed=3).extend(range(100, 200))
        a.merge(b)
        assert all(i in a for i in range(200))

    def test_merge_idempotent(self):
        from repro.core import dumps, loads

        bf = BloomFilter(256, 3, seed=4).extend(range(50))
        fill = bf.fill_fraction
        bf.merge(loads(dumps(bf)))
        assert bf.fill_fraction == fill

    def test_geometry_mismatch_refused(self):
        with pytest.raises(MergeError):
            BloomFilter(256, 3, seed=1).merge(BloomFilter(512, 3, seed=1))

    def test_string_items(self):
        bf = BloomFilter(512, 4, seed=5).extend(["alice", "bob"])
        assert "alice" in bf
        assert bf.might_contain("bob")


class TestAmsF2:
    def test_invalid_geometry(self):
        with pytest.raises(ParameterError):
            AmsF2Sketch(0, 3)

    def test_depth_made_odd(self):
        assert AmsF2Sketch(8, 4).depth == 5

    def test_single_item_exact(self):
        ams = AmsF2Sketch(16, 3, seed=1)
        ams.update("x", weight=10)
        # one item: every cell is (+-10); F2 estimate is exactly 100
        assert ams.f2() == 100.0

    def test_estimate_concentrates(self):
        rng = np.random.default_rng(2)
        stream = rng.integers(0, 300, size=30_000).tolist()
        truth = Counter(stream)
        f2_true = sum(c * c for c in truth.values())
        ams = AmsF2Sketch(128, 5, seed=3).extend(stream)
        assert abs(ams.f2() - f2_true) / f2_true <= 0.25

    def test_merge_equals_sequential(self):
        rng = np.random.default_rng(4)
        stream = rng.integers(0, 100, size=5_000).tolist()
        sequential = AmsF2Sketch(32, 3, seed=5).extend(stream)
        parts = [AmsF2Sketch(32, 3, seed=5).extend(stream[i::4]) for i in range(4)]
        merged = merge_all(parts, strategy="tree")
        assert (merged._cells == sequential._cells).all()

    def test_seed_mismatch_refused(self):
        with pytest.raises(MergeError):
            AmsF2Sketch(16, 3, seed=1).merge(AmsF2Sketch(16, 3, seed=2))

    def test_f2_grows_with_skew(self):
        flat = AmsF2Sketch(64, 5, seed=6).extend(list(range(1_000)))
        skewed = AmsF2Sketch(64, 5, seed=6).extend([1] * 1_000)
        assert skewed.f2() > 10 * flat.f2()
