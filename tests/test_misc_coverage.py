"""Focused tests for helper paths not covered by the main suites."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EmptySummaryError, ParameterError
from repro.quantiles.estimator import check_quantile, weighted_select


class TestWeightedSelect:
    def test_basic_selection(self):
        pairs = [(1.0, 2.0), (2.0, 2.0), (3.0, 2.0)]
        assert weighted_select(pairs, target=1.0, total=6.0) == 1.0
        assert weighted_select(pairs, target=3.0, total=6.0) == 2.0
        assert weighted_select(pairs, target=6.0, total=6.0) == 3.0

    def test_target_clamped(self):
        pairs = [(5.0, 1.0)]
        assert weighted_select(pairs, target=-10, total=1.0) == 5.0
        assert weighted_select(pairs, target=99, total=1.0) == 5.0

    def test_empty_raises(self):
        with pytest.raises(EmptySummaryError):
            weighted_select([], target=1, total=1)


class TestCheckQuantile:
    def test_bounds(self):
        assert check_quantile(0) == 0.0
        assert check_quantile(1) == 1.0
        for bad in (-0.1, 1.1):
            with pytest.raises(ParameterError):
                check_quantile(bad)


class TestGKInternals:
    def test_compress_reduces_tuples(self):
        from repro.quantiles import GKQuantiles

        gk = GKQuantiles(0.1)
        for v in np.random.default_rng(1).random(500):
            gk._insert(float(v), 1)
        before = gk.size()
        gk.compress()
        assert gk.size() < before

    def test_compress_preserves_total_g(self):
        from repro.quantiles import GKQuantiles

        gk = GKQuantiles(0.05).extend(np.random.default_rng(2).random(1_000))
        gk.compress()
        assert sum(g for _, g, _ in gk._tuples) == 1_000

    def test_error_bound_property_empty(self):
        from repro.quantiles import GKQuantiles

        assert GKQuantiles(0.1).error_bound == 0.0


class TestSpaceSavingExtras:
    def test_contains(self):
        from repro.frequency import SpaceSaving

        ss = SpaceSaving(4).extend([1, 1, 2])
        assert 1 in ss
        assert 99 not in ss

    def test_error_bound_property(self):
        from repro.frequency import SpaceSaving

        ss = SpaceSaving(10).extend(range(100))
        assert ss.error_bound == 10.0


class TestMisraGriesExtras:
    def test_error_bound_property(self):
        from repro.frequency import MisraGries

        mg = MisraGries(9).extend(range(100))
        assert mg.error_bound == 10.0

    def test_counters_is_a_copy(self):
        from repro.frequency import MisraGries

        mg = MisraGries(4).extend([1, 1])
        snapshot = mg.counters()
        snapshot[1] = 999
        assert mg.estimate(1) == 2


class TestMergeStrategiesRegistry:
    def test_registry_names(self):
        from repro.core.merge import MERGE_STRATEGIES

        assert set(MERGE_STRATEGIES) == {"chain", "tree", "random", "kway"}


class TestRangeSpaceExtras:
    def test_intervals_check_points_1d_reshape(self):
        from repro.ranges import Intervals1D

        pts = Intervals1D().check_points(np.array([1.0, 2.0]))
        assert pts.shape == (2, 1)

    def test_count_helper(self):
        from repro.ranges import Rectangles2D

        pts = np.array([[0.5, 0.5], [2.0, 2.0]])
        assert Rectangles2D().count(pts, (0, 1, 0, 1)) == 1


class TestKernelExtras:
    def test_hull_method_returns_hull_of_kernel(self):
        from repro.kernels import EpsKernel, convex_hull

        pts = np.random.default_rng(3).normal(size=(500, 2))
        kernel = EpsKernel(0.1).extend_points(pts)
        hull = kernel.hull()
        assert len(hull) <= kernel.size()
        assert np.allclose(
            np.sort(hull, axis=0), np.sort(convex_hull(kernel.kernel_points()), axis=0)
        )

    def test_empty_kernel_points(self):
        from repro.kernels import EpsKernel

        assert EpsKernel(0.1).kernel_points().shape == (0, 2)


class TestDecayedExtras:
    def test_update_without_timestamp_uses_reference(self):
        from repro.decay import DecayedMisraGries

        dmg = DecayedMisraGries(4, half_life=10.0)
        dmg.observe("x", 100.0)
        dmg.update("y", weight=2)
        assert dmg.reference_time == 100.0
        assert dmg.estimate("y") == pytest.approx(2.0)

    def test_contains(self):
        from repro.decay import DecayedMisraGries

        dmg = DecayedMisraGries(4, half_life=10.0)
        dmg.observe("x", 0.0)
        assert "x" in dmg
        assert "y" not in dmg


class TestWindowedExtras:
    def test_horizon_property(self):
        from repro.decay import WindowedMisraGries

        w = WindowedMisraGries(4, bucket_width=2.5, num_buckets=4)
        assert w.horizon == 10.0


class TestCLIExtras:
    def test_parse_item_precedence(self):
        from repro.cli import _parse_item

        assert _parse_item("42") == 42
        assert _parse_item("4.5") == 4.5
        assert _parse_item("abc") == "abc"
        assert _parse_item("  7 ") == 7

    def test_parse_args_kv_literals(self):
        from repro.cli import _parse_args_kv

        kwargs = _parse_args_kv(["k=8", "epsilon=0.5", "name=foo"])
        assert kwargs == {"k": 8, "epsilon": 0.5, "name": "foo"}

    def test_parse_args_kv_none(self):
        from repro.cli import _parse_args_kv

        assert _parse_args_kv(None) == {}
