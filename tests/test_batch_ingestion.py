"""Batch ingestion ≡ sequential weighted updates, for every registered type.

The `update_batch` contract: feeding ``(items, weights)`` in one call is
equivalent to the sequential loop ``for x, w in zip(items, weights):
update(x, w)``.  Equivalence comes in two strengths and every registered
summary is pinned to one of them (the suite fails loudly when a new
registration forgets to classify itself):

- **exact** — the serialized state is identical.  Holds for linear
  sketches (CountMin, CountSketch, AMS), idempotent-join lattices
  (HyperLogLog, Bloom, KMV, EpsKernel), exact baselines, and every type
  that relies on the generic per-item fallback.
- **semantic** — the batch fast path legitimately reorders or
  restructures (Counter pre-aggregation for MG/SS, bulk compaction for
  the quantile summaries), so states may differ; ``n`` must still match
  exactly and queries must agree within the summary's error bound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np
import pytest

from repro.core import ParameterError, SummaryBundle, registered_names
from repro.core.base import normalize_batch

# ---------------------------------------------------------------------------
# Per-type specifications
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchSpec:
    name: str
    factory: Callable[[], Any]
    feed: Callable[[], list]
    #: "exact" | "frequency" | "decay_frequency" | "quantile" | "ranges"
    #: | "kernel"
    mode: str
    #: frequency mode: allowed estimate gap as a fraction of total weight
    freq_bound: float = 0.0
    #: quantile mode: allowed rank error per summary vs the exact stream
    rank_tol: float = 0.1
    #: cap on generated weights (EqualWeightQuantiles has capacity s)
    max_weight: int = 5
    #: canonicalize to_dict payloads before exact comparison
    canon: Optional[Callable[[dict], dict]] = None
    #: False for types whose ``n`` counts observations, not weight mass
    #: (DecayedMisraGries: weight is decayed float mass)
    weight_in_n: bool = True


def _ints(seed: int, n: int = 150, hi: int = 40) -> list:
    return np.random.default_rng(seed).integers(0, hi, size=n).tolist()


def _vals(seed: int, n: int = 150) -> list:
    return np.random.default_rng(seed).random(n).tolist()


def _pts(seed: int, n: int = 40) -> list:
    return list(np.random.default_rng(seed).random((n, 2)))


def _sorted_values(payload: dict) -> dict:
    # KMV's keep-heap order depends on insertion order; the *set* is the state
    out = dict(payload)
    out["values"] = sorted(out["values"])
    return out


def _specs() -> List[BatchSpec]:
    from repro.decay import DecayedMisraGries, WindowedMisraGries
    from repro.frequency import (
        ConservativeCountMin,
        CountMin,
        CountSketch,
        DyadicHierarchy,
        ExactCounter,
        MajorityVote,
        MisraGries,
        SpaceSaving,
    )
    from repro.kernels import EpsKernel
    from repro.quantiles import (
        BottomKSample,
        EqualWeightQuantiles,
        ExactQuantiles,
        GKQuantiles,
        HybridQuantiles,
        KLLQuantiles,
        MergeableQuantiles,
        MomentSketch,
        MRLQuantiles,
    )
    from repro.ranges import EpsApproximation
    from repro.sketches import AmsF2Sketch, BloomFilter, HyperLogLog, KMinValues

    return [
        BatchSpec(
            "misra_gries", lambda: MisraGries(8), lambda: _ints(1),
            mode="frequency", freq_bound=1 / 9,
        ),
        BatchSpec(
            "space_saving", lambda: SpaceSaving(8), lambda: _ints(2),
            mode="frequency", freq_bound=1 / 8,
        ),
        BatchSpec("majority_vote", MajorityVote, lambda: _ints(3), mode="exact"),
        BatchSpec(
            "count_min", lambda: CountMin(64, 4, seed=1), lambda: _ints(4),
            mode="exact",
        ),
        BatchSpec(
            "conservative_count_min",
            lambda: ConservativeCountMin(64, 4, seed=1),
            lambda: _ints(5),
            mode="exact",
        ),
        BatchSpec(
            "dyadic_hierarchy",
            lambda: DyadicHierarchy(8, 8),
            lambda: _ints(6, hi=256),
            mode="frequency", freq_bound=1 / 9,
        ),
        BatchSpec(
            "count_sketch", lambda: CountSketch(64, 5, seed=1), lambda: _ints(7),
            mode="exact",
        ),
        BatchSpec("exact_counter", ExactCounter, lambda: _ints(8), mode="exact"),
        BatchSpec("exact_quantiles", ExactQuantiles, lambda: _vals(9), mode="exact"),
        BatchSpec(
            # bulk insertion defers compression to the end of the batch, so
            # states diverge from the per-item schedule; the rank guarantee
            # is what the fast path preserves
            "gk_quantiles", lambda: GKQuantiles(0.05), lambda: _vals(10),
            mode="quantile",
        ),
        BatchSpec(
            "equal_weight_quantiles",
            lambda: EqualWeightQuantiles(32, rng=1),
            lambda: _vals(11, n=6),
            mode="exact", max_weight=3,
        ),
        BatchSpec(
            "mergeable_quantiles",
            lambda: MergeableQuantiles(128, rng=1),
            lambda: _vals(12),
            mode="quantile",
        ),
        BatchSpec(
            "hybrid_quantiles",
            lambda: HybridQuantiles(0.05, rng=1),
            lambda: _vals(13),
            mode="quantile",
        ),
        BatchSpec(
            "kll_quantiles",
            lambda: KLLQuantiles(200, rng=1),
            lambda: _vals(14),
            mode="quantile",
        ),
        BatchSpec(
            # batch ingestion sums the power matrix in one vectorized pass,
            # so the float accumulation order differs from per-item updates;
            # the quantile guarantee is what both schedules preserve
            "moment_sketch",
            lambda: MomentSketch(10),
            lambda: _vals(22),
            mode="quantile",
        ),
        BatchSpec(
            "mrl_quantiles", lambda: MRLQuantiles(128), lambda: _vals(15),
            mode="quantile",
        ),
        BatchSpec(
            "bottom_k_sample",
            lambda: BottomKSample(2000, rng=1),
            lambda: _vals(16),
            mode="quantile", rank_tol=0.05,
        ),
        BatchSpec(
            "eps_approximation",
            lambda: EpsApproximation("intervals_1d", s=64, rng=1),
            lambda: _vals(17),
            mode="ranges",
        ),
        BatchSpec("eps_kernel", lambda: EpsKernel(0.2), lambda: _pts(18), mode="kernel"),
        BatchSpec(
            "k_min_values", lambda: KMinValues(16, seed=1), lambda: _ints(19),
            mode="exact", canon=_sorted_values,
        ),
        BatchSpec(
            "hyperloglog", lambda: HyperLogLog(p=4, seed=1), lambda: _ints(20),
            mode="exact",
        ),
        BatchSpec(
            "bloom_filter", lambda: BloomFilter(256, 3, seed=1), lambda: _ints(21),
            mode="exact",
        ),
        BatchSpec(
            "ams_f2", lambda: AmsF2Sketch(8, 3, seed=1), lambda: _ints(22),
            mode="exact",
        ),
        BatchSpec(
            # Counter pre-aggregation reorders decrements; each run stays
            # within N_decayed/(k+1) of truth, so runs differ by at most 2x
            "decayed_misra_gries",
            lambda: DecayedMisraGries(8, half_life=10.0),
            lambda: _ints(23),
            mode="decay_frequency", freq_bound=2 / 9, weight_in_n=False,
        ),
        BatchSpec(
            # batches delegate to the latest bucket's pre-aggregated MG path
            "windowed_misra_gries",
            lambda: WindowedMisraGries(8, bucket_width=5.0, num_buckets=8),
            lambda: _ints(24),
            mode="frequency", freq_bound=2 / 9,
        ),
    ]


def _windowed_specs(base_specs: List[BatchSpec]) -> List[BatchSpec]:
    """Derive a spec for every auto-registered ``windowed.<name>`` variant.

    The combinator inherits the generic per-item ``update_batch``
    fallback, so batch ingestion is *exactly* the sequential loop —
    every derived spec pins mode="exact" (``weight_in_n`` follows the
    base type, since the window's ``n`` is the sum of its bucket
    sub-summaries' ``n``).
    """
    from repro.windows import windowed_names

    derived = set(windowed_names())
    specs = []
    for spec in base_specs:
        name = f"windowed.{spec.name}"
        if name not in derived:
            continue
        specs.append(
            BatchSpec(
                name,
                lambda s=spec: s.factory().windowed(eps=0.25, granularity=4),
                spec.feed,
                mode="exact",
                max_weight=spec.max_weight,
                weight_in_n=spec.weight_in_n,
            )
        )
    return specs


BASE_SPECS: Dict[str, BatchSpec] = {spec.name: spec for spec in _specs()}
SPECS: Dict[str, BatchSpec] = dict(BASE_SPECS)
SPECS.update({spec.name: spec for spec in _windowed_specs(list(BASE_SPECS.values()))})


def test_every_registered_type_has_a_batch_spec():
    missing = set(registered_names()) - set(SPECS)
    assert not missing, f"batch suite misses registered types: {missing}"


@pytest.fixture(params=sorted(SPECS), ids=sorted(SPECS))
def spec(request) -> BatchSpec:
    return SPECS[request.param]


# ---------------------------------------------------------------------------
# Equivalence machinery
# ---------------------------------------------------------------------------


def _weights_for(spec: BatchSpec, n: int) -> list:
    return (
        np.random.default_rng(1000 + hash(spec.name) % 1000)
        .integers(1, spec.max_weight + 1, size=n)
        .tolist()
    )


def _sequential(spec: BatchSpec, items, weights):
    summary = spec.factory()
    if weights is None:
        for item in items:
            summary.update(item)
    else:
        for item, weight in zip(items, weights):
            summary.update(item, weight=weight)
    return summary


def _batched(spec: BatchSpec, items, weights):
    summary = spec.factory()
    summary.update_batch(items, weights)
    return summary


def _exact_rank(items, weights) -> Callable[[float], float]:
    reps = np.repeat(
        np.asarray(items, dtype=np.float64),
        np.ones(len(items), dtype=np.int64) if weights is None else weights,
    )
    total = len(reps)

    def rank(x: float) -> float:
        return float((reps <= x).sum()) / total

    return rank


def _assert_equivalent(spec: BatchSpec, seq, bat, items, weights) -> None:
    assert bat.n == seq.n
    if spec.mode == "exact":
        a, b = seq.to_dict(), bat.to_dict()
        if spec.canon is not None:
            a, b = spec.canon(a), spec.canon(b)
        assert a == b
    elif spec.mode == "frequency":
        allowed = spec.freq_bound * seq.n + 1
        for item in set(items):
            assert abs(seq.estimate(item) - bat.estimate(item)) <= allowed
    elif spec.mode == "decay_frequency":
        # estimates live in decayed-mass units; the bound's denominator is
        # the decayed total, not the observation count n
        assert abs(seq.decayed_total - bat.decayed_total) <= 1e-9 * max(
            1.0, seq.decayed_total
        )
        allowed = spec.freq_bound * seq.decayed_total + 1
        for item in set(items):
            assert abs(seq.estimate(item) - bat.estimate(item)) <= allowed
    elif spec.mode == "quantile":
        rank = _exact_rank(items, weights)
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            for summary in (seq, bat):
                assert abs(rank(summary.quantile(q)) - q) <= spec.rank_tol
    elif spec.mode == "ranges":
        rank = _exact_rank(items, weights)
        for lo, hi in ((0.2, 0.7), (0.0, 0.5)):
            true = (rank(hi) - rank(lo)) * seq.n
            for summary in (seq, bat):
                assert abs(summary.count((lo, hi)) - true) <= 0.3 * seq.n + 1
    elif spec.mode == "kernel":
        np.testing.assert_allclose(seq.kernel_points(), bat.kernel_points())
    else:  # pragma: no cover - spec table bug
        raise AssertionError(f"unknown mode {spec.mode!r}")


class TestBatchEquivalence:
    def test_unweighted(self, spec):
        items = spec.feed()
        seq = _sequential(spec, items, None)
        bat = _batched(spec, items, None)
        _assert_equivalent(spec, seq, bat, items, None)

    def test_weighted(self, spec):
        items = spec.feed()
        weights = _weights_for(spec, len(items))
        seq = _sequential(spec, items, weights)
        bat = _batched(spec, items, weights)
        if spec.weight_in_n:
            assert bat.n == sum(weights)
        _assert_equivalent(spec, seq, bat, items, weights)

    def test_numpy_weights_accepted(self, spec):
        items = spec.feed()
        weights = np.asarray(_weights_for(spec, len(items)), dtype=np.int64)
        summary = _batched(spec, items, weights)
        expected = int(weights.sum()) if spec.weight_in_n else len(items)
        assert summary.n == expected

    def test_extend_and_from_items_take_weights(self, spec):
        items = spec.feed()
        weights = _weights_for(spec, len(items))
        via_extend = spec.factory().extend(items, weights)
        via_batch = _batched(spec, items, weights)
        expected = sum(weights) if spec.weight_in_n else len(items)
        assert via_extend.n == via_batch.n == expected
        cls = type(via_batch)
        try:
            via_ctor = cls.from_items(items, weights=weights, **{})
        except TypeError:
            pytest.skip("type needs constructor arguments; covered via extend")
        assert via_ctor.n == expected

    def test_empty_batch_is_noop(self, spec):
        summary = spec.factory()
        summary.update_batch([])
        assert summary.n == 0
        assert summary.is_empty


# ---------------------------------------------------------------------------
# normalize_batch validation
# ---------------------------------------------------------------------------


class TestNormalizeBatch:
    def test_weight_length_mismatch(self):
        with pytest.raises(ParameterError):
            normalize_batch([1, 2, 3], [1, 2])

    def test_nonpositive_weights(self):
        for bad in ([1, 0, 1], [1, -2, 1]):
            with pytest.raises(ParameterError):
                normalize_batch([1, 2, 3], bad)

    def test_fractional_weights(self):
        with pytest.raises(ParameterError):
            normalize_batch([1, 2], [1.5, 2.0])

    def test_integer_valued_float_weights_ok(self):
        _, weights, total = normalize_batch([1, 2], [2.0, 3.0])
        assert weights.tolist() == [2, 3]
        assert total == 5

    def test_no_weights(self):
        items, weights, total = normalize_batch([7, 8, 9], None)
        assert list(items) == [7, 8, 9]
        assert weights is None
        assert total == 3


# ---------------------------------------------------------------------------
# The headline bugfix: O(polylog) weighted updates for quantile summaries
# ---------------------------------------------------------------------------


class TestWeightedUpdateComplexity:
    @pytest.mark.parametrize(
        "name", ["kll_quantiles", "mergeable_quantiles", "mrl_quantiles",
                 "hybrid_quantiles"],
    )
    def test_huge_weight_is_fast_and_correct(self, name):
        spec = SPECS[name]
        summary = spec.factory()
        start = time.perf_counter()
        summary.update(3.5, weight=10**6)
        elapsed = time.perf_counter() - start
        # the old code looped range(weight): ~seconds.  Polylog: ~microseconds.
        assert elapsed < 0.5, f"weighted update took {elapsed:.3f}s"
        assert summary.n == 10**6
        assert summary.quantile(0.5) == 3.5

    def test_kll_mixed_weighted_stream_stays_accurate(self):
        spec = SPECS["kll_quantiles"]
        rng = np.random.default_rng(7)
        items = rng.random(2000)
        weights = rng.integers(1, 2000, size=2000)
        summary = spec.factory()
        summary.update_batch(items, weights)
        rank = _exact_rank(items, weights)
        for q in (0.1, 0.5, 0.9):
            assert abs(rank(summary.quantile(q)) - q) <= 0.05


# ---------------------------------------------------------------------------
# HyperLogLog register encoding
# ---------------------------------------------------------------------------


class TestHllRegisterEncoding:
    def test_registers_serialize_compact_and_roundtrip(self):
        from repro.sketches import HyperLogLog

        hll = HyperLogLog(p=8, seed=3).extend(_ints(30, n=500, hi=10_000))
        payload = hll.to_dict()
        assert isinstance(payload["registers"], str)  # base64, not a list
        restored = HyperLogLog.from_dict(payload)
        assert restored.to_dict() == payload
        assert restored.distinct() == hll.distinct()

    def test_legacy_list_registers_still_accepted(self):
        from repro.sketches import HyperLogLog

        hll = HyperLogLog(p=8, seed=3).extend(_ints(31, n=500, hi=10_000))
        payload = hll.to_dict()
        legacy = dict(payload)
        legacy["registers"] = np.frombuffer(
            __import__("base64").b64decode(payload["registers"]), dtype=np.uint8
        ).tolist()
        restored = HyperLogLog.from_dict(legacy)
        assert restored.to_dict() == payload


# ---------------------------------------------------------------------------
# Bundle-level batched ingestion
# ---------------------------------------------------------------------------


class TestBundleBatch:
    def _bundle(self):
        from repro.frequency import CountMin
        from repro.sketches import HyperLogLog

        return (
            SummaryBundle()
            .add("hot", CountMin(64, 4, seed=1), field="page")
            .add("users", HyperLogLog(p=6, seed=2), field="user")
        )

    def test_weighted_extend_matches_per_record_update(self):
        records = [
            {"page": f"/p{i % 7}", "user": i % 13} for i in range(60)
        ]
        weights = np.random.default_rng(33).integers(1, 5, size=60).tolist()
        batched = self._bundle().extend(records, weights)
        looped = self._bundle()
        for record, weight in zip(records, weights):
            for _ in range(weight):
                looped.update(record)
        assert batched.n == sum(weights) == looped.n
        assert batched["hot"].to_dict() == looped["hot"].to_dict()
        assert batched["users"].to_dict() == looped["users"].to_dict()

    def test_sparse_records_skip_members(self):
        bundle = self._bundle()
        bundle.update_batch([{"page": "/a"}, {"user": 1}, {"page": "/a", "user": 2}])
        assert bundle.n == 3
        assert bundle["hot"].n == 2
        assert bundle["users"].n == 2

    def test_strict_raises_on_missing_field(self):
        with pytest.raises(ParameterError):
            self._bundle().update_batch([{"page": "/a"}], strict=True)
