"""End-to-end integration scenarios across subsystems.

Each test is a miniature of a real deployment: generate a workload,
distribute it, summarize, merge along a topology (through the wire
format where it matters), query at the root, and check the paper's
guarantee against exact ground truth.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro import (
    CountMin,
    EpsApproximation,
    EpsKernel,
    MergeableQuantiles,
    MisraGries,
    SpaceSaving,
)
from repro.analysis import frequency_errors, mg_error_bound, rank_errors
from repro.distributed import (
    ContiguousPartitioner,
    SkewedSizePartitioner,
    SortedPartitioner,
    build_topology,
    run_aggregation,
)
from repro.frequency import evaluate_heavy_hitters
from repro.kernels import diameter, directional_width
from repro.workloads import load_dataset, zipf_stream


class TestHeavyHitterPipeline:
    @pytest.mark.parametrize("topology", ["balanced", "chain", "kary"])
    def test_caida_like_heavy_hitters_end_to_end(self, topology):
        data = load_dataset("caida_like", 30_000, rng=1)
        truth = Counter(data.tolist())
        k = 64
        result = run_aggregation(
            data,
            SkewedSizePartitioner(alpha=1.0, rng=2),
            lambda: MisraGries(k),
            build_topology(topology, 20),
            serialize=True,
        )
        report = evaluate_heavy_hitters(result.summary, truth, phi=0.02)
        assert report.recall == 1.0
        err = frequency_errors(result.summary, truth)
        assert err.max_error <= mg_error_bound(k, len(data))
        assert result.max_size_en_route <= k

    def test_mg_and_ss_agree_on_candidates(self):
        data = zipf_stream(20_000, alpha=1.3, universe=3_000, rng=3)
        truth = Counter(data.tolist())
        mg_result = run_aggregation(
            data, ContiguousPartitioner(), lambda: MisraGries(32),
            build_topology("balanced", 8),
        )
        ss_result = run_aggregation(
            data, ContiguousPartitioner(), lambda: SpaceSaving(32),
            build_topology("balanced", 8),
        )
        phi = 0.05
        mg_hh = set(evaluate_heavy_hitters(mg_result.summary, truth, phi).reported)
        ss_hh = set(evaluate_heavy_hitters(ss_result.summary, truth, phi).reported)
        true_heavy = {i for i, c in truth.items() if c >= phi * len(data)}
        assert true_heavy <= mg_hh
        assert true_heavy <= ss_hh

    def test_countmin_through_simulator(self):
        data = zipf_stream(10_000, rng=4)
        truth = Counter(data.tolist())
        result = run_aggregation(
            data,
            ContiguousPartitioner(),
            lambda: CountMin(364, 5, seed=9),
            build_topology("chain", 10),
            serialize=True,
        )
        err = frequency_errors(result.summary, truth)
        assert err.max_error <= np.e / 364 * len(data) * 3  # generous


class TestQuantilePipeline:
    def test_latency_percentiles_across_sorted_shards(self):
        data = load_dataset("latency_like", 2**14, rng=5)
        result = run_aggregation(
            data,
            SortedPartitioner(),
            lambda: MergeableQuantiles.from_epsilon(0.02, rng=6),
            build_topology("random", 24, rng=7),
            serialize=True,
        )
        probes = np.quantile(data, [0.5, 0.9, 0.99])
        report = rank_errors(result.summary, data, probes)
        assert report.max_normalized <= 0.02

    def test_p99_value_is_usable(self):
        data = load_dataset("latency_like", 2**14, rng=8)
        result = run_aggregation(
            data,
            ContiguousPartitioner(),
            lambda: MergeableQuantiles.from_epsilon(0.01, rng=9),
            build_topology("balanced", 16),
        )
        p99 = result.summary.quantile(0.99)
        true_rank = np.searchsorted(np.sort(data), p99, side="right") / len(data)
        assert 0.98 <= true_rank <= 1.0


class TestGeometricPipeline:
    def test_eps_approximation_distributed(self):
        rng = np.random.default_rng(10)
        pts = rng.random((2**13, 2))
        parts = []
        for i, chunk in enumerate(np.array_split(pts, 16)):
            parts.append(
                EpsApproximation("rectangles_2d", s=128, rng=100 + i).extend_points(
                    chunk
                )
            )
        from repro.core import merge_all

        merged = merge_all(parts, strategy="random", rng=11)
        assert merged.n == len(pts)
        for _ in range(10):
            x, y = rng.random(2)
            true = ((pts[:, 0] <= x) & (pts[:, 1] <= y)).sum()
            assert abs(merged.count((-np.inf, x, -np.inf, y)) - true) <= 0.08 * len(pts)

    def test_eps_kernel_distributed(self):
        rng = np.random.default_rng(12)
        theta = rng.random(6_000) * 2 * np.pi
        pts = np.stack(
            [3 * np.cos(theta) + rng.normal(0, 0.1, 6_000),
             np.sin(theta) + rng.normal(0, 0.1, 6_000)],
            axis=1,
        )
        from repro.core import merge_all

        eps = 0.05
        parts = [EpsKernel(eps).extend_points(c) for c in np.array_split(pts, 12)]
        merged = merge_all(parts, strategy="chain")
        diam = diameter(pts)
        for angle in np.linspace(0, np.pi, 19):
            u = np.array([np.cos(angle), np.sin(angle)])
            assert directional_width(pts, u) - merged.width(u) <= eps * diam


class TestCrossSummaryConsistency:
    def test_all_frequency_summaries_rank_the_same_top_item(self):
        data = zipf_stream(15_000, alpha=1.5, universe=1_000, rng=13)
        items = data.tolist()
        truth = Counter(items)
        top = truth.most_common(1)[0][0]
        mg = MisraGries(32).extend(items)
        ss = SpaceSaving(32).extend(items)
        cm = CountMin(256, 4, seed=1).extend(items)
        for summary in (mg, ss, cm):
            monitored = (
                summary.counters() if hasattr(summary, "counters") else None
            )
            if monitored is not None:
                assert max(monitored, key=monitored.get) == top
        assert cm.estimate(top) >= truth[top]
