"""Unit tests for the sampling and MRL baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EmptySummaryError, MergeError, ParameterError, merge_all
from repro.quantiles import BottomKSample, ExactQuantiles, MRLQuantiles
from repro.workloads import chunk_evenly, value_stream


class TestBottomKSample:
    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            BottomKSample(0)

    def test_from_epsilon_is_quadratic(self):
        assert BottomKSample.from_epsilon(0.1).k == 100

    def test_sample_size_capped(self):
        bk = BottomKSample(10, rng=1).extend(np.arange(1000, dtype=float))
        assert bk.size() == 10
        assert bk.n == 1000

    def test_small_stream_kept_fully(self):
        bk = BottomKSample(100, rng=1).extend([1.0, 2.0, 3.0])
        assert bk.size() == 3
        assert bk.rank(2.0) == 2.0

    def test_merged_sample_is_uniform_over_union(self):
        """Merging shard samples must be distributed like sampling the
        union: the merged sample mean tracks the union mean."""
        data = value_stream(2**14, "uniform", rng=2)
        parts = [
            BottomKSample(400, rng=50 + i).extend(s)
            for i, s in enumerate(chunk_evenly(data, 8))
        ]
        merged = merge_all(parts, strategy="random", rng=3)
        assert merged.size() == 400
        assert merged.n == len(data)
        assert abs(merged.sample_values().mean() - data.mean()) < 0.05

    def test_rank_error_scales_as_sqrt_k(self):
        data = value_stream(2**14, "uniform", rng=4)
        n = len(data)
        exact = ExactQuantiles().extend(data)
        bk = BottomKSample(2_500, rng=5).extend(data)
        errs = [
            abs(bk.rank(x) - exact.rank(x))
            for x in np.quantile(data, np.linspace(0.1, 0.9, 9))
        ]
        # ~ n/sqrt(k) = n/50; allow a generous constant
        assert max(errs) <= 5 * n / 50

    def test_k_mismatch_refused(self):
        with pytest.raises(MergeError):
            BottomKSample(10).merge(BottomKSample(20))

    def test_empty_quantile_raises(self):
        with pytest.raises(EmptySummaryError):
            BottomKSample(10).quantile(0.5)

    def test_weighted_update_counts(self):
        bk = BottomKSample(10, rng=1)
        bk.update(1.0, weight=5)
        assert bk.n == 5


class TestMRLQuantiles:
    def test_invalid_s(self):
        with pytest.raises(ParameterError):
            MRLQuantiles(0)

    def test_deterministic_given_same_input(self):
        data = value_stream(4_096, "uniform", rng=6)
        a = MRLQuantiles(64).extend(data)
        b = MRLQuantiles(64).extend(data)
        assert a.quantile(0.5) == b.quantile(0.5)
        assert a.rank(0.5) == b.rank(0.5)

    def test_reasonable_accuracy_sequential(self):
        data = value_stream(2**14, "uniform", rng=7)
        n = len(data)
        mrl = MRLQuantiles(256).extend(data)
        exact = ExactQuantiles().extend(data)
        errs = [
            abs(mrl.rank(x) - exact.rank(x))
            for x in np.quantile(data, np.linspace(0.1, 0.9, 9))
        ]
        # deterministic bias ~ (levels * weight / 2); loose sanity bound
        assert max(errs) <= n * 0.05

    def test_bias_is_one_sided_upward(self):
        """Keeping even (0-based) indices systematically inflates ranks:
        ceil-rounding at every level pushes estimates up."""
        data = value_stream(2**14, "uniform", rng=8)
        mrl = MRLQuantiles(64).extend(data)
        exact = ExactQuantiles().extend(data)
        diffs = [
            mrl.rank(x) - exact.rank(x)
            for x in np.quantile(data, np.linspace(0.2, 0.8, 7))
        ]
        assert np.mean(diffs) >= 0

    def test_merge_combines(self):
        a = MRLQuantiles(16).extend(np.linspace(0, 1, 64))
        b = MRLQuantiles(16).extend(np.linspace(1, 2, 64))
        a.merge(b)
        assert a.n == 128
        assert 0.8 <= a.median() <= 1.2

    def test_s_mismatch_refused(self):
        with pytest.raises(MergeError):
            MRLQuantiles(16).merge(MRLQuantiles(32))

    def test_serialization_roundtrip(self):
        from repro.core import dumps, loads

        mrl = MRLQuantiles(16).extend(np.linspace(0, 1, 100))
        restored = loads(dumps(mrl))
        assert restored.rank(0.5) == mrl.rank(0.5)
        assert restored.n == mrl.n
