"""Unit tests for the moment sketch (Gan et al., VLDB 2018).

The sketch keeps the first ``k`` raw power sums plus min/max, so a merge
is an O(k) vector add — the cheapest fully-mergeable quantile summary in
the library.  Quantiles come from a maximum-smoothness (Legendre series)
density reconstruction, so accuracy claims are checked on the smooth
distributions the method targets; the adversarial tests check that
*merging* never costs accuracy relative to single-stream ingestion, per
the mergeability contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EmptySummaryError,
    MergeError,
    ParameterError,
    dumps,
    loads,
    merge_all,
)
from repro.quantiles import ExactQuantiles, KLLQuantiles, MomentSketch


def _rank_error(sketch, data: np.ndarray, qs=(0.1, 0.25, 0.5, 0.75, 0.9)):
    """Worst observed rank error (fraction of n) over the given quantiles."""
    data = np.sort(data)
    n = len(data)
    worst = 0.0
    for q in qs:
        estimate = sketch.quantile(q)
        rank = float(np.searchsorted(data, estimate))
        worst = max(worst, abs(rank - q * (n - 1)) / n)
    return worst


class TestConstruction:
    def test_invalid_k(self):
        for bad in (0, 1, 21, -3):
            with pytest.raises(ParameterError):
                MomentSketch(bad)

    def test_fresh_is_empty(self):
        sketch = MomentSketch(8)
        assert sketch.n == 0
        with pytest.raises(EmptySummaryError):
            sketch.quantile(0.5)

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ParameterError):
            MomentSketch(8).update(1.0, weight=0)

    def test_size_independent_of_n(self):
        sketch = MomentSketch(12)
        sketch.extend(np.random.default_rng(1).random(10_000).tolist())
        assert sketch.size() == 14  # k sums + min + max


class TestMoments:
    def test_mean_and_variance(self):
        rng = np.random.default_rng(2)
        data = rng.normal(3.0, 2.0, size=50_000)
        sketch = MomentSketch(8).extend(data.tolist())
        assert sketch.mean() == pytest.approx(float(data.mean()), rel=1e-9)
        assert sketch.variance() == pytest.approx(float(data.var()), rel=1e-9)

    def test_weighted_updates(self):
        a = MomentSketch(6)
        a.update(2.0, weight=3)
        b = MomentSketch(6)
        for _ in range(3):
            b.update(2.0)
        assert a.n == b.n == 3
        for i in range(1, 7):
            assert a.moment(i) == pytest.approx(b.moment(i))

    def test_point_mass(self):
        sketch = MomentSketch(8)
        sketch.update(7.0, weight=5)
        assert sketch.quantile(0.01) == 7.0
        assert sketch.quantile(0.99) == 7.0
        assert sketch.rank(6.9) == 0.0
        assert sketch.rank(7.0) == 5.0


class TestAccuracy:
    @pytest.mark.parametrize("dist", ["uniform", "gaussian"])
    def test_smooth_distributions(self, dist):
        rng = np.random.default_rng(5)
        if dist == "uniform":
            data = rng.random(20_000) * 10.0
        else:
            data = rng.normal(0.0, 1.0, size=20_000)
        sketch = MomentSketch(12).extend(data.tolist())
        assert _rank_error(sketch, data) <= 0.02

    def test_rank_is_monotone(self):
        rng = np.random.default_rng(6)
        data = rng.random(5_000)
        sketch = MomentSketch(10).extend(data.tolist())
        xs = np.linspace(0.0, 1.0, 64)
        ranks = [sketch.rank(float(x)) for x in xs]
        assert all(b >= a - 1e-9 for a, b in zip(ranks, ranks[1:]))
        assert ranks[0] == 0.0
        assert ranks[-1] == sketch.n


class TestMerge:
    def test_merge_is_exact_on_moments(self):
        rng = np.random.default_rng(7)
        chunks = [rng.random(500) for _ in range(8)]
        merged = merge_all([MomentSketch(10).extend(c.tolist()) for c in chunks])
        single = MomentSketch(10).extend(np.concatenate(chunks).tolist())
        assert merged.n == single.n
        for i in range(1, 11):
            assert merged.moment(i) == pytest.approx(single.moment(i), rel=1e-9)
        assert merged.minimum == single.minimum
        assert merged.maximum == single.maximum

    def test_incompatible_k_rejected(self):
        with pytest.raises(MergeError):
            MomentSketch(8).merge(MomentSketch(10))

    def test_merge_with_empty_is_noop(self):
        sketch = MomentSketch(8).extend([1.0, 2.0, 3.0])
        before = dumps(sketch)
        sketch.merge(MomentSketch(8))
        assert dumps(sketch) == before

    def test_adversarial_merge_trees_keep_accuracy(self):
        """The paper's contract: error after ANY merge tree matches the
        single-stream sketch.  Adversarial setup: 64 skewed shards (each
        shard covers a narrow slice of the domain, so partial merges see
        wildly different min/max), merged by chain / balanced / random
        trees, against quantile ground truth over the union."""
        rng = np.random.default_rng(11)
        shards = [
            (rng.random(250) + i) * (10.0 / 64) for i in rng.permutation(64)
        ]
        data = np.concatenate(shards)
        single = MomentSketch(12).extend(data.tolist())
        baseline = _rank_error(single, data)
        for strategy in ("chain", "tree", "random"):
            parts = [MomentSketch(12).extend(s.tolist()) for s in shards]
            rng_arg = 13 if strategy == "random" else None
            merged = merge_all(parts, strategy=strategy, rng=rng_arg)
            assert merged.n == len(data)
            # merge must not add error beyond float noise on the sums
            assert _rank_error(merged, data) <= baseline + 0.01, strategy

    def test_merge_tree_matches_exact_on_uniform(self):
        rng = np.random.default_rng(12)
        data = rng.random(16_000)
        exact = ExactQuantiles().extend(data.tolist())
        parts = [
            MomentSketch(12).extend(chunk.tolist())
            for chunk in np.split(data, 32)
        ]
        merged = merge_all(parts, strategy="tree")
        for q in (0.1, 0.5, 0.9):
            assert merged.quantile(q) == pytest.approx(
                exact.quantile(q), abs=0.01
            )


class TestSerialization:
    def test_round_trip(self):
        sketch = MomentSketch(10).extend(
            np.random.default_rng(3).random(1_000).tolist()
        )
        restored = loads(dumps(sketch))
        assert isinstance(restored, MomentSketch)
        assert restored.n == sketch.n
        assert restored.quantile(0.5) == sketch.quantile(0.5)
        assert _canonical(restored) == _canonical(sketch)

    def test_empty_round_trip(self):
        restored = loads(dumps(MomentSketch(8)))
        assert restored.n == 0
        with pytest.raises(EmptySummaryError):
            restored.quantile(0.5)


def _canonical(sketch) -> str:
    import json

    return json.dumps(sketch.to_dict(), sort_keys=True)


class TestCellEconomics:
    def test_smaller_than_kll_at_store_accuracy(self):
        """The cube's motivating trade: a moment-sketch cell is several
        times smaller than a KLL cell of comparable utility."""
        data = np.random.default_rng(4).random(5_000).tolist()
        moment = MomentSketch(12).extend(data)
        kll = KLLQuantiles(128, rng=1).extend(data)
        assert moment.size() * 5 <= kll.size()
