"""Property-based tests (hypothesis) for quantile-summary invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import merge_random_tree
from repro.quantiles import (
    ExactQuantiles,
    GKQuantiles,
    MergeableQuantiles,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(finite_floats, min_size=1, max_size=200)


@given(values=value_lists, q=st.floats(0.0, 1.0))
@settings(max_examples=150, deadline=None)
def test_exact_quantile_value_has_exact_rank(values, q):
    eq = ExactQuantiles().extend(values)
    value = eq.quantile(q)
    data = sorted(values)
    target = max(1, int(np.ceil(q * len(data))))
    assert data[target - 1] == value


@given(values=value_lists)
@settings(max_examples=100, deadline=None)
def test_exact_rank_is_monotone(values):
    eq = ExactQuantiles().extend(values)
    probes = sorted(values)
    ranks = [eq.rank(x) for x in probes]
    assert ranks == sorted(ranks)


@given(values=value_lists, eps=st.sampled_from([0.05, 0.1, 0.2]))
@settings(max_examples=100, deadline=None)
def test_gk_rank_error_within_eps(values, eps):
    gk = GKQuantiles(eps).extend(values)
    gk.compress()
    data = sorted(values)
    n = len(data)
    for x in data[:: max(1, n // 10)]:
        true_rank = sum(1 for v in data if v <= x)
        assert abs(gk.rank(x) - true_rank) <= eps * n + 1


@given(values=value_lists, eps=st.sampled_from([0.1, 0.2]), q=st.floats(0, 1))
@settings(max_examples=100, deadline=None)
def test_gk_quantile_rank_within_eps(values, eps, q):
    gk = GKQuantiles(eps).extend(values)
    data = sorted(values)
    n = len(data)
    value = gk.quantile(q)
    # with duplicates the value occupies a rank *interval*; the guarantee
    # is that the interval comes within eps*n of the target rank
    low = sum(1 for v in data if v < value) + 1
    high = sum(1 for v in data if v <= value)
    target = q * n
    distance = max(0.0, low - target, target - high)
    assert distance <= eps * n + 1


@given(
    values=st.lists(finite_floats, min_size=2, max_size=300),
    cuts=st.lists(st.integers(0, 10**6), max_size=5),
    seed=st.integers(0, 2**16),
    s=st.sampled_from([8, 16, 32]),
)
@settings(max_examples=100, deadline=None)
def test_mergeable_quantiles_rank_bounded_by_block_error(values, cuts, seed, s):
    """Under any split + any merge tree, rank error <= (#halvings) * weight
    contributions — conservatively bounded by s * levels... we assert the
    much simpler sound invariant: error <= n (sanity) and error <= total
    non-buffer weight / 2 + ... using the per-level bound 2^level."""
    positions = sorted({c % (len(values) + 1) for c in cuts})
    shards, prev = [], 0
    for p in positions:
        shards.append(values[prev:p])
        prev = p
    shards.append(values[prev:])
    shards = [sh for sh in shards if sh] or [values]
    parts = [
        MergeableQuantiles(s, rng=seed + i).extend(sh) for i, sh in enumerate(shards)
    ]
    merged = merge_random_tree(parts, rng=seed)
    assert merged.n == len(values)
    data = sorted(values)
    n = len(data)
    # sound deterministic envelope: a level-L block accumulated through L
    # halvings has rank error at most L * 2^(L-1) vs its raw data
    # (induction err(L) <= 2*err(L-1) + 2^(L-1)); one block per level.
    envelope = sum(
        level * 2 ** (level - 1) for level in merged.levels() if level >= 1
    )
    for x in data[:: max(1, n // 8)]:
        true_rank = sum(1 for v in data if v <= x)
        assert abs(merged.rank(x) - true_rank) <= envelope + 1e-9


@given(values=value_lists, s=st.sampled_from([8, 16]), seed=st.integers(0, 2**16))
@settings(max_examples=80, deadline=None)
def test_mergeable_quantiles_total_weight_conserved(values, s, seed):
    mq = MergeableQuantiles(s, rng=seed).extend(values)
    total_weight = len(mq._buffer) + sum(
        (2**level) * len(block)
        for level, blocks in mq._blocks.items()
        for block in blocks
    )
    assert total_weight == mq.n == len(values)


@given(values=value_lists, seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_mergeable_quantiles_rank_monotone(values, seed):
    mq = MergeableQuantiles(16, rng=seed).extend(values)
    probes = sorted(set(values))
    ranks = [mq.rank(x) for x in probes]
    assert ranks == sorted(ranks)


@given(values=value_lists, q=st.floats(0, 1), seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_mergeable_quantile_returns_stored_value(values, q, seed):
    """quantile() must return an actual data value (kernel property of
    sample-based summaries: answers come from the input)."""
    mq = MergeableQuantiles(8, rng=seed).extend(values)
    assert mq.quantile(q) in set(float(v) for v in values)
