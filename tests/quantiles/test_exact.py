"""Unit tests for the exact quantile oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EmptySummaryError, ParameterError
from repro.quantiles import ExactQuantiles


class TestRank:
    def test_rank_counts_at_most(self):
        eq = ExactQuantiles().extend([1.0, 2.0, 2.0, 5.0])
        assert eq.rank(0.5) == 0
        assert eq.rank(1.0) == 1
        assert eq.rank(2.0) == 3
        assert eq.rank(10.0) == 4

    def test_rank_matches_numpy(self, uniform_values):
        eq = ExactQuantiles().extend(uniform_values)
        data = np.sort(uniform_values)
        for x in (0.1, 0.33, 0.777):
            assert eq.rank(x) == np.searchsorted(data, x, side="right")


class TestQuantile:
    def test_extremes(self):
        eq = ExactQuantiles().extend([3.0, 1.0, 2.0])
        assert eq.quantile(0.0) == 1.0
        assert eq.quantile(1.0) == 3.0

    def test_median_odd(self):
        eq = ExactQuantiles().extend([5.0, 1.0, 3.0])
        assert eq.median() == 3.0

    def test_quantile_is_ceil_rank(self):
        eq = ExactQuantiles().extend([10.0, 20.0, 30.0, 40.0])
        assert eq.quantile(0.5) == 20.0
        assert eq.quantile(0.51) == 30.0

    def test_out_of_range_raises(self):
        eq = ExactQuantiles().extend([1.0])
        with pytest.raises(ParameterError):
            eq.quantile(1.5)

    def test_empty_raises(self):
        with pytest.raises(EmptySummaryError):
            ExactQuantiles().quantile(0.5)

    def test_cdf(self):
        eq = ExactQuantiles().extend([1.0, 2.0, 3.0, 4.0])
        assert eq.cdf(2.0) == 0.5

    def test_quantiles_batch(self):
        eq = ExactQuantiles().extend([1.0, 2.0, 3.0, 4.0])
        assert eq.quantiles([0.0, 1.0]) == [1.0, 4.0]


class TestMergeAndSerialize:
    def test_merge_equals_union(self):
        a = ExactQuantiles().extend([1.0, 3.0])
        b = ExactQuantiles().extend([2.0])
        a.merge(b)
        assert a.median() == 2.0
        assert a.n == 3

    def test_weighted_update(self):
        eq = ExactQuantiles()
        eq.update(5.0, weight=3)
        assert eq.n == 3
        assert eq.rank(5.0) == 3

    def test_invalid_weight(self):
        with pytest.raises(ParameterError):
            ExactQuantiles().update(1.0, weight=0)

    def test_serialization_roundtrip(self):
        from repro.core import dumps, loads

        eq = ExactQuantiles().extend([3.0, 1.0, 2.0])
        restored = loads(dumps(eq))
        assert restored.quantile(0.5) == eq.quantile(0.5)
        assert restored.n == 3
