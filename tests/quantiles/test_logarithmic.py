"""Unit tests for the fully mergeable quantile summary (Section 3.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EmptySummaryError,
    MergeError,
    ParameterError,
    merge_all,
)
from repro.quantiles import ExactQuantiles, MergeableQuantiles
from repro.workloads import chunk_evenly, sorted_copy, value_stream


class TestConstruction:
    def test_invalid_s(self):
        with pytest.raises(ParameterError):
            MergeableQuantiles(0)

    def test_from_epsilon_validates(self):
        with pytest.raises(ParameterError):
            MergeableQuantiles.from_epsilon(0)
        with pytest.raises(ParameterError):
            MergeableQuantiles.from_epsilon(0.1, delta=1.0)


class TestStructure:
    def test_binary_counter_shape(self):
        mq = MergeableQuantiles(16, rng=1).extend(np.arange(16 * 8))
        # 8 = 2^3 base blocks carry into a single level-3 block
        assert mq.levels() == {3: 1}

    def test_at_most_one_block_per_level_after_updates(self):
        mq = MergeableQuantiles(8, rng=1).extend(np.random.default_rng(2).random(999))
        assert all(count == 1 for count in mq.levels().values())

    def test_buffer_holds_remainder(self):
        mq = MergeableQuantiles(16, rng=1).extend(np.arange(20))
        assert mq.size() == 20  # 16 in a block + 4 buffered
        assert mq.n == 20

    def test_size_logarithmic_in_n(self):
        mq = MergeableQuantiles(32, rng=1).extend(
            np.random.default_rng(3).random(32 * 1024)
        )
        # one block per level: s * (log2(n/s) + 1) at most
        assert mq.size() <= 32 * (10 + 1)


class TestAccuracy:
    def test_sequential_rank_error(self, uniform_values):
        eps = 0.02
        mq = MergeableQuantiles.from_epsilon(eps, rng=5).extend(uniform_values)
        exact = ExactQuantiles().extend(uniform_values)
        n = len(uniform_values)
        for x in np.quantile(uniform_values, np.linspace(0.02, 0.98, 49)):
            assert abs(mq.rank(x) - exact.rank(x)) <= eps * n

    @pytest.mark.parametrize("strategy", ["chain", "tree", "random"])
    def test_merged_rank_error_independent_of_topology(self, strategy):
        """The Section 3.2 claim: error independent of the merge sequence."""
        eps = 0.05
        data = value_stream(2**14, "uniform", rng=8)
        n = len(data)
        shards = chunk_evenly(sorted_copy(data), 32)  # adversarial shards
        parts = [
            MergeableQuantiles.from_epsilon(eps, rng=3000 + i).extend(s)
            for i, s in enumerate(shards)
        ]
        rng = 4 if strategy == "random" else None
        merged = merge_all(parts, strategy=strategy, rng=rng)
        assert merged.n == n
        exact = ExactQuantiles().extend(data)
        for x in np.quantile(data, np.linspace(0.05, 0.95, 19)):
            assert abs(merged.rank(x) - exact.rank(x)) <= eps * n

    def test_quantile_answers_within_eps(self, uniform_values):
        eps = 0.05
        mq = MergeableQuantiles.from_epsilon(eps, rng=2).extend(uniform_values)
        data = np.sort(uniform_values)
        n = len(data)
        for q in np.linspace(0.0, 1.0, 21):
            value = mq.quantile(q)
            true_rank = np.searchsorted(data, value, side="right")
            assert abs(true_rank - q * n) <= eps * n + 1

    def test_skewed_merge_sizes(self):
        """Merging tiny summaries into a huge one must keep the bound."""
        eps = 0.05
        rng = np.random.default_rng(10)
        big = value_stream(2**13, "uniform", rng=rng)
        mq = MergeableQuantiles.from_epsilon(eps, rng=11).extend(big)
        total = list(big)
        for i in range(50):
            tiny_values = rng.random(3)
            tiny = MergeableQuantiles.from_epsilon(eps, rng=200 + i).extend(tiny_values)
            mq.merge(tiny)
            total.extend(tiny_values)
        data = np.sort(total)
        n = len(data)
        assert mq.n == n
        for q in (0.1, 0.5, 0.9):
            x = data[int(q * (n - 1))]
            true_rank = np.searchsorted(data, x, side="right")
            assert abs(mq.rank(x) - true_rank) <= eps * n


class TestMergeEdge:
    def test_s_mismatch_refused(self):
        with pytest.raises(MergeError, match="block size mismatch"):
            MergeableQuantiles(8).merge(MergeableQuantiles(16))

    def test_merge_with_empty(self):
        mq = MergeableQuantiles(8, rng=1).extend([1.0, 2.0])
        mq.merge(MergeableQuantiles(8, rng=2))
        assert mq.n == 2

    def test_empty_absorbs(self):
        mq = MergeableQuantiles(8, rng=1)
        mq.merge(MergeableQuantiles(8, rng=2).extend([1.0] * 20))
        assert mq.n == 20
        assert mq.rank(1.0) == 20

    def test_merge_does_not_mutate_other(self):
        a = MergeableQuantiles(4, rng=1).extend(np.arange(16))
        b = MergeableQuantiles(4, rng=2).extend(np.arange(16))
        b_size = b.size()
        a.merge(b)
        assert b.size() == b_size
        assert b.n == 16


class TestQueriesEdge:
    def test_empty_quantile_raises(self):
        with pytest.raises(EmptySummaryError):
            MergeableQuantiles(8).quantile(0.5)

    def test_weighted_update(self):
        mq = MergeableQuantiles(8, rng=1)
        mq.update(5.0, weight=3)
        assert mq.n == 3
        assert mq.rank(5.0) == 3

    def test_invalid_weight(self):
        with pytest.raises(ParameterError):
            MergeableQuantiles(8).update(1.0, weight=0)
