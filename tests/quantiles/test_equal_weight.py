"""Unit tests for the Section 3.1 equal-weight-merge summary."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EmptySummaryError, MergeError, ParameterError, merge_tree
from repro.quantiles import EqualWeightQuantiles, ExactQuantiles, random_halving


class TestRandomHalving:
    def test_output_is_half(self, rng):
        left = np.sort(rng.random(16))
        right = np.sort(rng.random(16))
        kept = random_halving(left, right, rng)
        assert len(kept) == 16

    def test_output_is_subset_of_union(self, rng):
        left = np.sort(rng.random(8))
        right = np.sort(rng.random(8))
        kept = random_halving(left, right, rng)
        union = set(np.concatenate([left, right]).tolist())
        assert set(kept.tolist()) <= union

    def test_output_sorted(self, rng):
        left = np.sort(rng.random(32))
        right = np.sort(rng.random(32))
        kept = random_halving(left, right, rng)
        assert (np.diff(kept) >= 0).all()

    def test_unequal_lengths_raise(self, rng):
        with pytest.raises(MergeError):
            random_halving(np.zeros(4), np.zeros(6), rng)

    def test_rank_perturbation_at_most_one_sample(self, rng):
        """One halving moves any rank estimate by at most one sample weight."""
        left = np.sort(rng.random(64))
        right = np.sort(rng.random(64))
        union = np.sort(np.concatenate([left, right]))
        kept = random_halving(left, right, rng)
        for x in rng.random(20):
            exact = np.searchsorted(union, x, side="right")
            estimate = 2 * np.searchsorted(kept, x, side="right")
            assert abs(estimate - exact) <= 1


class TestConstruction:
    def test_invalid_s(self):
        with pytest.raises(ParameterError):
            EqualWeightQuantiles(0)

    def test_from_epsilon_size(self):
        summary = EqualWeightQuantiles.from_epsilon(0.01, 0.01)
        assert summary.s >= 100

    def test_exact_while_small(self):
        summary = EqualWeightQuantiles(8).extend([3.0, 1.0, 2.0])
        assert summary.is_exact
        assert summary.rank(2.0) == 2

    def test_overflowing_base_raises(self):
        summary = EqualWeightQuantiles(4)
        with pytest.raises(ParameterError, match="at most s"):
            summary.extend(range(5))


class TestMerge:
    def test_equal_weight_merge_doubles_weight(self, rng):
        a = EqualWeightQuantiles(4, rng=1).extend([1.0, 2.0, 3.0, 4.0])
        b = EqualWeightQuantiles(4, rng=2).extend([5.0, 6.0, 7.0, 8.0])
        a.merge(b)
        assert a.sample_weight == 2.0
        assert a.size() == 4
        assert a.n == 8

    def test_small_merge_stays_exact(self):
        a = EqualWeightQuantiles(8, rng=1).extend([1.0, 2.0])
        b = EqualWeightQuantiles(8, rng=2).extend([3.0, 4.0])
        a.merge(b)
        assert a.is_exact
        assert a.size() == 4

    def test_unequal_n_refused(self):
        a = EqualWeightQuantiles(4, rng=1).extend([1.0, 2.0, 3.0, 4.0])
        b = EqualWeightQuantiles(4, rng=2).extend([5.0, 6.0])
        with pytest.raises(MergeError, match="equal total weights"):
            a.merge(b)

    def test_s_mismatch_refused(self):
        with pytest.raises(MergeError, match="budget mismatch"):
            EqualWeightQuantiles(4).merge(EqualWeightQuantiles(8))

    def test_update_after_sampling_refused(self):
        a = EqualWeightQuantiles(2, rng=1).extend([1.0, 2.0])
        b = EqualWeightQuantiles(2, rng=2).extend([3.0, 4.0])
        a.merge(b)
        with pytest.raises(ParameterError, match="while exact"):
            a.update(9.0)

    def test_balanced_tree_error_within_bound(self):
        """Section 3.1: balanced tree over equal shards -> eps*n error."""
        eps = 0.05
        s = EqualWeightQuantiles.from_epsilon(eps, 0.05).s
        m = 32
        rng = np.random.default_rng(6)
        data = rng.random(s * m)
        parts = [
            EqualWeightQuantiles(s, rng=1000 + i).extend(data[i * s : (i + 1) * s])
            for i in range(m)
        ]
        merged = merge_tree(parts)
        assert merged.n == len(data)
        assert merged.size() == s
        exact = ExactQuantiles().extend(data)
        for x in np.quantile(data, np.linspace(0.05, 0.95, 19)):
            assert abs(merged.rank(x) - exact.rank(x)) <= eps * len(data)


class TestQueries:
    def test_quantile_on_exact(self):
        summary = EqualWeightQuantiles(8).extend([1.0, 2.0, 3.0, 4.0])
        assert summary.quantile(0.5) == 2.0

    def test_empty_quantile_raises(self):
        with pytest.raises(EmptySummaryError):
            EqualWeightQuantiles(8).quantile(0.5)

    def test_samples_copy_is_isolated(self):
        summary = EqualWeightQuantiles(8).extend([1.0, 2.0])
        samples = summary.samples()
        samples[0] = 99.0
        assert summary.rank(1.0) == 1
