"""Unit tests for the hybrid quantile summary (Section 3.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MergeError, ParameterError, merge_all
from repro.quantiles import ExactQuantiles, HybridQuantiles, MergeableQuantiles
from repro.workloads import chunk_evenly, value_stream


class TestConstruction:
    def test_invalid_epsilon(self):
        with pytest.raises(ParameterError):
            HybridQuantiles(0.0)

    def test_levels_capped(self):
        hy = HybridQuantiles(0.1)
        assert hy.top_level >= 1


class TestSizeCap:
    def test_size_stops_growing_with_n(self):
        """The hybrid's point: size saturates while the logarithmic
        summary keeps adding a block per doubling."""
        eps = 0.05
        sizes = []
        for exponent in (12, 14, 16):
            data = value_stream(2**exponent, "uniform", rng=exponent)
            hy = HybridQuantiles(eps, rng=1).extend(data)
            sizes.append(hy.size())
        # growth from 2^14 to 2^16 must be far below the bottom-structure
        # block size (the GK top absorbs the extra levels)
        assert sizes[2] - sizes[1] < hy.s

    def test_smaller_than_logarithmic_at_large_n(self):
        eps = 0.05
        data = value_stream(2**16, "uniform", rng=4)
        hy = HybridQuantiles(eps, rng=1).extend(data)
        mq = MergeableQuantiles.from_epsilon(eps, rng=2).extend(data)
        assert hy.size() < mq.size()


class TestAccuracy:
    def test_sequential_rank_error(self):
        eps = 0.05
        data = value_stream(2**15, "uniform", rng=7)
        n = len(data)
        hy = HybridQuantiles(eps, rng=3).extend(data)
        exact = ExactQuantiles().extend(data)
        for x in np.quantile(data, np.linspace(0.05, 0.95, 19)):
            assert abs(hy.rank(x) - exact.rank(x)) <= eps * n

    @pytest.mark.parametrize("strategy", ["tree", "random"])
    def test_merged_rank_error(self, strategy):
        eps = 0.05
        data = value_stream(2**14, "uniform", rng=8)
        n = len(data)
        parts = [
            HybridQuantiles(eps, rng=100 + i).extend(s)
            for i, s in enumerate(chunk_evenly(data, 16))
        ]
        rng = 5 if strategy == "random" else None
        merged = merge_all(parts, strategy=strategy, rng=rng)
        assert merged.n == n
        exact = ExactQuantiles().extend(data)
        errs = [
            abs(merged.rank(x) - exact.rank(x))
            for x in np.quantile(data, np.linspace(0.05, 0.95, 19))
        ]
        # documented deviation: GK-top merging may cost up to ~2x eps
        assert max(errs) <= 2 * eps * n

    def test_quantile_answers(self):
        eps = 0.1
        data = value_stream(2**13, "lognormal", rng=9)
        hy = HybridQuantiles(eps, rng=4).extend(data)
        data_sorted = np.sort(data)
        n = len(data)
        for q in (0.1, 0.5, 0.9):
            value = hy.quantile(q)
            true_rank = np.searchsorted(data_sorted, value, side="right")
            assert abs(true_rank - q * n) <= 2 * eps * n


class TestMergeEdge:
    def test_epsilon_mismatch_refused(self):
        with pytest.raises(MergeError, match="epsilon mismatch"):
            HybridQuantiles(0.1).merge(HybridQuantiles(0.2))

    def test_merge_with_empty(self):
        hy = HybridQuantiles(0.1, rng=1).extend([1.0, 2.0])
        hy.merge(HybridQuantiles(0.1, rng=2))
        assert hy.n == 2

    def test_invalid_weight(self):
        with pytest.raises(ParameterError):
            HybridQuantiles(0.1).update(1.0, weight=-1)
