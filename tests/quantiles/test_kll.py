"""Unit tests for the KLL sketch (modern descendant of Section 3.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EmptySummaryError, MergeError, ParameterError, merge_all
from repro.quantiles import ExactQuantiles, KLLQuantiles, MergeableQuantiles
from repro.workloads import value_stream


class TestConstruction:
    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            KLLQuantiles(4)

    def test_from_epsilon_validates(self):
        with pytest.raises(ParameterError):
            KLLQuantiles.from_epsilon(0)
        with pytest.raises(ParameterError):
            KLLQuantiles.from_epsilon(0.1, delta=2)


class TestStructure:
    def test_small_stream_exact(self):
        kll = KLLQuantiles(64, rng=1).extend([3.0, 1.0, 2.0])
        assert kll.rank(2.0) == 2.0
        assert kll.quantile(0.0) == 1.0

    def test_size_bounded_independent_of_n(self):
        sizes = []
        for exponent in (12, 14, 16):
            data = value_stream(2**exponent, "uniform", rng=exponent)
            kll = KLLQuantiles(128, rng=1).extend(data)
            sizes.append(kll.size())
        # total capacity is ~ k / (1 - 2/3) = 3k; growth must be tiny
        assert all(size <= 3 * 128 + 64 for size in sizes)
        assert sizes[2] <= sizes[0] * 1.5

    def test_weight_conserved(self):
        data = value_stream(10_000, "uniform", rng=2)
        kll = KLLQuantiles(64, rng=3).extend(data)
        total = sum(
            (2**level) * len(buf) for level, buf in enumerate(kll._levels)
        )
        assert total == kll.n == len(data)

    def test_levels_grow_logarithmically(self):
        data = value_stream(2**15, "uniform", rng=4)
        kll = KLLQuantiles(64, rng=5).extend(data)
        assert kll.num_levels() <= 18


class TestAccuracy:
    def test_sequential_rank_error(self):
        eps = 0.02
        data = value_stream(2**15, "uniform", rng=6)
        n = len(data)
        kll = KLLQuantiles.from_epsilon(eps, rng=7).extend(data)
        exact = ExactQuantiles().extend(data)
        for x in np.quantile(data, np.linspace(0.02, 0.98, 49)):
            assert abs(kll.rank(x) - exact.rank(x)) <= eps * n

    @pytest.mark.parametrize("strategy", ["chain", "tree", "random"])
    def test_merged_rank_error_any_topology(self, strategy):
        eps = 0.05
        data = value_stream(2**14, "uniform", rng=8)
        n = len(data)
        shards = np.array_split(np.sort(data), 32)
        parts = [
            KLLQuantiles.from_epsilon(eps, rng=100 + i).extend(s)
            for i, s in enumerate(shards)
        ]
        rng = 9 if strategy == "random" else None
        merged = merge_all(parts, strategy=strategy, rng=rng)
        assert merged.n == n
        exact = ExactQuantiles().extend(data)
        for x in np.quantile(data, np.linspace(0.05, 0.95, 19)):
            assert abs(merged.rank(x) - exact.rank(x)) <= eps * n

    def test_quantile_returns_data_value(self):
        data = value_stream(5_000, "lognormal", rng=10)
        kll = KLLQuantiles(64, rng=11).extend(data)
        values = set(float(v) for v in data)
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert kll.quantile(q) in values

    def test_much_smaller_than_section32_at_same_eps(self):
        eps = 0.01
        data = value_stream(2**16, "uniform", rng=12)
        kll = KLLQuantiles.from_epsilon(eps, rng=13).extend(data)
        mq = MergeableQuantiles.from_epsilon(eps, rng=14).extend(data)
        assert kll.size() < mq.size() / 2


class TestMergeEdge:
    def test_k_mismatch_refused(self):
        with pytest.raises(MergeError):
            KLLQuantiles(64).merge(KLLQuantiles(128))

    def test_merge_with_empty(self):
        kll = KLLQuantiles(64, rng=1).extend([1.0])
        kll.merge(KLLQuantiles(64, rng=2))
        assert kll.n == 1

    def test_empty_quantile_raises(self):
        with pytest.raises(EmptySummaryError):
            KLLQuantiles(64).quantile(0.5)

    def test_serialization_roundtrip(self):
        from repro.core import dumps, loads

        kll = KLLQuantiles(64, rng=1).extend(value_stream(2_000, "uniform", rng=3))
        restored = loads(dumps(kll))
        assert restored.rank(0.5) == kll.rank(0.5)
        assert restored.size() == kll.size()
