"""Unit tests for the Greenwald-Khanna summary."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EmptySummaryError, MergeError, ParameterError
from repro.quantiles import ExactQuantiles, GKQuantiles


class TestConstruction:
    def test_invalid_epsilon(self):
        for bad in (0.0, 1.0, -0.2):
            with pytest.raises(ParameterError):
                GKQuantiles(bad)


class TestAccuracy:
    @pytest.mark.parametrize("eps", [0.05, 0.01])
    def test_rank_error_within_eps_n(self, eps, uniform_values):
        gk = GKQuantiles(eps).extend(uniform_values)
        gk.compress()
        exact = ExactQuantiles().extend(uniform_values)
        n = len(uniform_values)
        probes = np.quantile(uniform_values, np.linspace(0.02, 0.98, 49))
        for x in probes:
            assert abs(gk.rank(x) - exact.rank(x)) <= eps * n + 1

    @pytest.mark.parametrize("eps", [0.05, 0.01])
    def test_quantile_error_within_eps_n(self, eps, uniform_values):
        gk = GKQuantiles(eps).extend(uniform_values)
        exact = ExactQuantiles().extend(uniform_values)
        n = len(uniform_values)
        for q in np.linspace(0.0, 1.0, 41):
            value = gk.quantile(q)
            assert abs(exact.rank(value) - q * n) <= eps * n + 1

    def test_size_much_smaller_than_n(self, uniform_values):
        gk = GKQuantiles(0.01).extend(uniform_values)
        gk.compress()
        assert gk.size() < len(uniform_values) / 20

    def test_error_bound_attribute_tracks_invariant(self, uniform_values):
        gk = GKQuantiles(0.02).extend(uniform_values)
        gk.compress()
        assert gk.error_bound <= 0.02 * len(uniform_values)

    def test_sorted_input(self):
        data = np.arange(5_000, dtype=np.float64)
        gk = GKQuantiles(0.02).extend(data)
        for q in (0.1, 0.5, 0.9):
            assert abs(gk.quantile(q) - q * 5_000) <= 0.02 * 5_000 + 1

    def test_reverse_sorted_input(self):
        data = np.arange(5_000, dtype=np.float64)[::-1]
        gk = GKQuantiles(0.02).extend(data)
        assert abs(gk.median() - 2_500) <= 150


class TestQueriesEdge:
    def test_empty_quantile_raises(self):
        with pytest.raises(EmptySummaryError):
            GKQuantiles(0.1).quantile(0.5)

    def test_empty_rank_is_zero(self):
        assert GKQuantiles(0.1).rank(5.0) == 0.0

    def test_min_max_preserved(self):
        data = np.random.default_rng(4).random(3_000)
        gk = GKQuantiles(0.05).extend(data)
        gk.compress()
        assert gk.quantile(0.0) == data.min()
        assert gk.quantile(1.0) == data.max()

    def test_weighted_insert(self):
        gk = GKQuantiles(0.1)
        gk.update(1.0, weight=50)
        gk.update(2.0, weight=50)
        assert gk.n == 100
        assert abs(gk.rank(1.5) - 50) <= 10


class TestMergeDegradation:
    def test_merge_combines_data(self):
        a = GKQuantiles(0.05).extend(np.linspace(0, 1, 500))
        b = GKQuantiles(0.05).extend(np.linspace(1, 2, 500))
        a.merge(b)
        assert a.n == 1000
        assert 0.9 <= a.median() <= 1.1

    def test_merge_generations_counted(self):
        a = GKQuantiles(0.05).extend(np.linspace(0, 1, 100))
        b = GKQuantiles(0.05).extend(np.linspace(0, 1, 100))
        c = GKQuantiles(0.05).extend(np.linspace(0, 1, 100))
        a.merge(b)
        assert a.merge_generations == 1
        a.merge(c)
        assert a.merge_generations == 2

    def test_chain_merge_error_grows_beyond_single_eps(self):
        """GK's non-mergeability: deep chains overshoot eps*n (usually)."""
        rng = np.random.default_rng(9)
        data = np.sort(rng.random(2**14))
        shards = np.array_split(data, 64)
        parts = [GKQuantiles(0.02).extend(s) for s in shards]
        merged = parts[0]
        for p in parts[1:]:
            merged.merge(p)
        exact = ExactQuantiles().extend(data)
        errs = [
            abs(merged.rank(x) - exact.rank(x))
            for x in np.quantile(data, np.linspace(0.05, 0.95, 19))
        ]
        # realized error exceeds what a mergeable summary would give;
        # assert it's at least measurable (and record the degradation)
        assert max(errs) > 0

    def test_epsilon_mismatch_raises(self):
        with pytest.raises(MergeError, match="epsilon mismatch"):
            GKQuantiles(0.1).merge(GKQuantiles(0.2))
