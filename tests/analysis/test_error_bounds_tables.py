"""Unit tests for error metrics, theoretical bounds, and table emitters."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.analysis import (
    format_table,
    frequency_errors,
    mg_error_bound,
    mg_size_bound,
    quantile_equal_weight_size,
    quantile_hybrid_size,
    quantile_mergeable_size,
    quantile_value_errors,
    rank_errors,
    sample_size_bound,
    ss_error_bound,
    to_csv,
)
from repro.core import ParameterError
from repro.frequency import ExactCounter, MisraGries
from repro.quantiles import ExactQuantiles


class TestFrequencyErrors:
    def test_exact_counter_has_zero_error(self):
        items = [1, 1, 2, 3]
        report = frequency_errors(ExactCounter().extend(items), Counter(items))
        assert report.max_error == 0
        assert report.total_error == 0
        assert report.error_rate == 0.0

    def test_mg_error_measured(self):
        items = [1, 1, 1, 2, 3, 4]
        mg = MisraGries(2).extend(items)
        report = frequency_errors(mg, Counter(items))
        assert report.max_error >= 1
        assert report.n == 6
        assert 0 <= report.normalized_max() <= 1

    def test_empty_truth_raises(self):
        with pytest.raises(ParameterError):
            frequency_errors(ExactCounter(), {})


class TestRankErrors:
    def test_exact_summary_zero_error(self):
        data = np.random.default_rng(1).random(100)
        eq = ExactQuantiles().extend(data)
        report = rank_errors(eq, data, probes=data[:10])
        assert report.max_error == 0

    def test_normalization(self):
        data = np.arange(100, dtype=float)
        eq = ExactQuantiles().extend(data)
        report = rank_errors(eq, data, probes=[50.0])
        assert report.max_normalized == report.max_error / 100

    def test_quantile_value_errors_exact(self):
        data = np.arange(1, 101, dtype=float)
        eq = ExactQuantiles().extend(data)
        report = quantile_value_errors(eq, data, qs=[0.25, 0.5, 0.75])
        assert report.max_error == 0

    def test_quantile_value_errors_duplicates(self):
        data = np.array([1.0] * 50 + [2.0] * 50)
        eq = ExactQuantiles().extend(data)
        report = quantile_value_errors(eq, data, qs=[0.2, 0.5, 0.8])
        assert report.max_error == 0  # rank intervals absorb ties

    def test_empty_data_raises(self):
        with pytest.raises(ParameterError):
            rank_errors(ExactQuantiles(), np.array([]), probes=[1.0])


class TestBounds:
    def test_mg_bound(self):
        assert mg_error_bound(9, 100) == 10.0

    def test_ss_bound(self):
        assert ss_error_bound(10, 100) == 10.0

    def test_size_bounds_monotone_in_eps(self):
        assert mg_size_bound(0.01) > mg_size_bound(0.1)
        assert sample_size_bound(0.01) == 10_000

    def test_quantile_sizes_ordered(self):
        # for realistic parameters: equal-weight < hybrid and sample is worst
        eps, delta, n = 0.01, 0.01, 10**6
        assert quantile_equal_weight_size(eps, delta) < quantile_mergeable_size(
            eps, delta, n
        )
        assert quantile_hybrid_size(eps) < sample_size_bound(eps)

    def test_invalid_params_raise(self):
        with pytest.raises(ParameterError):
            mg_error_bound(0, 10)
        with pytest.raises(ParameterError):
            quantile_mergeable_size(0.1, 0.1, 0)


class TestTables:
    def test_format_alignment_and_caption(self):
        out = format_table(
            ["name", "value"], [["alpha", 1], ["b", 123456]], caption="Table X"
        )
        lines = out.splitlines()
        assert lines[0] == "Table X"
        assert "name" in lines[1]
        assert "-" in lines[2]
        assert len(lines) == 5

    def test_float_rendering(self):
        out = format_table(["x"], [[0.000123456]])
        assert "0.000123" in out

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_csv(self):
        out = to_csv(["a", "b"], [[1, 2], [3, 4]])
        assert out == "a,b\n1,2\n3,4\n"
