"""Tests for the Monte-Carlo validation harness."""

from __future__ import annotations

import pytest

from repro.analysis import failure_rate, run_trials
from repro.core import ParameterError


class TestRunTrials:
    def test_constant_trials(self):
        stats = run_trials(lambda seed: 5.0, seeds=range(10), threshold=6.0)
        assert stats.trials == 10
        assert stats.mean == 5.0
        assert stats.std == 0.0
        assert stats.exceed_rate == 0.0

    def test_seed_is_passed_through(self):
        stats = run_trials(lambda seed: float(seed), seeds=[1, 2, 3])
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.p50 == 2.0

    def test_exceed_rate_counts_strict_exceedance(self):
        stats = run_trials(lambda seed: float(seed), seeds=range(10), threshold=5.0)
        # seeds 6..9 exceed 5.0 (5.0 itself does not)
        assert stats.exceed_rate == pytest.approx(0.4)

    def test_within_allows_one_trial_slack(self):
        stats = run_trials(lambda seed: float(seed), seeds=range(10), threshold=8.0)
        assert stats.exceed_rate == pytest.approx(0.1)
        assert stats.within(0.05)  # 0.1 <= 0.05 + 1/10
        assert not stats.within(0.0) or stats.exceed_rate <= 0.1

    def test_no_seeds_raises(self):
        with pytest.raises(ParameterError):
            run_trials(lambda seed: 0.0, seeds=[])

    def test_quantiles_ordered(self):
        stats = run_trials(lambda seed: float(seed % 17), seeds=range(100))
        assert stats.p50 <= stats.p90 <= stats.p99 <= stats.maximum

    def test_default_threshold_never_exceeded(self):
        stats = run_trials(lambda seed: 1e18, seeds=range(3))
        assert stats.exceed_rate == 0.0


class TestFailureRate:
    def test_shorthand_matches_run_trials(self):
        rate = failure_rate(lambda seed: float(seed), seeds=range(10), threshold=5.0)
        assert rate == pytest.approx(0.4)

    def test_randomized_summary_concentrates(self):
        """End-to-end: the Sec 3.2 summary's failure rate is ~0 at its
        designed (eps, delta)."""
        import numpy as np

        from repro.quantiles import MergeableQuantiles
        from repro.workloads import value_stream

        data = value_stream(4_096, "uniform", rng=5)
        data_sorted = np.sort(data)

        def trial(seed: int) -> float:
            summary = MergeableQuantiles.from_epsilon(0.05, rng=seed).extend(data)
            x = 0.5
            true_rank = float(np.searchsorted(data_sorted, x, side="right"))
            return abs(summary.rank(x) - true_rank)

        rate = failure_rate(trial, seeds=range(20), threshold=0.05 * len(data))
        assert rate == 0.0
