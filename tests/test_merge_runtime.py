"""Merge-runtime suite: k-way merges, parallel execution, query caching.

Registry-driven equivalence tests for the PR-3 runtime:

- ``merge_many(others)`` must agree with the sequential ``merge`` fold —
  bit-for-bit for summaries whose k-way combine commutes exactly
  (linear sketches, lattices, generic-fallback types), error-bounded
  for summaries whose single-pass combine legitimately reorders
  compactions (MG/SS single prune, quantile carry cascades);
- ``run_aggregation(..., executor=k)`` must be byte-identical for every
  worker count (and to the serial executor) for every registered type;
- the cached quantile view must serve repeated queries without
  recomputation and invalidate on any mutation;
- ``KLLQuantiles._compress`` must scan a linear, not quadratic, number
  of levels per flush;
- ``Node.emit`` must serialize each summary generation once, charging
  retransmissions to ``bytes_retransmitted``.

Every registered summary type must appear in ``MERGE_SPECS`` or, with
an explicit reason, in ``SKIPPED_TYPES`` — the suite fails loudly
otherwise, so new types cannot dodge the runtime contract silently.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np
import pytest

from repro.core import MergeError, Summary, dumps, loads, registered_names
from repro.core.merge import merge_all, merge_chain, merge_kway
from repro.core.parallel import ParallelExecutor, resolve_executor
from repro.distributed import (
    ContiguousPartitioner,
    Node,
    balanced_tree,
    build_topology,
    plan_merge_waves,
    run_aggregation,
)

# ---------------------------------------------------------------------------
# Per-type specifications
# ---------------------------------------------------------------------------

PARTS = 6  # fan-in for the merge_many equivalence checks


def _ints(seed: int, n: int = 160) -> list:
    return np.random.default_rng(seed).integers(0, 50, size=n).tolist()


def _floats(seed: int, n: int = 160) -> list:
    return np.random.default_rng(seed).random(n).tolist()


def _points(seed: int, n: int = 40) -> list:
    return list(np.random.default_rng(seed).random((n, 2)))


@dataclass(frozen=True)
class MergeSpec:
    name: str
    #: factory(instance_index) -> summary (index seeds per-part RNGs)
    factory: Callable[[int], Summary]
    #: feed(seed) -> items for one part
    feed: Callable[[int], list]
    #: "exact" -> k-way state == fold state (serialized comparison);
    #: "bounded" -> k-way result within the type's error guarantee
    mode: str
    #: per-mode error checker for "bounded" specs (fold, kway, feeds)
    check: Optional[Callable[[Summary, Summary, List[list]], None]] = None


def _check_heavy_hitter_bound(fold: Summary, kway: Summary, feeds: List[list]) -> None:
    truth = Counter()
    for feed in feeds:
        truth.update(feed)
    n = sum(truth.values())
    k = fold.k
    bound = n / (k + 1)
    assert kway.n == fold.n == n
    assert kway.size() <= k
    for item, count in truth.most_common(20):
        est = kway.estimate(item)
        if type(kway).__name__ == "SpaceSaving":
            assert est >= count
            assert est - count <= bound
        else:
            assert est <= count
            assert count - est <= bound


def _check_rank_bound(rel_error: float):
    def check(fold: Summary, kway: Summary, feeds: List[list]) -> None:
        data = np.sort(np.concatenate([np.asarray(f) for f in feeds]))
        n = len(data)
        assert kway.n == fold.n == n
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            x = data[int(q * (n - 1))]
            true_rank = np.searchsorted(data, x, side="right")
            assert abs(kway.rank(x) - true_rank) <= rel_error * n

    return check


def _specs() -> List[MergeSpec]:
    from repro.decay import DecayedMisraGries, WindowedMisraGries
    from repro.frequency import (
        ConservativeCountMin,
        CountMin,
        CountSketch,
        DyadicHierarchy,
        ExactCounter,
        MajorityVote,
        MisraGries,
        SpaceSaving,
    )
    from repro.kernels import EpsKernel
    from repro.quantiles import (
        BottomKSample,
        ExactQuantiles,
        GKQuantiles,
        HybridQuantiles,
        KLLQuantiles,
        MergeableQuantiles,
        MomentSketch,
        MRLQuantiles,
    )
    from repro.ranges import EpsApproximation
    from repro.sketches import AmsF2Sketch, BloomFilter, HyperLogLog, KMinValues

    return [
        # exact: vectorized fast paths that commute bit-for-bit
        MergeSpec("count_min", lambda i: CountMin(32, 3, seed=1), _ints, "exact"),
        MergeSpec("count_sketch", lambda i: CountSketch(32, 3, seed=1), _ints, "exact"),
        MergeSpec("hyperloglog", lambda i: HyperLogLog(p=6, seed=1), _ints, "exact"),
        # exact: generic fallback (merge_many IS the fold)
        MergeSpec("exact_counter", lambda i: ExactCounter(), _ints, "exact"),
        MergeSpec("majority_vote", lambda i: MajorityVote(), _ints, "exact"),
        MergeSpec(
            "conservative_count_min",
            lambda i: ConservativeCountMin(32, 3, seed=1),
            _ints,
            "exact",
        ),
        MergeSpec("dyadic_hierarchy", lambda i: DyadicHierarchy(8, 8), _ints, "exact"),
        MergeSpec("exact_quantiles", lambda i: ExactQuantiles(), _floats, "exact"),
        MergeSpec("moment_sketch", lambda i: MomentSketch(10), _floats, "exact"),
        MergeSpec(
            "bottom_k_sample", lambda i: BottomKSample(20, rng=100 + i), _floats, "exact"
        ),
        MergeSpec(
            "eps_approximation",
            lambda i: EpsApproximation("intervals_1d", s=8, rng=100 + i),
            _floats,
            "exact",
        ),
        MergeSpec("eps_kernel", lambda i: EpsKernel(0.2), _points, "exact"),
        MergeSpec("k_min_values", lambda i: KMinValues(16, seed=1), _ints, "exact"),
        MergeSpec("bloom_filter", lambda i: BloomFilter(256, 3, seed=1), _ints, "exact"),
        MergeSpec("ams_f2", lambda i: AmsF2Sketch(8, 3, seed=1), _ints, "exact"),
        MergeSpec(
            "decayed_misra_gries",
            lambda i: DecayedMisraGries(8, half_life=10.0),
            _ints,
            "exact",
        ),
        MergeSpec(
            "windowed_misra_gries",
            lambda i: WindowedMisraGries(8, bucket_width=5.0, num_buckets=8),
            _ints,
            "exact",
        ),
        # bounded: single-pass combines reorder pruning/compaction but
        # must stay inside the type's guarantee
        MergeSpec(
            "misra_gries",
            lambda i: MisraGries(16),
            _ints,
            "bounded",
            _check_heavy_hitter_bound,
        ),
        MergeSpec(
            "space_saving",
            lambda i: SpaceSaving(16),
            _ints,
            "bounded",
            _check_heavy_hitter_bound,
        ),
        MergeSpec(
            # the k-way combine reinserts all operands in one pass, paying
            # one merge generation instead of len(others) — deliberately
            # different (better) state than the sequential fold
            "gk_quantiles",
            lambda i: GKQuantiles(0.1),
            _floats,
            "bounded",
            _check_rank_bound(0.3),
        ),
        MergeSpec(
            "kll_quantiles",
            lambda i: KLLQuantiles(64, rng=100 + i),
            _floats,
            "bounded",
            _check_rank_bound(0.15),
        ),
        MergeSpec(
            "mergeable_quantiles",
            lambda i: MergeableQuantiles(32, rng=100 + i),
            _floats,
            "bounded",
            _check_rank_bound(0.15),
        ),
        MergeSpec(
            "mrl_quantiles",
            lambda i: MRLQuantiles(32),
            _floats,
            "bounded",
            _check_rank_bound(0.2),
        ),
        MergeSpec(
            "hybrid_quantiles",
            lambda i: HybridQuantiles(0.15, rng=100 + i),
            _floats,
            "bounded",
            _check_rank_bound(0.2),
        ),
    ]


def _windowed_specs(base_specs: List[MergeSpec]) -> List[MergeSpec]:
    """Derive a spec for every auto-registered ``windowed.<name>`` variant.

    The windowed combinator inherits the generic sequential
    ``merge_many`` loop, which *is* the chain fold — so every windowed
    variant is "exact", regardless of the base type's own k-way mode:
    the reordering fast paths live inside the bucket sub-summaries and
    both sides replay them in the same order.
    """
    from repro.windows import windowed_names

    derived = set(windowed_names())
    specs = []
    for spec in base_specs:
        name = f"windowed.{spec.name}"
        if name not in derived:
            continue
        specs.append(
            MergeSpec(
                name,
                lambda i, s=spec: s.factory(i).windowed(eps=0.25, granularity=4),
                spec.feed,
                "exact",
            )
        )
    return specs


BASE_MERGE_SPECS = {spec.name: spec for spec in _specs()}
MERGE_SPECS = dict(BASE_MERGE_SPECS)
MERGE_SPECS.update(
    {spec.name: spec for spec in _windowed_specs(list(BASE_MERGE_SPECS.values()))}
)

#: registered types with no meaningful k-way fold, with the reason
SKIPPED_TYPES = {
    "equal_weight_quantiles": (
        "only defined for equal-weight operands: a flat left fold over "
        "k>2 parts is itself a MergeError, so there is no sequential "
        "baseline for merge_many to match (covered by the aggregation "
        "determinism test instead)"
    ),
}


def test_every_registered_type_has_a_merge_spec():
    covered = set(MERGE_SPECS) | set(SKIPPED_TYPES)
    missing = set(registered_names()) - covered
    assert not missing, f"merge-runtime suite misses registered types: {missing}"
    assert not set(MERGE_SPECS) & set(SKIPPED_TYPES)


@pytest.fixture(params=sorted(MERGE_SPECS), ids=sorted(MERGE_SPECS))
def spec(request) -> MergeSpec:
    return MERGE_SPECS[request.param]


def _build_parts(spec: MergeSpec, count: int = PARTS):
    feeds = [spec.feed(50 + j) for j in range(count)]
    return feeds, [spec.factory(j).extend(feeds[j]) for j in range(count)]


def _state(summary: Summary) -> dict:
    """Serialized state minus the volatile RNG re-seed field."""
    payload = summary.to_dict()
    payload.pop("seed", None)
    return payload


# ---------------------------------------------------------------------------
# merge_many ≡ sequential fold
# ---------------------------------------------------------------------------


class TestMergeManyEquivalence:
    def test_kway_matches_or_bounds_sequential_fold(self, spec):
        feeds, parts_fold = _build_parts(spec)
        _, parts_kway = _build_parts(spec)
        fold = merge_chain(parts_fold)
        kway = parts_kway[0].merge_many(parts_kway[1:])
        assert kway.n == fold.n
        if spec.mode == "exact":
            assert _state(kway) == _state(fold)
        else:
            spec.check(fold, kway, feeds)

    def test_merge_many_empty_iterable_is_noop(self, spec):
        summary = spec.factory(0).extend(spec.feed(1))
        before = summary.n
        assert summary.merge_many([]) is summary
        assert summary.n == before

    def test_merge_many_rejects_foreign_type_before_mutating(self, spec):
        from repro.frequency import ExactCounter
        from repro.quantiles import ExactQuantiles

        summary = spec.factory(0).extend(spec.feed(2))
        other = spec.factory(1).extend(spec.feed(3))
        foreign = (
            ExactQuantiles()
            if isinstance(summary, ExactCounter)
            else ExactCounter().extend([1, 2])
        )
        n_before = summary.n
        with pytest.raises(MergeError):
            summary.merge_many([other, foreign])
        assert summary.n == n_before  # checked up front, nothing merged

    def test_merge_many_accepts_roundtripped_operands(self, spec):
        _, parts = _build_parts(spec, count=3)
        total = sum(p.n for p in parts)
        wired = [loads(dumps(p)) for p in parts[1:]]
        assert parts[0].merge_many(wired).n == total

    def test_merge_kway_strategy_dispatch(self, spec):
        _, parts = _build_parts(spec, count=3)
        total = sum(p.n for p in parts)
        assert merge_all(parts, strategy="kway").n == total
        _, parts = _build_parts(spec, count=3)
        assert merge_kway(parts).n == total


# ---------------------------------------------------------------------------
# parallel aggregation determinism
# ---------------------------------------------------------------------------

AGGREGATION_DATA = {
    "ints": lambda: np.random.default_rng(7).integers(0, 200, size=2048),
    "floats": lambda: np.random.default_rng(8).random(2048),
    "points": lambda: np.random.default_rng(9).random((256, 2)),
}


def _aggregation_setup(name: str):
    """(data, factory) for one registered type in the simulator."""
    from repro.decay import DecayedMisraGries, WindowedMisraGries
    from repro.frequency import (
        ConservativeCountMin,
        CountMin,
        CountSketch,
        DyadicHierarchy,
        ExactCounter,
        MajorityVote,
        MisraGries,
        SpaceSaving,
    )
    from repro.kernels import EpsKernel
    from repro.quantiles import (
        BottomKSample,
        EqualWeightQuantiles,
        ExactQuantiles,
        GKQuantiles,
        HybridQuantiles,
        KLLQuantiles,
        MergeableQuantiles,
        MomentSketch,
        MRLQuantiles,
    )
    from repro.ranges import EpsApproximation
    from repro.sketches import AmsF2Sketch, BloomFilter, HyperLogLog, KMinValues

    table = {
        "misra_gries": ("ints", lambda i: MisraGries(16)),
        "space_saving": ("ints", lambda i: SpaceSaving(16)),
        "majority_vote": ("ints", lambda i: MajorityVote()),
        "count_min": ("ints", lambda i: CountMin(32, 3, seed=1)),
        "conservative_count_min": ("ints", lambda i: ConservativeCountMin(32, 3, seed=1)),
        "dyadic_hierarchy": ("ints", lambda i: DyadicHierarchy(8, 8)),
        "count_sketch": ("ints", lambda i: CountSketch(32, 3, seed=1)),
        "exact_counter": ("ints", lambda i: ExactCounter()),
        "exact_quantiles": ("floats", lambda i: ExactQuantiles()),
        "gk_quantiles": ("floats", lambda i: GKQuantiles(0.1)),
        # s must equal the shard size: leaves ingest raw values only
        "equal_weight_quantiles": ("floats", lambda i: EqualWeightQuantiles(256, rng=50 + i)),
        "mergeable_quantiles": ("floats", lambda i: MergeableQuantiles(32, rng=50 + i)),
        "hybrid_quantiles": ("floats", lambda i: HybridQuantiles(0.2, rng=50 + i)),
        "kll_quantiles": ("floats", lambda i: KLLQuantiles(32, rng=50 + i)),
        "moment_sketch": ("floats", lambda i: MomentSketch(10)),
        "mrl_quantiles": ("floats", lambda i: MRLQuantiles(32)),
        "bottom_k_sample": ("floats", lambda i: BottomKSample(20, rng=50 + i)),
        "eps_approximation": ("floats", lambda i: EpsApproximation("intervals_1d", s=8, rng=50 + i)),
        "eps_kernel": ("points", lambda i: EpsKernel(0.2)),
        "k_min_values": ("ints", lambda i: KMinValues(16, seed=1)),
        "hyperloglog": ("ints", lambda i: HyperLogLog(p=6, seed=1)),
        "bloom_filter": ("ints", lambda i: BloomFilter(256, 3, seed=1)),
        "ams_f2": ("ints", lambda i: AmsF2Sketch(8, 3, seed=1)),
        "decayed_misra_gries": ("ints", lambda i: DecayedMisraGries(8, half_life=10.0)),
        "windowed_misra_gries": ("ints", lambda i: WindowedMisraGries(8, bucket_width=5.0, num_buckets=8)),
    }
    from repro.windows import windowed_names

    # every windowed.<name> variant rides its base type's data and
    # factory; coarse granularity keeps the bucket count modest
    for derived in windowed_names():
        base = derived.split(".", 1)[1]
        base_kind, base_factory = table[base]
        table[derived] = (
            base_kind,
            lambda i, f=base_factory: f(i).windowed(eps=0.25, granularity=16),
        )

    kind, factory = table[name]
    return AGGREGATION_DATA[kind](), factory


def test_every_registered_type_has_an_aggregation_setup():
    for name in registered_names():
        data, factory = _aggregation_setup(name)
        assert len(data) and callable(factory)


@pytest.mark.parametrize("name", sorted(registered_names()))
def test_parallel_aggregation_is_byte_identical_to_serial(name):
    data, factory = _aggregation_setup(name)
    roots = [
        run_aggregation(
            data,
            ContiguousPartitioner(),
            factory,
            balanced_tree(8),
            executor=workers,
        ).summary
        for workers in (1, 3)
    ]
    assert dumps(roots[0]) == dumps(roots[1])


def test_executor_path_matches_legacy_for_deterministic_summary():
    from repro.frequency import ExactCounter

    data = AGGREGATION_DATA["ints"]()
    legacy = run_aggregation(
        data, ContiguousPartitioner(), ExactCounter, balanced_tree(16)
    )
    pooled = run_aggregation(
        data, ContiguousPartitioner(), ExactCounter, balanced_tree(16), executor=2
    )
    assert legacy.summary.counters() == pooled.summary.counters()
    assert legacy.merges == pooled.merges
    assert legacy.depth == pooled.depth


@pytest.mark.parametrize("topology", ["star", "kary", "chain"])
def test_executor_handles_grouped_topologies(topology):
    from repro.frequency import MisraGries

    data = AGGREGATION_DATA["ints"]()
    serial = run_aggregation(
        data, ContiguousPartitioner(), lambda: MisraGries(16),
        build_topology(topology, 9, rng=1),
    )
    pooled = run_aggregation(
        data, ContiguousPartitioner(), lambda: MisraGries(16),
        build_topology(topology, 9, rng=1), executor=2,
    )
    assert pooled.summary.n == serial.summary.n == len(data)
    assert pooled.summary.size() <= 16


def test_parallel_aggregation_with_serialization_accounts_bytes():
    from repro.frequency import MisraGries

    data = AGGREGATION_DATA["ints"]()
    result = run_aggregation(
        data, ContiguousPartitioner(), lambda: MisraGries(16),
        balanced_tree(8), serialize=True, executor=2,
    )
    assert result.summary.n == len(data)
    assert result.bytes_shipped > 0
    assert result.bytes_retransmitted == 0


def test_index_aware_factory_receives_node_ids():
    from repro.quantiles import MergeableQuantiles

    seen = []

    def factory(node_id):
        seen.append(node_id)
        return MergeableQuantiles(16, rng=node_id)

    data = AGGREGATION_DATA["floats"]()
    run_aggregation(data, ContiguousPartitioner(), factory, balanced_tree(8))
    assert sorted(seen) == list(range(8))


def test_parallel_build_with_faults_keeps_serial_merge_semantics():
    from repro.distributed import FaultModel, RetryPolicy
    from repro.frequency import MisraGries

    data = AGGREGATION_DATA["ints"]()

    def kwargs():
        # fresh FaultModel per run: its RNG stream is stateful
        return dict(
            serialize=True,
            fault_model=FaultModel(loss=0.3, rng=5),
            retry_policy=RetryPolicy(max_attempts=12),
        )

    plain = run_aggregation(
        data, ContiguousPartitioner(), lambda: MisraGries(16),
        balanced_tree(8), **kwargs(),
    )
    pooled = run_aggregation(
        data, ContiguousPartitioner(), lambda: MisraGries(16),
        balanced_tree(8), executor=2, **kwargs(),
    )
    assert pooled.summary.counters() == plain.summary.counters()
    assert pooled.fault_stats.retries == plain.fault_stats.retries
    assert pooled.bytes_retransmitted == plain.bytes_retransmitted


# ---------------------------------------------------------------------------
# wave planning
# ---------------------------------------------------------------------------


class TestPlanMergeWaves:
    def test_star_collapses_to_one_kway_group(self):
        schedule = build_topology("star", 9)
        waves = plan_merge_waves(schedule.steps)
        assert waves == [[(schedule.root, [s for _d, s in schedule.steps])]]

    def test_waves_never_reuse_a_node(self):
        schedule = balanced_tree(16)
        for wave in plan_merge_waves(schedule.steps):
            touched = [n for dst, srcs in wave for n in (dst, *srcs)]
            assert len(touched) == len(set(touched))

    def test_waves_preserve_step_order_per_node(self):
        schedule = balanced_tree(16)
        flattened = [
            (dst, src)
            for wave in plan_merge_waves(schedule.steps)
            for dst, srcs in wave
            for src in srcs
        ]
        assert sorted(flattened) == sorted(schedule.steps)
        # per-destination absorb order must match the schedule
        for node in {dst for dst, _src in schedule.steps}:
            expected = [s for d, s in schedule.steps if d == node]
            got = [s for d, s in flattened if d == node]
            assert got == expected

    def test_chain_collapses_to_one_kway_group(self):
        # this repo's chain has a single destination absorbing everyone,
        # so it groups exactly like a star
        schedule = build_topology("chain", 5)
        assert plan_merge_waves(schedule.steps) == [[(0, [1, 2, 3, 4])]]

    def test_dependent_steps_stay_fully_sequential(self):
        # each destination was a source of the previous step: no two
        # groups may share a wave
        steps = [(2, 3), (1, 2), (0, 1)]
        assert plan_merge_waves(steps) == [[(2, [3])], [(1, [2])], [(0, [1])]]


# ---------------------------------------------------------------------------
# ParallelExecutor
# ---------------------------------------------------------------------------


class TestParallelExecutor:
    def test_map_preserves_order(self):
        pool = ParallelExecutor(max_workers=3)
        results = pool.map(lambda a, b: a * 10 + b, [(i, i + 1) for i in range(20)])
        assert results == [i * 10 + i + 1 for i in range(20)]

    def test_serial_executor_never_forks(self):
        pool = ParallelExecutor(max_workers=1)
        assert not pool.is_parallel
        assert pool.map(lambda x: x + 1, [(1,), (2,)]) == [2, 3]

    def test_lambdas_cross_the_pool_boundary(self):
        # closures are not picklable; the fork-payload path must still
        # ship them (single-worker boxes degrade to the serial map,
        # which trivially supports them)
        offset = 17
        pool = ParallelExecutor(max_workers=2)
        assert pool.map(lambda x: x + offset, [(i,) for i in range(8)]) == [
            i + 17 for i in range(8)
        ]

    def test_rejects_negative_workers(self):
        from repro.core import ParameterError

        with pytest.raises(ParameterError):
            ParallelExecutor(max_workers=-1)
        with pytest.raises(ParameterError):
            resolve_executor(object())  # type: ignore[arg-type]

    def test_resolve_executor_forms(self):
        assert resolve_executor(None) is None
        assert resolve_executor(4).max_workers == 4
        pool = ParallelExecutor(2)
        assert resolve_executor(pool) is pool

    def test_task_exceptions_propagate(self):
        pool = ParallelExecutor(max_workers=2)

        def boom(x):
            raise ValueError(f"task {x}")

        with pytest.raises(ValueError, match="task"):
            pool.map(boom, [(1,), (2,)])

    def test_fork_payload_is_released_after_map(self):
        from repro.core import parallel

        pool = ParallelExecutor(max_workers=2)
        pool.map(lambda x: x * 2, [(i,) for i in range(6)])
        assert parallel._FORK_PAYLOAD is None

    def test_fork_payload_is_released_when_tasks_raise(self):
        from repro.core import parallel

        pool = ParallelExecutor(max_workers=2)

        def boom(x):
            raise ValueError("boom")

        with pytest.raises(ValueError):
            pool.map(boom, [(1,), (2,)])
        assert parallel._FORK_PAYLOAD is None

    def test_map_payload_does_not_pin_task_objects(self):
        # the fork-payload slot must not keep the last map's tasks (and
        # whatever summaries their closures capture) alive afterwards
        import gc
        import weakref

        class Token:
            pass

        token = Token()
        ref = weakref.ref(token)
        pool = ParallelExecutor(max_workers=2)
        pool.map(lambda t: type(t).__name__, [(token,)])
        del token
        gc.collect()
        assert ref() is None


class TestRecoverableDegradation:
    """Pool failures must degrade *visibly* and heal after a cooldown —
    the legacy sticky ``_broken`` flag turned one transient fault into
    serial-forever, silently."""

    def _broken_context(self, monkeypatch):
        import multiprocessing

        def refuse(method):
            raise OSError("subprocesses forbidden")

        monkeypatch.setattr(multiprocessing, "get_context", refuse)

    def test_pool_failure_degrades_then_reprobes(self, monkeypatch):
        import multiprocessing

        real = multiprocessing.get_context
        pool = ParallelExecutor(max_workers=2, reprobe_after=2)
        tasks = [(i,) for i in range(4)]
        self._broken_context(monkeypatch)
        assert pool.map(lambda x: x * 2, tasks) == [0, 2, 4, 6]
        assert pool.fallbacks == 1
        assert pool.degraded and not pool.is_parallel
        assert any("re-probing after 2" in e for e in pool.degradation_events)
        monkeypatch.setattr(multiprocessing, "get_context", real)
        # cooldown calls serve serial (correct results throughout) ...
        assert pool.map(lambda x: x * 2, tasks) == [0, 2, 4, 6]
        assert pool.map(lambda x: x * 2, tasks) == [0, 2, 4, 6]
        # ... then the pool is re-probed and parallelism recovers
        assert pool.is_parallel
        assert pool.map(lambda x: x * 2, tasks) == [0, 2, 4, 6]
        assert pool.fallbacks == 1  # healthy again: no new fallbacks

    def test_consecutive_failures_back_off_exponentially(self, monkeypatch):
        pool = ParallelExecutor(max_workers=2, reprobe_after=2)
        self._broken_context(monkeypatch)
        tasks = [(i,) for i in range(4)]
        cooldowns = []
        for _ in range(4):
            pool.map(lambda x: x, tasks)  # fails, sets the cooldown
            cooldowns.append(pool._cooldown)
            pool._cooldown = 0  # fast-forward to the next re-probe
        assert cooldowns == [2, 4, 8, 16]

    def test_reprobe_zero_restores_permanent_degradation(self, monkeypatch):
        import multiprocessing

        real = multiprocessing.get_context
        pool = ParallelExecutor(max_workers=2, reprobe_after=0)
        tasks = [(i,) for i in range(4)]
        self._broken_context(monkeypatch)
        pool.map(lambda x: x, tasks)
        monkeypatch.setattr(multiprocessing, "get_context", real)
        for _ in range(5):
            pool.map(lambda x: x, tasks)
        assert pool.degraded and not pool.is_parallel
        assert pool.fallbacks == 1
        assert any("re-probing disabled" in e for e in pool.degradation_events)


class TestWorkerRuntime:
    """The persistent shared-memory runtime behind the wave path."""

    def _count_min_aggregation(self, executor, leaves=16):
        from repro.frequency import CountMin

        data = AGGREGATION_DATA["ints"]()
        return run_aggregation(
            data,
            ContiguousPartitioner(),
            lambda: CountMin(64, 3, seed=2),
            balanced_tree(leaves),
            executor=executor,
        )

    def test_one_ipc_round_trip_per_wave(self):
        pool = ParallelExecutor(max_workers=3)
        result = self._count_min_aggregation(pool)
        if not pool.is_parallel:
            pytest.skip("no process pool on this platform")
        stats = result.runtime_stats
        assert stats is not None, "wave path must report runtime stats"
        # balanced_tree(16): one build round + four merge waves
        assert stats["dispatch_rounds"] == 5
        assert stats["worker_crashes"] == 0
        assert not result.degraded_to_serial
        # commands carry step ids, not summaries: a 16-leaf plan's entire
        # command traffic must stay far below one serialized CountMin
        # table (64*3*8 = 1536 bytes)
        assert stats["cmd_bytes"] < 8 * 1024
        # bulk state moved through shared memory, not the pipes
        assert stats["exported_bytes"] > 16 * 1536

    def test_results_survive_worker_count_sweep(self):
        from repro.core import dumps as _dumps

        baseline = None
        for workers in (1, 2, 3, 5):
            result = self._count_min_aggregation(workers)
            payload = _dumps(result.summary)
            if baseline is None:
                baseline = payload
            assert payload == baseline

    def test_runtime_payload_is_released_after_the_run(self):
        from repro.core import parallel

        self._count_min_aggregation(3)
        assert parallel._RUNTIME_PAYLOAD is None
        assert parallel._FORK_PAYLOAD is None

    @pytest.mark.parametrize("skip_runs", [0, 1])
    def test_worker_crash_mid_wave_is_exactly_once(self, skip_runs):
        # skip_runs=0 dies in the build wave; skip_runs=1 lets builds
        # through so the crash lands mid-merge-wave with resident state
        from repro.core import dumps as _dumps

        serial = self._count_min_aggregation(1)
        pool = ParallelExecutor(max_workers=3)
        pool._debug_worker_crash = (1, 0, skip_runs)
        result = self._count_min_aggregation(pool)
        if result.runtime_stats is None:
            pytest.skip("no process pool on this platform")
        assert _dumps(result.summary) == _dumps(serial.summary)
        assert result.runtime_stats["worker_crashes"] == 1
        assert result.degraded_to_serial
        assert any("exactly-once" in e for e in result.degradation_events)

    def test_crash_recovery_leaves_no_shared_memory_behind(self):
        import glob

        before = set(glob.glob("/dev/shm/rs*"))
        pool = ParallelExecutor(max_workers=3)
        pool._debug_worker_crash = (0, 0, 1)
        self._count_min_aggregation(pool)
        assert set(glob.glob("/dev/shm/rs*")) == before

    def test_healthy_runs_report_no_degradation(self):
        result = self._count_min_aggregation(3)
        assert not result.degraded_to_serial
        assert result.degradation_events == []

    def test_serial_executor_is_not_degraded(self):
        # executor=1 is *requested* serial — reporting it as degraded
        # would cry wolf on every single-core box
        result = self._count_min_aggregation(1)
        assert not result.degraded_to_serial
        assert result.degradation_events == []
        assert result.runtime_stats is None


# ---------------------------------------------------------------------------
# cached quantile views
# ---------------------------------------------------------------------------


class TestQueryCache:
    def _sketch(self):
        from repro.quantiles import MergeableQuantiles

        return MergeableQuantiles(64, rng=3).extend(_floats(77, n=4000))

    def test_repeated_queries_hit_the_cache(self):
        sketch = self._sketch()
        qs = np.linspace(0.05, 0.95, 19).tolist()
        first = sketch.quantiles(qs)
        assert sketch.view_stats == {"hits": 0, "misses": 1}
        for _ in range(5):
            assert sketch.quantiles(qs) == first
        assert sketch.view_stats == {"hits": 5, "misses": 1}

    def test_batch_quantiles_match_scalar_quantiles(self):
        from repro.quantiles import HybridQuantiles, KLLQuantiles, MRLQuantiles

        qs = np.linspace(0.0, 1.0, 21).tolist()
        for summary in (
            self._sketch(),
            KLLQuantiles(64, rng=5).extend(_floats(78, n=4000)),
            MRLQuantiles(32).extend(_floats(79, n=4000)),
            HybridQuantiles(0.1, rng=6).extend(_floats(80, n=4000)),
        ):
            assert summary.quantiles(qs) == [summary.quantile(q) for q in qs]

    def test_update_invalidates_the_view(self):
        sketch = self._sketch()
        sketch.median()
        stats = sketch.view_stats
        sketch.update(0.5)
        sketch.median()
        assert sketch.view_stats["misses"] == stats["misses"] + 1

    def test_merge_invalidates_the_view(self):
        from repro.quantiles import MergeableQuantiles

        sketch = self._sketch()
        sketch.median()
        stats = sketch.view_stats
        sketch.merge(MergeableQuantiles(64, rng=9).extend(_floats(81, n=100)))
        sketch.median()
        assert sketch.view_stats["misses"] == stats["misses"] + 1

    def test_rank_cdf_quantile_share_one_view(self):
        sketch = self._sketch()
        sketch.rank(0.3)
        sketch.cdf(0.5)
        sketch.quantile(0.9)
        assert sketch.view_stats["misses"] == 1

    def test_invalidate_view_forces_rebuild(self):
        sketch = self._sketch()
        sketch.median()
        sketch.invalidate_view()
        sketch.median()
        assert sketch.view_stats["misses"] == 2

    def test_summaries_without_sample_state_still_answer(self):
        from repro.quantiles import GKQuantiles

        gk = GKQuantiles(0.1).extend(_floats(82, n=500))
        qs = [0.1, 0.5, 0.9]
        assert gk.quantiles(qs) == [gk.quantile(q) for q in qs]

    def test_empty_summary_batch_raises_like_scalar(self):
        from repro.core import EmptySummaryError
        from repro.quantiles import KLLQuantiles

        empty = KLLQuantiles(16, rng=1)
        assert empty.quantiles([]) == []
        with pytest.raises(EmptySummaryError):
            empty.quantiles([0.5])


# ---------------------------------------------------------------------------
# KLL compress guard
# ---------------------------------------------------------------------------


class TestKLLCompressGuard:
    def test_compress_scan_cost_stays_linear(self):
        """The resume-in-place scan must do O(items) level visits; the
        old restart-from-zero scan was superlinear (O(L) restarts per
        compaction, L levels deep)."""
        from repro.quantiles import KLLQuantiles

        costs = {}
        for n in (2_000, 8_000):
            sketch = KLLQuantiles(16, rng=1)
            sketch.extend(np.random.default_rng(4).random(n))
            costs[n] = sketch._compress_steps
        # linear scan: cost ratio tracks the 4x item ratio with slack;
        # a quadratic scan blows well past it
        assert costs[8_000] <= 8 * costs[2_000]
        assert costs[8_000] <= 6 * 8_000

    def test_streaming_updates_stay_linear_too(self):
        from repro.quantiles import KLLQuantiles

        sketch = KLLQuantiles(16, rng=2)
        for value in np.random.default_rng(5).random(6_000):
            sketch.update(float(value))
        assert sketch._compress_steps <= 6 * 6_000

    def test_compress_still_respects_capacities(self):
        from repro.quantiles import KLLQuantiles

        sketch = KLLQuantiles(32, rng=3)
        sketch.extend(np.random.default_rng(6).random(50_000))
        for level in range(sketch.num_levels()):
            assert len(sketch._levels[level]) <= sketch._capacity(level)
        # rank accuracy unchanged by the scan-order fix
        data = np.sort(np.random.default_rng(6).random(50_000))
        for q in (0.1, 0.5, 0.9):
            x = data[int(q * (len(data) - 1))]
            true_rank = np.searchsorted(data, x, side="right")
            assert abs(sketch.rank(x) - true_rank) <= 0.1 * len(data)


# ---------------------------------------------------------------------------
# Node payload cache / retry-byte accounting
# ---------------------------------------------------------------------------


class TestNodePayloadCache:
    def _built_node(self):
        from repro.frequency import ExactCounter

        node = Node(node_id=0, shard=np.array([1, 2, 2, 3]))
        node.build(ExactCounter)
        return node

    def test_reemit_same_generation_charges_retransmission(self):
        node = self._built_node()
        first = node.emit(serialize=True)
        sent_after_first = node.bytes_sent
        second = node.emit(serialize=True)
        assert second == first  # identical bytes, not a re-serialization
        assert node.bytes_sent == sent_after_first == len(first)
        assert node.bytes_retransmitted == len(first)

    def test_new_generation_reserializes(self):
        node = self._built_node()
        other = self._built_node()
        node.emit(serialize=True)
        node.absorb(other.emit(serialize=True))
        before = node.bytes_sent
        node.emit(serialize=True)
        assert node.bytes_sent > before
        assert node.bytes_retransmitted == 0

    def test_rebuild_drops_cache(self):
        from repro.frequency import ExactCounter

        node = self._built_node()
        node.emit(serialize=True)
        node.build(ExactCounter)
        node.emit(serialize=True)
        assert node.bytes_retransmitted == 0
        assert node.bytes_sent == 2 * len(node.emit(serialize=True)) or node.bytes_sent > 0

    def test_retry_reemit_does_not_advance_randomized_state(self):
        """Serializing a randomized summary draws a seed from its RNG;
        retransmissions must reuse the cached payload so faults cannot
        perturb the summary's RNG stream."""
        from repro.quantiles import MergeableQuantiles

        node = Node(node_id=0, shard=np.random.default_rng(1).random(256))
        node.build(lambda: MergeableQuantiles(16, rng=7))
        assert node.emit(serialize=True) == node.emit(serialize=True)

    def test_absorb_many_merges_group_at_once(self):
        from repro.frequency import ExactCounter

        parent = self._built_node()
        children = []
        for i in range(1, 4):
            child = Node(node_id=i, shard=np.array([i, i]))
            child.build(ExactCounter)
            children.append(child.emit(serialize=True))
        merged = parent.absorb_many(children)
        assert merged == 3
        assert parent.merges_performed == 3
        assert parent.summary.n == 4 + 6

    def test_absorb_many_dedups_via_ledger(self):
        from repro.distributed import MergeLedger
        from repro.frequency import ExactCounter

        parent = self._built_node()
        parent.ledger = MergeLedger()
        child = Node(node_id=1, shard=np.array([9]))
        child.build(ExactCounter)
        payload = child.emit(serialize=True)
        assert parent.absorb_many([payload], delivery_ids=["d1"]) == 1
        assert parent.absorb_many([payload, payload], delivery_ids=["d1", "d2"]) == 1
        assert parent.duplicates_ignored == 1
        assert parent.summary.n == 4 + 2
