"""Unit tests for the synthetic stream generators."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core import ParameterError
from repro.workloads import (
    adversarial_mg_stream,
    mixture_stream,
    normal_stream,
    sequential_stream,
    uniform_stream,
    value_stream,
    zipf_stream,
)


class TestZipf:
    def test_length_and_range(self):
        stream = zipf_stream(1_000, universe=100, rng=1)
        assert len(stream) == 1_000
        assert stream.min() >= 0
        assert stream.max() < 100

    def test_deterministic(self):
        assert np.array_equal(zipf_stream(100, rng=2), zipf_stream(100, rng=2))

    def test_skew_increases_with_alpha(self):
        low = Counter(zipf_stream(20_000, alpha=0.5, universe=1_000, rng=3).tolist())
        high = Counter(zipf_stream(20_000, alpha=2.0, universe=1_000, rng=3).tolist())
        assert high.most_common(1)[0][1] > low.most_common(1)[0][1]

    def test_alpha_below_one_supported(self):
        stream = zipf_stream(100, alpha=0.7, universe=50, rng=4)
        assert len(stream) == 100

    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            zipf_stream(0)
        with pytest.raises(ParameterError):
            zipf_stream(10, alpha=0)
        with pytest.raises(ParameterError):
            zipf_stream(10, universe=0)


class TestUniformAndSequential:
    def test_uniform_range(self):
        stream = uniform_stream(500, universe=10, rng=5)
        assert set(stream.tolist()) <= set(range(10))

    def test_sequential_all_distinct(self):
        stream = sequential_stream(100, start=5)
        assert len(set(stream.tolist())) == 100
        assert stream[0] == 5


class TestAdversarial:
    def test_half_mass_on_heavy_items(self):
        stream = adversarial_mg_stream(10_000, k=16, heavy_items=2, rng=6)
        counts = Counter(stream.tolist())
        heavy_mass = counts.get(0, 0) + counts.get(1, 0)
        assert heavy_mass == 5_000

    def test_singletons_are_distinct(self):
        stream = adversarial_mg_stream(1_000, k=8, rng=7)
        counts = Counter(stream.tolist())
        singles = [item for item, c in counts.items() if item >= 10**9]
        assert all(counts[s] == 1 for s in singles)

    def test_drives_mg_deduction_high(self):
        from repro.frequency import MisraGries

        k = 16
        stream = adversarial_mg_stream(20_000, k=k, rng=8)
        mg = MisraGries(k).extend(stream.tolist())
        # deduction should approach a large fraction of its n/(k+1) cap
        assert mg.deduction >= 0.5 * len(stream) / (k + 1)

    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            adversarial_mg_stream(100, k=0)


class TestMixture:
    def test_heavy_fraction_respected(self):
        stream = mixture_stream(
            10_000, heavy_items=[7], heavy_fraction=0.3, universe=10**6, rng=9
        )
        counts = Counter(stream.tolist())
        assert abs(counts[7] - 3_000) < 300

    def test_zero_fraction_is_uniform(self):
        stream = mixture_stream(1_000, heavy_items=[], heavy_fraction=0.0, rng=10)
        assert len(stream) == 1_000

    def test_missing_heavy_items_raises(self):
        with pytest.raises(ParameterError):
            mixture_stream(100, heavy_items=[], heavy_fraction=0.5)

    def test_invalid_fraction_raises(self):
        with pytest.raises(ParameterError):
            mixture_stream(100, heavy_items=[1], heavy_fraction=1.5)


class TestValueStreams:
    @pytest.mark.parametrize(
        "dist", ["uniform", "normal", "exponential", "lognormal", "bimodal"]
    )
    def test_distributions_produce_floats(self, dist):
        stream = value_stream(256, dist, rng=11)
        assert stream.shape == (256,)
        assert np.isfinite(stream).all()

    def test_unknown_distribution_raises(self):
        with pytest.raises(ParameterError, match="unknown distribution"):
            value_stream(10, "cauchy")

    def test_normal_stream_params(self):
        stream = normal_stream(10_000, mean=5.0, std=0.1, rng=12)
        assert abs(stream.mean() - 5.0) < 0.05

    def test_invalid_std_raises(self):
        with pytest.raises(ParameterError):
            normal_stream(10, std=0)

    def test_bimodal_is_bimodal(self):
        stream = value_stream(5_000, "bimodal", rng=13)
        near_zero = np.abs(stream) < 1.0
        assert near_zero.mean() < 0.05
