"""Tests for the event-time workload generators."""

from __future__ import annotations

import pytest

from repro.core import ParameterError
from repro.workloads import (
    bursty_events,
    diurnal_events,
    regime_change_events,
    with_late_arrivals,
)


class TestRegimeChange:
    def test_length_and_time_range(self):
        events = regime_change_events(500, phases=["A", "B"], span=100.0, rng=1)
        assert len(events) == 500
        assert all(0 <= t < 100.0 for _, t in events)

    def test_phase_items_dominate_their_phase(self):
        events = regime_change_events(
            4_000, phases=["A", "B"], span=100.0, noise_fraction=0.3, rng=2
        )
        first = [i for i, t in events if t < 50.0]
        second = [i for i, t in events if t >= 50.0]
        assert first.count("A") > first.count("B")
        assert second.count("B") > second.count("A")

    def test_timestamps_sorted(self):
        events = regime_change_events(200, phases=["A"], span=10.0, rng=3)
        times = [t for _, t in events]
        assert times == sorted(times)

    def test_validation(self):
        with pytest.raises(ParameterError):
            regime_change_events(0, ["A"], 1.0)
        with pytest.raises(ParameterError):
            regime_change_events(10, [], 1.0)
        with pytest.raises(ParameterError):
            regime_change_events(10, ["A"], 1.0, noise_fraction=2.0)


class TestBursty:
    def test_burst_concentrated_in_window(self):
        events = bursty_events(
            2_000, "BURST", burst_start=40.0, burst_length=5.0, span=100.0, rng=4
        )
        burst_times = [t for i, t in events if i == "BURST"]
        assert len(burst_times) == 1_000
        assert all(40.0 <= t < 45.0 for t in burst_times)

    def test_delivery_sorted_by_time(self):
        events = bursty_events(100, "B", 1.0, 1.0, 10.0, rng=5)
        times = [t for _, t in events]
        assert times == sorted(times)

    def test_validation(self):
        with pytest.raises(ParameterError):
            bursty_events(1, "B", 0.0, 1.0, 1.0)
        with pytest.raises(ParameterError):
            bursty_events(10, "B", 0.0, 0.0, 1.0)


class TestDiurnal:
    def test_day_night_alternation(self):
        events = diurnal_events(4_000, "sun", "moon", days=2, rng=6)
        day_items = [i for i, t in events if (t % 24.0) < 12.0]
        night_items = [i for i, t in events if (t % 24.0) >= 12.0]
        assert set(day_items) == {"sun"}
        assert set(night_items) == {"moon"}

    def test_validation(self):
        with pytest.raises(ParameterError):
            diurnal_events(0, "a", "b")


class TestLateArrivals:
    def test_event_times_preserved(self):
        events = [("a", 1.0), ("b", 2.0), ("c", 3.0)]
        delivered = with_late_arrivals(events, late_fraction=1.0, max_delay=10.0, rng=7)
        assert sorted(delivered) == sorted(events)

    def test_zero_late_fraction_keeps_order(self):
        events = [("a", 1.0), ("b", 2.0), ("c", 3.0)]
        delivered = with_late_arrivals(events, late_fraction=0.0, max_delay=10.0)
        assert delivered == events

    def test_reordering_happens(self):
        events = [(i, float(i)) for i in range(200)]
        delivered = with_late_arrivals(events, late_fraction=0.5, max_delay=50.0, rng=8)
        assert delivered != events  # some reordering occurred

    def test_decayed_mg_tolerates_late_arrivals(self):
        """End-to-end: out-of-order delivery keeps the decayed bound."""
        from repro.decay import DecayedMisraGries
        from repro.workloads import regime_change_events

        events = regime_change_events(
            1_000, phases=[1, 2], span=200.0, noise_fraction=0.4, rng=9
        )
        delivered = with_late_arrivals(events, 0.3, 20.0, rng=10)
        dmg = DecayedMisraGries(16, half_life=50.0)
        for item, t in delivered:
            dmg.observe(item, t)
        assert dmg.deduction <= dmg.error_bound + 1e-9

    def test_validation(self):
        with pytest.raises(ParameterError):
            with_late_arrivals([("a", 1.0)], late_fraction=2.0, max_delay=1.0)
        with pytest.raises(ParameterError):
            with_late_arrivals([("a", 1.0)], late_fraction=0.5, max_delay=-1.0)
