"""Unit tests for stream utilities and the named synthetic datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ParameterError
from repro.workloads import (
    DATASETS,
    chunk_evenly,
    chunk_sizes,
    dataset_names,
    interleave,
    load_dataset,
    shuffled,
    sorted_copy,
)


class TestChunking:
    def test_chunk_evenly_covers(self):
        data = np.arange(10)
        chunks = chunk_evenly(data, 3)
        assert np.array_equal(np.concatenate(chunks), data)
        assert [len(c) for c in chunks] == [4, 3, 3]

    def test_chunk_evenly_validates(self):
        with pytest.raises(ParameterError):
            chunk_evenly(np.arange(2), 3)
        with pytest.raises(ParameterError):
            chunk_evenly(np.arange(2), 0)

    def test_chunk_sizes_exact(self):
        data = np.arange(6)
        chunks = chunk_sizes(data, [1, 2, 3])
        assert [len(c) for c in chunks] == [1, 2, 3]
        assert np.array_equal(np.concatenate(chunks), data)

    def test_chunk_sizes_validates_total(self):
        with pytest.raises(ParameterError, match="sum to"):
            chunk_sizes(np.arange(5), [1, 2])

    def test_chunk_sizes_rejects_negative(self):
        with pytest.raises(ParameterError):
            chunk_sizes(np.arange(3), [-1, 4])


class TestInterleaveShuffleSort:
    def test_interleave_round_robin(self):
        chunks = [np.array([1, 4]), np.array([2, 5]), np.array([3])]
        assert interleave(chunks).tolist() == [1, 2, 3, 4, 5]

    def test_interleave_empty_raises(self):
        with pytest.raises(ParameterError):
            interleave([])

    def test_shuffled_is_permutation(self):
        data = np.arange(50)
        out = shuffled(data, rng=1)
        assert sorted(out.tolist()) == data.tolist()
        assert np.array_equal(data, np.arange(50))  # input untouched

    def test_sorted_copy(self):
        data = np.array([3.0, 1.0, 2.0])
        assert sorted_copy(data).tolist() == [1.0, 2.0, 3.0]
        assert sorted_copy(data, descending=True).tolist() == [3.0, 2.0, 1.0]
        assert data.tolist() == [3.0, 1.0, 2.0]


class TestDatasets:
    def test_names_listed(self):
        assert "caida_like" in dataset_names()
        assert dataset_names() == sorted(dataset_names())

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_every_recipe_builds(self, name):
        data = load_dataset(name, 500, rng=1)
        assert len(data) == 500

    def test_item_datasets_are_integers(self):
        data = load_dataset("caida_like", 100, rng=2)
        assert np.issubdtype(data.dtype, np.integer)

    def test_value_datasets_are_floats(self):
        data = load_dataset("latency_like", 100, rng=3)
        assert np.issubdtype(data.dtype, np.floating)

    def test_deterministic(self):
        a = load_dataset("weblog_like", 200, rng=4)
        b = load_dataset("weblog_like", 200, rng=4)
        assert np.array_equal(a, b)

    def test_latency_has_heavy_tail(self):
        data = load_dataset("latency_like", 50_000, rng=5)
        assert data.max() > 10 * np.median(data)

    def test_unknown_dataset_raises(self):
        with pytest.raises(ParameterError, match="unknown dataset"):
            load_dataset("mnist", 10)

    def test_recipes_document_provenance(self):
        for recipe in DATASETS.values():
            assert recipe.stands_in_for  # substitution is documented
            assert recipe.kind in ("items", "values")
