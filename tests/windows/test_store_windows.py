"""Trailing-window queries against SegmentStore and CubeStore.

The store layer of the windowing PR: ``query(window=W)`` plans the
dyadic cover of the trailing window (≤ 2 blocks per level — the EH
invariant applied to the roll-up tree), and ``window_eps`` lets the
planner absorb the one materialized roll-up straddling the window
start *whole* — the EH oldest-bucket rule — trading a bounded mass
overshoot for strictly fewer merges.
"""

from __future__ import annotations

import math

import pytest

from repro.core import ParameterError, QueryError
from repro.store import CubeStore, SegmentStore

EPOCHS = 64
PER_EPOCH = 3


def _store() -> SegmentStore:
    store = SegmentStore(width=1.0)
    store.add_member("count", "exact_counter", field="value")
    records, keys = [], []
    for epoch in range(EPOCHS):
        for i in range(PER_EPOCH):
            records.append({"value": (epoch + i) % 7})
            keys.append(epoch + i / PER_EPOCH)
    store.ingest(records, keys)
    store.compact()
    return store


@pytest.fixture(scope="module")
def store() -> SegmentStore:
    return _store()


class TestSegmentStoreWindows:
    def test_window_equals_explicit_range(self, store):
        window = store.query(window=16.0)
        explicit = store.query(lo=float(EPOCHS - 16), hi=float(EPOCHS))
        assert window.key_range == explicit.key_range
        assert window["count"].n == explicit["count"].n == 16 * PER_EPOCH
        for item in range(7):
            assert window["count"].estimate(item) == explicit[
                "count"
            ].estimate(item)

    def test_window_rounds_outward_to_epochs(self, store):
        result = store.query(window=15.3)
        assert result["count"].n == 16 * PER_EPOCH
        assert result.key_range == (float(EPOCHS - 16), float(EPOCHS))

    def test_explicit_end_anchors_the_window(self, store):
        result = store.query(hi=32.0, window=16.0)
        assert result.key_range == (16.0, 32.0)
        assert result["count"].n == 16 * PER_EPOCH

    def test_naive_scan_agrees(self, store):
        planned = store.query(window=48.0)
        naive = store.query(window=48.0, use_rollups=False)
        assert planned["count"].n == naive["count"].n
        assert len(naive.plan.segments) > len(planned.plan.segments)

    def test_eps_slack_absorbs_straddling_rollup(self, store):
        # [16, 64) exactly: two blocks; with eps=0.5 the slack
        # (floor(0.5 * 48) = 24 epochs) lets the planner serve the
        # whole [0, 64) roll-up instead — one segment, 16 epochs over
        exact = store.query(window=48.0)
        relaxed = store.query(window=48.0, window_eps=0.5)
        assert exact.plan.window_slack_used == 0
        assert relaxed.plan.window_slack_used == 16
        assert len(relaxed.plan.segments) < len(exact.plan.segments)
        assert relaxed.key_range == (0.0, float(EPOCHS))
        assert exact.key_range == (16.0, float(EPOCHS))
        assert relaxed["count"].n == EPOCHS * PER_EPOCH
        assert exact["count"].n == 48 * PER_EPOCH

    def test_slack_is_bounded_by_eps(self, store):
        for eps in (0.0, 0.1, 0.25, 0.5, 1.0):
            for window in (7.0, 16.0, 33.0, 48.0):
                plan = store.plan_window(window, eps=eps)
                window_epochs = int(math.ceil(window))
                assert plan.window_slack_used <= math.floor(
                    eps * window_epochs
                )
                assert plan.covered_lo_epoch == (
                    plan.lo_epoch - plan.window_slack_used
                )

    def test_relaxed_answer_is_a_superset_of_the_window(self, store):
        exact = store.query(window=48.0)
        relaxed = store.query(window=48.0, window_eps=0.5)
        for item in range(7):
            assert relaxed["count"].estimate(item) >= exact[
                "count"
            ].estimate(item)

    def test_window_queries_are_cached(self):
        store = _store()
        first = store.query(window=16.0, window_eps=0.25)
        again = store.query(window=16.0, window_eps=0.25)
        assert again is first
        different = store.query(window=16.0)
        assert different is not first

    def test_stats_track_window_queries(self):
        store = _store()
        base = store.stats()["planner"]
        store.query(window=48.0, window_eps=0.5)
        store.plan_window(16.0)
        after = store.stats()["planner"]
        assert after["window_queries"] == base["window_queries"] + 2
        assert (
            after["window_slack_epochs_total"]
            == base["window_slack_epochs_total"] + 16
        )

    def test_window_and_range_are_mutually_exclusive(self, store):
        with pytest.raises(ParameterError, match="not both"):
            store.query(lo=0.0, window=5.0)

    def test_query_requires_range_or_window(self, store):
        with pytest.raises(ParameterError, match="range or window"):
            store.query()
        with pytest.raises(ParameterError, match="range or window"):
            store.query(lo=0.0)

    def test_window_validation(self, store):
        with pytest.raises(ParameterError, match="window must be positive"):
            store.query(window=0.0)
        with pytest.raises(ParameterError, match="eps must be in"):
            store.query(window=8.0, window_eps=1.5)
        with pytest.raises(ParameterError, match="eps must be in"):
            store.plan_window(8.0, eps=-0.1)

    def test_window_on_empty_store_rejected(self):
        empty = SegmentStore(width=1.0)
        empty.add_member("count", "exact_counter", field="value")
        with pytest.raises(QueryError, match="empty store"):
            empty.query(window=8.0)


# ---------------------------------------------------------------------------
# CubeStore
# ---------------------------------------------------------------------------

REGIONS = ("ap", "eu", "us")


def _cube() -> CubeStore:
    cube = CubeStore(width=1.0, dims=("region",))
    cube.add_member("count", "exact_counter", field="v")
    records, keys = [], []
    for epoch in range(EPOCHS):
        for region in REGIONS:
            records.append({"region": region, "v": epoch % 5})
            keys.append(float(epoch))
    cube.ingest(records, keys)
    cube.compact(budget=10**6)
    return cube


@pytest.fixture(scope="module")
def cube() -> CubeStore:
    return _cube()


class TestCubeStoreWindows:
    def test_window_equals_explicit_range(self, cube):
        window = cube.query(window=16.0, where={"region": "eu"})
        explicit = cube.query(
            float(EPOCHS - 16), float(EPOCHS), where={"region": "eu"}
        )
        assert window.key_range == explicit.key_range
        assert window[()]["count"].n == explicit[()]["count"].n == 16

    def test_grouped_window_query(self, cube):
        result = cube.query(window=8.0, group_by=["region"])
        assert sorted(result.keys()) == sorted((r,) for r in REGIONS)
        for region in REGIONS:
            assert result[region]["count"].n == 8

    def test_eps_slack_absorbs_per_chain(self, cube):
        exact = cube.query(window=48.0, where={"region": "eu"})
        relaxed = cube.query(
            window=48.0, where={"region": "eu"}, window_eps=0.5
        )
        assert exact.plan.window_slack_used == 0
        assert relaxed.plan.window_slack_used == 16
        assert relaxed.key_range == (0.0, float(EPOCHS))
        assert relaxed[()]["count"].n == EPOCHS
        assert exact[()]["count"].n == 48
        assert relaxed.plan.cells_merged < exact.plan.cells_merged

    def test_window_anchors_at_explicit_end(self, cube):
        result = cube.query(hi=32.0, window=16.0, group_by=["region"])
        for region in REGIONS:
            assert result[region]["count"].n == 16

    def test_window_and_range_are_mutually_exclusive(self, cube):
        with pytest.raises(ParameterError, match="not both"):
            cube.query(0.0, window=5.0)

    def test_window_validation(self, cube):
        with pytest.raises(ParameterError, match="window must be positive"):
            cube.query(window=-3.0)
        with pytest.raises(ParameterError, match="window_eps"):
            cube.query(window=8.0, window_eps=2.0)

    def test_window_on_empty_cube_rejected(self):
        empty = CubeStore(width=1.0, dims=("region",))
        empty.add_member("count", "exact_counter", field="v")
        with pytest.raises(QueryError, match="empty cube"):
            empty.query(window=8.0)
