"""Window-query ≡ rebuild-from-scratch, for every registered variant.

The ISSUE's acceptance criterion: for each auto-derived
``windowed.<name>`` summary, querying the trailing window must agree
with a summary rebuilt from scratch over the *covered* stream slice —
under sequential ingest and under adversarial merge trees — within the
``(1 + eps)`` mass envelope.  The suite is registry-driven
(:func:`repro.windows.windowed_names`), so a newly registered windowable
base type is covered automatically and a dodged one fails loudly.

Three layers of agreement, pinned per base type exactly like the store
suite:

- every type: the covered span is bucket-aligned and exact — the
  window query's merged summary and the rebuild summarize the *same*
  items (``n`` matches the slice length), and the window-mass bounds
  bracket the requested window within the envelope;
- ``STREAM_IDENTICAL`` (associative state: linear sketches, exact
  baselines, order-insensitive samples): canonical serialized state
  matches bit-for-bit;
- bounded types reuse the merge-runtime checkers (the bucket merge
  tree is just another merge order, which mergeability says costs no
  accuracy); ``conservative_count_min`` keeps its one-sided bound.

The remaining types (order-sensitive internals: decay timelines,
float-summation order, Boyer–Moore votes) are pinned by the universal
layer here and byte-exactly by the merge-runtime suite's
``windowed.*`` specs.
"""

from __future__ import annotations

import json

import pytest

from repro.windows import windowed_names
from tests.test_merge_runtime import BASE_MERGE_SPECS

EPS = 0.25
WINDOW = 64
GRAN = 4
STREAM = 320

#: bases whose merged state is invariant to how the stream was chunked
STREAM_IDENTICAL = frozenset(
    {
        "ams_f2",
        "bloom_filter",
        "count_min",
        "count_sketch",
        "exact_counter",
        "exact_quantiles",
        "hyperloglog",
        "k_min_values",
    }
)

ALL_VARIANTS = sorted(windowed_names())


def _canon(summary) -> str:
    """Canonical state: volatile re-seeds stripped, lists order-free."""

    def strip(value):
        if isinstance(value, dict):
            return {k: strip(v) for k, v in value.items() if k != "seed"}
        if isinstance(value, list):
            return sorted(
                (strip(v) for v in value),
                key=lambda v: json.dumps(v, sort_keys=True),
            )
        return value

    return json.dumps(strip(summary.to_dict()), sort_keys=True)


def _stream(spec, n: int) -> list:
    out: list = []
    seed = 0
    while len(out) < n:
        out.extend(spec.feed(seed))
        seed += 1
    return out[:n]


def _check_equivalence(name: str, win, stream: list) -> None:
    """The shared assertion core: view vs rebuild over the covered span."""
    base = name.split(".", 1)[1]
    spec = BASE_MERGE_SPECS[base]

    bounds = win.window_count_bounds()
    assert bounds.lower <= WINDOW <= bounds.upper
    # the straddling-bucket slack the (1 + eps) envelope prices
    assert bounds.upper - bounds.lower <= 2 * EPS * bounds.upper + GRAN

    view = win.window_query()
    assert (view.bounds.lower, view.bounds.upper) == (
        bounds.lower,
        bounds.upper,
    )
    covered = stream[view.covered_start : view.covered_end]
    rebuild = win._spawn().extend(covered)

    # exact item coverage: the merged view and the from-scratch rebuild
    # summarize precisely the covered slice — nothing lost, nothing
    # double-counted by the bucket merges
    assert view.summary.n == rebuild.n == len(covered)

    if base in STREAM_IDENTICAL:
        assert _canon(view.summary) == _canon(rebuild)
    elif spec.mode == "bounded":
        spec.check(rebuild, view.summary, [covered])
    elif base == "conservative_count_min":
        from collections import Counter

        truth = Counter(covered)
        for item, count in truth.most_common(10):
            assert view.summary.estimate(item) >= count
            assert rebuild.estimate(item) >= count


@pytest.mark.parametrize("name", ALL_VARIANTS)
def test_sequential_ingest(name):
    base = name.split(".", 1)[1]
    spec = BASE_MERGE_SPECS[base]
    win = spec.factory(0).windowed(eps=EPS, window=WINDOW, granularity=GRAN)
    stream = _stream(spec, STREAM)
    for item in stream:
        win.update(item)
    _check_equivalence(name, win, stream)


def _chain(parts, fresh):
    acc = fresh()
    acc.merge_many(parts)
    return acc


def _balanced_tree(parts, fresh):
    nodes = list(parts)
    while len(nodes) > 1:
        merged = []
        for i in range(0, len(nodes), 2):
            if i + 1 < len(nodes):
                acc = fresh()
                acc.merge_many([nodes[i], nodes[i + 1]])
                merged.append(acc)
            else:
                merged.append(nodes[i])
        nodes = merged
    return nodes[0]


def _skewed(parts, fresh):
    # one accumulator swallowing operands one at a time, biggest first:
    # the worst case for cascade interleaving
    acc = fresh()
    for part in parts:
        acc.merge(part)
    return acc


TREES = {
    "chain": _chain,
    "balanced": _balanced_tree,
    "skewed": _skewed,
}


@pytest.mark.parametrize("name", ALL_VARIANTS)
@pytest.mark.parametrize("tree", sorted(TREES))
def test_adversarial_merge_trees(name, tree):
    """Same acceptance bar when the window was *assembled*, not streamed.

    The stream is split into uneven parts (one large, many small — the
    shapes that maximally desynchronize the EH cascade), each ingested
    into its own windowed summary, then combined under an adversarial
    merge tree.  Count-mode concat semantics make operand order the
    stream order, so the rebuilt reference is still a contiguous slice
    of the original stream.
    """
    base = name.split(".", 1)[1]
    spec = BASE_MERGE_SPECS[base]
    stream = _stream(spec, STREAM)
    # uneven split: half the stream in one part, the rest in slivers
    cuts = [0, STREAM // 2]
    while cuts[-1] < STREAM:
        cuts.append(min(STREAM, cuts[-1] + 13))
    parts = []
    for i, (lo, hi) in enumerate(zip(cuts, cuts[1:])):
        part = spec.factory(i).windowed(eps=EPS, window=WINDOW, granularity=GRAN)
        for item in stream[lo:hi]:
            part.update(item)
        parts.append(part)

    def fresh():
        return spec.factory(99).windowed(
            eps=EPS, window=WINDOW, granularity=GRAN
        )

    win = TREES[tree](parts, fresh)
    _check_equivalence(name, win, stream)


@pytest.mark.parametrize("name", ALL_VARIANTS)
def test_codec_round_trip(name):
    """Populated windowed state survives every registered codec.

    The acceptance criterion's serialization leg: windowed variants are
    first-class registry citizens, so all three codecs must round-trip
    a mid-stream window — buckets, pending granule, clock, expiry
    horizon — without changing any answer.
    """
    from repro.core import dumps, loads, registered_codecs

    base = name.split(".", 1)[1]
    spec = BASE_MERGE_SPECS[base]
    win = spec.factory(0).windowed(eps=EPS, window=WINDOW, granularity=GRAN)
    for item in _stream(spec, 150):
        win.update(item)
    for codec in registered_codecs():
        clone = loads(dumps(win, codec))
        assert type(clone) is type(win)
        assert clone.n == win.n
        assert clone._clock == win._clock
        assert clone._expired_end == win._expired_end
        assert clone.window_count_bounds() == win.window_count_bounds()
        assert _canon(clone.window_query().summary) == _canon(
            win.window_query().summary
        )


def test_registry_is_covered():
    """The parametrization is complete and each variant's checks bind.

    Every windowable base registration must appear in ``ALL_VARIANTS``
    (so a new summary type cannot dodge this suite) and every variant's
    base must carry a merge spec (so ``_check_equivalence`` has a feed
    and, where applicable, a bounded checker for it).
    """
    from repro.core import get_summary_class, registered_names

    windowable_bases = {
        name
        for name in registered_names(kind="base")
        if getattr(get_summary_class(name), "windowable", True)
    }
    assert {f"windowed.{name}" for name in windowable_bases} == set(
        ALL_VARIANTS
    )
    assert len(ALL_VARIANTS) >= 20
    for name in ALL_VARIANTS:
        assert name.split(".", 1)[1] in BASE_MERGE_SPECS
