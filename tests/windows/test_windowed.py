"""Behavior of the generic sliding-window combinator.

Construction and registry wiring, count-mode and time-mode semantics
(expiry, the query horizon, out-of-order events), serialization, and
the legacy ``WindowedMisraGries`` shim: old-vs-new equivalence within
the EH envelope plus transparent legacy-payload migration.
"""

from __future__ import annotations

import json
import math
from collections import Counter

import pytest

from repro.core import ParameterError, QueryError, registered_names
from repro.decay import WindowedMisraGries
from repro.frequency import CountMin, ExactCounter, MisraGries
from repro.quantiles import EqualWeightQuantiles
from repro.windows import WindowedSummary, windowed_class, windowed_names
from repro.workloads import window_replay_events


class TestConstruction:
    def test_entry_point_returns_registered_variant(self):
        win = MisraGries(8).windowed(eps=0.25, window=64)
        assert type(win) is windowed_class("misra_gries")
        assert type(win).registry_name == "windowed.misra_gries"
        assert win.base_cls is MisraGries
        assert win.is_empty

    def test_base_kwargs_flow_through_variant_constructor(self):
        cls = windowed_class("misra_gries")
        win = cls(eps=0.5, window=32, k=8)
        assert win.eps == 0.5
        assert json.loads(win._proto_json)["k"] == 8

    def test_prototype_must_be_empty(self):
        proto = MisraGries(8)
        proto.update("x")
        with pytest.raises(ParameterError, match="must be empty"):
            proto.windowed()

    def test_non_windowable_base_rejected(self):
        with pytest.raises(ParameterError, match="not windowable"):
            EqualWeightQuantiles(16).windowed()
        assert not any("equal_weight" in name for name in windowed_names())

    def test_windowed_of_windowed_rejected(self):
        win = MisraGries(8).windowed()
        with pytest.raises(ParameterError, match="not windowable"):
            win.windowed()

    def test_abstract_base_rejected(self):
        with pytest.raises(ParameterError, match="abstract"):
            WindowedSummary()
        with pytest.raises(ParameterError, match="abstract"):
            WindowedSummary.from_dict({})

    def test_from_prototype_dispatches_through_registry(self):
        win = WindowedSummary.from_prototype(MisraGries(8), window=16)
        assert type(win) is windowed_class("misra_gries")
        assert win.window == 16

    def test_from_prototype_type_mismatch(self):
        with pytest.raises(ParameterError, match="expects"):
            windowed_class("count_min").from_prototype(MisraGries(8))

    def test_parameter_validation(self):
        proto = MisraGries(8)
        with pytest.raises(ParameterError, match="eps"):
            proto.windowed(eps=0.0)
        with pytest.raises(ParameterError, match="eps"):
            proto.windowed(eps=1.5)
        with pytest.raises(ParameterError, match="window"):
            proto.windowed(window=0)
        with pytest.raises(ParameterError, match="mode"):
            proto.windowed(mode="sideways")
        with pytest.raises(ParameterError, match="granularity"):
            proto.windowed(granularity=-1)


class TestRegistry:
    def test_windowed_names_are_registered(self):
        names = windowed_names()
        assert names
        assert all(name.startswith("windowed.") for name in names)
        assert set(names) <= set(registered_names())

    def test_kind_filter_partitions_registry(self):
        base = registered_names(kind="base")
        windowed = registered_names(kind="windowed")
        assert set(base) | set(windowed) == set(registered_names())
        assert not set(base) & set(windowed)
        assert set(windowed_names()) <= set(windowed)

    def test_shim_is_windowed_kind_and_not_rederived(self):
        # the legacy shim is itself a windowed summary: it is listed
        # under kind="windowed" and no windowed.windowed_misra_gries
        # second-order variant exists
        assert "windowed_misra_gries" in registered_names(kind="windowed")
        assert "windowed.windowed_misra_gries" not in registered_names()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ParameterError, match="unknown summary kind"):
            registered_names(kind="sideways")

    def test_windowed_class_accepts_name_and_class(self):
        assert windowed_class("misra_gries") is windowed_class(MisraGries)


class TestCountMode:
    def test_expiry_keeps_roughly_one_window(self):
        win = ExactCounter().windowed(eps=0.25, window=64, granularity=4)
        for i in range(400):
            win.update(i)
        bounds = win.window_count_bounds()
        assert bounds.lower <= 64 <= bounds.upper
        # retained mass covers the window but not unboundedly more
        assert 64 <= win.n <= 64 * 2 + win.granularity
        assert win._expired_end is not None

    def test_unbounded_window_never_expires(self):
        win = ExactCounter().windowed(eps=0.25, granularity=4)
        for i in range(300):
            win.update(i % 7)
        assert win.n == 300
        assert win._expired_end is None
        view = win.window_query()
        assert view.summary.n == 300
        assert view.summary.estimate(0) >= 42

    def test_query_past_horizon_raises(self):
        win = ExactCounter().windowed(eps=0.25, window=32, granularity=4)
        for i in range(200):
            win.update(i)
        with pytest.raises(QueryError, match="has expired"):
            win.window_count_bounds(window=150)
        with pytest.raises(QueryError, match="has expired"):
            win.window_query(window=150)

    def test_explicit_window_narrows_the_view(self):
        win = ExactCounter().windowed(eps=0.25, window=64, granularity=4)
        for i in range(100):
            win.update(i)
        narrow = win.window_query(window=16)
        wide = win.window_query(window=64)
        assert narrow.bounds.upper <= wide.bounds.upper
        assert narrow.bounds.lower <= 16 <= narrow.bounds.upper

    def test_weighted_updates_advance_mass_clock(self):
        win = ExactCounter().windowed(eps=0.25, granularity=4)
        win.update("a", weight=3)
        win.update("b", weight=2)
        assert win._clock == 5
        assert win.window_count_bounds().upper == 5

    def test_update_validation(self):
        win = ExactCounter().windowed()
        with pytest.raises(ParameterError, match="weight"):
            win.update("a", weight=0)
        with pytest.raises(ParameterError, match="mode='time'"):
            win.observe("a", 1.0)
        with pytest.raises(ParameterError, match="window must be positive"):
            win.window_query(window=-1)


class TestTimeMode:
    def _ingest(self, win, events):
        for item, t in events:
            win.observe(item, t)
        return win

    def test_watermark_tracks_max_timestamp(self):
        win = ExactCounter().windowed(mode="time", window=10.0, granularity=1.0)
        self._ingest(win, [("a", 3.0), ("b", 1.0), ("c", 2.5)])
        assert win._clock == 3.0

    def test_out_of_order_events_are_absorbed(self):
        events = window_replay_events(
            400, span=100.0, universe=16, late_fraction=0.3, max_delay=5.0, rng=7
        )
        assert [t for _, t in events] != sorted(t for _, t in events)
        win = ExactCounter().windowed(
            eps=0.25, mode="time", window=200.0, granularity=5.0
        )
        self._ingest(win, events)
        # nothing within the (ample) window is lost
        assert win.n == 400
        view = win.window_query()
        truth = Counter(item for item, _ in events)
        for item, count in truth.most_common(5):
            assert view.summary.estimate(item) == count

    def test_expiry_by_event_time(self):
        win = ExactCounter().windowed(
            eps=0.25, mode="time", window=20.0, granularity=2.0
        )
        events = [(i % 4, float(i) / 2) for i in range(400)]  # span [0, 200)
        self._ingest(win, events)
        assert win._expired_end is not None
        bounds = win.window_count_bounds()
        # 20 time units at 2 events per unit
        assert bounds.lower <= 40 <= bounds.upper
        with pytest.raises(QueryError, match="has expired"):
            win.window_query(window=150.0)

    def test_timestamp_validation(self):
        win = ExactCounter().windowed(mode="time")
        with pytest.raises(ParameterError, match="finite"):
            win.observe("a", float("nan"))
        with pytest.raises(ParameterError, match="weight"):
            win.observe("a", 1.0, weight=0)

    def test_timestampless_update_lands_at_watermark(self):
        win = ExactCounter().windowed(mode="time", granularity=1.0)
        win.observe("a", 5.0)
        win.update("b")  # stamps at watermark 5.0
        view = win.window_query()
        assert view.summary.estimate("b") == 1
        assert win._clock == 5.0


class TestSerialization:
    def test_round_trip_preserves_answers(self):
        win = MisraGries(8).windowed(eps=0.25, window=64, granularity=4)
        for i in range(200):
            win.update(i % 10)
        clone = type(win).from_dict(win.to_dict())
        assert clone.n == win.n
        assert clone.window_count_bounds() == win.window_count_bounds()
        mine = win.window_query()
        theirs = clone.window_query()
        assert (mine.covered_start, mine.covered_end) == (
            theirs.covered_start,
            theirs.covered_end,
        )
        for item in range(10):
            assert mine.summary.estimate(item) == theirs.summary.estimate(item)

    def test_identical_histories_serialize_identically(self):
        # the volatile re-seed invariant: identically-seeded instances
        # replaying the same ops draw the same re-seeds, so serialized
        # states compare exactly
        def build():
            win = CountMin(32, 3, seed=1).windowed(
                eps=0.25, window=32, granularity=4
            )
            for i in range(100):
                win.update(i % 13)
            return win

        assert json.dumps(build().to_dict(), sort_keys=True) == json.dumps(
            build().to_dict(), sort_keys=True
        )

    def test_round_trip_continues_deterministically(self):
        win = ExactCounter().windowed(eps=0.25, window=32, granularity=4)
        for i in range(50):
            win.update(i)
        clone = type(win).from_dict(win.to_dict())
        for i in range(50, 120):
            win.update(i)
            clone.update(i)
        assert win.window_count_bounds() == clone.window_count_bounds()
        assert win.n == clone.n


# ---------------------------------------------------------------------------
# The legacy shim (satellite: deprecated alias + old-vs-new equivalence)
# ---------------------------------------------------------------------------


class _LegacyReference:
    """~15-line dict-of-Counters model of the pre-combinator semantics:

    every event lands in bucket ``floor(t / width)``; exactly
    ``num_buckets`` recent indices are retained; queries sum whole
    buckets.  With ``k >= distinct items`` per-bucket Misra-Gries is
    exact, so the shim must match this model *exactly*.
    """

    def __init__(self, width: float, num_buckets: int) -> None:
        self.width = width
        self.num = num_buckets
        self.buckets: dict = {}

    def observe(self, item, t: float) -> None:
        self.buckets.setdefault(math.floor(t / self.width), Counter())[item] += 1
        latest = max(self.buckets)
        for idx in [i for i in self.buckets if i <= latest - self.num]:
            del self.buckets[idx]

    def estimate(self, item) -> int:
        return sum(c[item] for c in self.buckets.values())

    def query(self, end: float, length: float) -> Counter:
        last = math.floor(end / self.width)
        first = math.floor((end - length) / self.width)
        total: Counter = Counter()
        for idx, counts in self.buckets.items():
            if first <= idx <= last:
                total += counts
        return total


def _shim_stream(n=320, span=80.0, universe=12, rng=11):
    return window_replay_events(n, span=span, universe=universe, rng=rng)


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestShim:
    def test_construction_warns_deprecated(self):
        with pytest.warns(DeprecationWarning, match="windowed"):
            WindowedMisraGries(8, bucket_width=5.0, num_buckets=8)

    def test_is_deprecated_alias_over_the_combinator(self):
        assert issubclass(WindowedMisraGries, windowed_class("misra_gries"))
        assert issubclass(WindowedMisraGries, WindowedSummary)
        shim = WindowedMisraGries(8, bucket_width=5.0, num_buckets=8)
        assert shim.mode == "time"
        assert shim.horizon == 40.0
        # eps chosen so the EH cascade never fires: cap > num_buckets
        assert shim.cap > shim.num_buckets

    def test_matches_legacy_reference_exactly(self):
        events = _shim_stream()
        shim = WindowedMisraGries(64, bucket_width=5.0, num_buckets=8)
        ref = _LegacyReference(5.0, 8)
        for item, t in events:
            shim.observe(item, t)
            ref.observe(item, t)
        for item in range(12):
            assert shim.estimate(item) == ref.estimate(item)
        end = max(t for _, t in events)
        got = shim.query(end, 20.0)
        want = ref.query(end, 20.0)
        assert got.n == sum(want.values())
        for item in range(12):
            assert got.estimate(item) == want[item]

    def test_old_vs_new_equivalence_within_eh_envelope(self):
        # the shim and the generic time-mode combinator cover slightly
        # different bucket-aligned spans of the same suffix; every
        # estimate must agree within the straddling-bucket slack the
        # (1 + eps) envelope prices
        events = _shim_stream()
        shim = WindowedMisraGries(64, bucket_width=5.0, num_buckets=8)
        generic = MisraGries(64).windowed(
            eps=0.25, window=40.0, mode="time", granularity=5.0
        )
        for item, t in events:
            shim.observe(item, t)
            generic.observe(item, t)
        view = generic.window_query()
        slack = (view.bounds.upper - view.bounds.lower) + 0
        # the generic window covers a superset of the shim's horizon
        truth = Counter(item for item, _ in events)
        for item, _ in truth.most_common(6):
            new = view.summary.estimate(item)
            old = shim.estimate(item)
            assert new >= old
            assert new - old <= slack

    def test_legacy_payload_migration(self):
        width, num = 5.0, 4
        chunks = {
            "2": MisraGries(8).extend([1, 1, 2]),
            "3": MisraGries(8).extend([1, 3]),
            "4": MisraGries(8).extend([2, 2, 2]),
        }
        payload = {
            "k": 8,
            "bucket_width": width,
            "num_buckets": num,
            "n": 8,
            "evicted_through": 1,
            "buckets": {idx: mg.to_dict() for idx, mg in chunks.items()},
        }
        shim = WindowedMisraGries.from_dict(payload)
        assert shim.n == 8
        assert shim.estimate(1) == 3
        assert shim.estimate(2) == 4
        assert shim.live_buckets() == {2: 3, 3: 2, 4: 3}
        # eviction horizon survives migration
        with pytest.raises(QueryError, match="expired"):
            shim.query(24.0, 20.0)
        # and the migrated instance re-serializes in the new schema
        fresh = WindowedMisraGries.from_dict(shim.to_dict())
        assert isinstance(shim.to_dict()["buckets"], list)
        assert fresh.estimate(2) == 4

    def test_merge_aligns_by_absolute_index(self):
        a = WindowedMisraGries(16, bucket_width=1.0, num_buckets=8)
        b = WindowedMisraGries(16, bucket_width=1.0, num_buckets=8)
        a.observe("x", 0.5)
        a.observe("x", 2.5)
        b.observe("x", 2.7)
        b.observe("y", 3.5)
        a.merge(b)
        assert a.live_buckets() == {0: 1, 2: 2, 3: 1}
        assert a.estimate("x") == 3

    def test_incompatible_geometry_rejected(self):
        from repro.core import MergeError

        a = WindowedMisraGries(16, bucket_width=1.0, num_buckets=8)
        b = WindowedMisraGries(16, bucket_width=2.0, num_buckets=8)
        with pytest.raises(MergeError, match="geometry"):
            a.merge(b)
