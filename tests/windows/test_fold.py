"""The bucket-aware engine fold over windowed operands.

``windowed_merge_all`` compiles per-level slice/union/stitch steps into
ordinary engine IR, so windowed merges ride the same executor, wave
scheduler and fault/retry/ledger machinery as every other fold.  The
acceptance bar: the scalar loop and the parallel wave runtime produce
*byte-identical* results, and the fold agrees with a plain chain merge
on everything observable.
"""

from __future__ import annotations

import json

import pytest

from repro.core import MergeError
from repro.engine import FaultModel, MergeLedger, MergePlan, RetryPolicy
from repro.frequency import CountMin, ExactCounter, MisraGries
from repro.windows import windowed_merge_all
from repro.windows.fold import compile_windowed_fold


def _parts(k=5, chunk=40, window=None):
    """Identically-configured count-mode parts over consecutive chunks."""
    parts = []
    for i in range(k):
        win = CountMin(32, 3, seed=1).windowed(
            eps=0.25, window=window, granularity=4
        )
        for j in range(chunk):
            win.update((i * chunk + j) % 17)
        parts.append(win)
    return parts


def _state(win) -> str:
    return json.dumps(win.to_dict(), sort_keys=True)


def _fingerprint(win):
    """Mutation probe that, unlike ``to_dict``, draws no re-seed."""
    return (
        win.n,
        win._clock,
        [(b.level, b.count, b.start, b.end) for b in win._buckets],
        None
        if win._pending is None
        else (win._pending.count, win._pending.start, win._pending.end),
    )


class TestPlanShape:
    def test_compiles_to_groupable_engine_ir(self):
        plan = compile_windowed_fold(_parts())
        assert isinstance(plan, MergePlan)
        assert plan.groupable
        assert "out" in plan.protected
        assert plan.name.startswith("fold:windowed[")
        ops = [step.op for step in plan.steps]
        assert ops.count("emit") == 1
        assert "build" in ops

    def test_empty_operand_list_rejected(self):
        with pytest.raises(MergeError, match="empty list"):
            compile_windowed_fold([])

    def test_mixed_types_rejected(self):
        a = CountMin(32, 3, seed=1).windowed(eps=0.25)
        b = MisraGries(8).windowed(eps=0.25)
        with pytest.raises(MergeError, match="identical summary types"):
            compile_windowed_fold([a, b])

    def test_incompatible_configuration_rejected(self):
        a = CountMin(32, 3, seed=1).windowed(eps=0.25)
        b = CountMin(32, 3, seed=1).windowed(eps=0.5)
        with pytest.raises(MergeError, match="incompatible"):
            windowed_merge_all([a, b])


class TestFoldSemantics:
    def test_serial_parallel_byte_identical(self):
        serial = windowed_merge_all(_parts())
        parallel = windowed_merge_all(_parts(), executor=3)
        assert _state(serial) == _state(parallel)

    def test_serialize_payload_path_byte_identical(self):
        direct = windowed_merge_all(_parts())
        serialized = windowed_merge_all(_parts(), serialize=True)
        assert _state(direct) == _state(serialized)

    def test_agrees_with_chain_merge(self):
        # unbounded window: full coverage, so the chain and the
        # bucket-aware fold must summarize identical content even
        # though their bucket layouts may differ
        def chained():
            parts = _parts()
            acc = parts[0]._spawn_like()
            acc.merge_many(parts)
            return acc

        fold = windowed_merge_all(_parts())
        chain = chained()
        assert fold.n == chain.n == 200
        assert fold.window_count_bounds() == chain.window_count_bounds()
        a = fold.window_query()
        b = chain.window_query()
        assert a.summary.n == b.summary.n
        for item in range(17):
            assert a.summary.estimate(item) == b.summary.estimate(item)

    def test_windowed_operands_expire_in_the_stitch(self):
        fold = windowed_merge_all(_parts(window=64))
        bounds = fold.window_count_bounds()
        assert bounds.lower <= 64 <= bounds.upper
        # expiry ran: the accumulator does not retain all 200 items
        assert fold.n < 200
        assert fold._expired_end is not None

    def test_operands_left_untouched(self):
        parts = _parts()
        before = [_fingerprint(p) for p in parts]
        windowed_merge_all(parts)
        windowed_merge_all(parts, executor=2)
        assert [_fingerprint(p) for p in parts] == before

    def test_all_empty_operands(self):
        parts = [
            ExactCounter().windowed(eps=0.25, granularity=4) for _ in range(3)
        ]
        fold = windowed_merge_all(parts)
        assert fold.is_empty
        assert fold.num_buckets == 0

    def test_single_operand(self):
        (part,) = _parts(k=1)
        fold = windowed_merge_all([part])
        assert fold.n == part.n
        assert fold is not part

    def test_time_mode_operands_align_by_absolute_time(self):
        def part(stripe):
            win = ExactCounter().windowed(
                eps=0.25, mode="time", granularity=5.0
            )
            for i in range(50):
                win.observe(i % 7, stripe * 50.0 + i)
            return win

        fold = windowed_merge_all([part(0), part(1), part(2)])
        assert fold.n == 150
        assert fold._clock == 149.0
        view = fold.window_query(window=75.0)
        assert view.bounds.lower <= 75 + 1 <= view.bounds.upper


class TestFaultPath:
    def test_retry_recovers_lost_partials(self):
        reference = windowed_merge_all(_parts())
        recovered = windowed_merge_all(
            _parts(),
            fault_model=FaultModel(loss=0.4, rng=7),
            retry_policy=RetryPolicy(max_attempts=20),
        )
        assert _state(reference) == _state(recovered)

    def test_ledger_deduplicates_replayed_merges(self):
        reference = windowed_merge_all(_parts())
        deduped = windowed_merge_all(
            _parts(),
            fault_model=FaultModel(duplicate=1.0, rng=3),
            ledger_factory=MergeLedger,
        )
        assert _state(reference) == _state(deduped)

    def test_total_loss_raises_instead_of_partial_answer(self):
        # the accumulator slot is born in the final stitch merge; if
        # deliveries never succeed there is no output at all — the fold
        # surfaces an error rather than a silently partial window
        from repro.core import ParameterError

        with pytest.raises(ParameterError, match="0 outputs"):
            windowed_merge_all(
                _parts(),
                fault_model=FaultModel(loss=1.0, rng=1),
                retry_policy=RetryPolicy(max_attempts=2),
            )
