"""Unit tests for the exponential-histogram bucket machinery.

Covers the :mod:`repro.windows.eh` primitives directly (Bucket
lifecycle, canonicalize's per-level cap invariant and deterministic
cascade order, sorted_union's stable span ordering) plus the resulting
space bound through the combinator: a window of mass W is held in
``O(cap * log W)`` buckets.
"""

from __future__ import annotations

import math

from repro.frequency import ExactCounter
from repro.windows.eh import Bucket, canonicalize, sorted_union


def _bucket(items, level=0, start=0, end=1):
    return Bucket(ExactCounter().extend(items), len(items), level, start, end)


def _total_counts(buckets):
    merged = ExactCounter()
    merged.merge_many([b.summary for b in buckets])
    return merged


class TestBucket:
    def test_absorb_merges_mass_level_and_span(self):
        a = _bucket([1, 2], level=3, start=4, end=6)
        b = _bucket([2, 3], level=3, start=2, end=4)
        a.absorb(b)
        assert a.count == 4
        assert a.level == 4
        assert (a.start, a.end) == (2, 6)
        assert a.summary.estimate(2) == 2
        assert a.summary.n == 4

    def test_clone_is_deep(self):
        original = _bucket([1, 1, 2], start=0, end=3)
        copy = original.clone()
        copy.summary.update(9)
        copy.count += 1
        assert original.count == 3
        assert original.summary.estimate(9) == 0
        assert copy.summary.estimate(9) == 1

    def test_clone_offset_shifts_span(self):
        copy = _bucket([1], start=5, end=8).clone(offset=100)
        assert (copy.start, copy.end) == (105, 108)

    def test_to_dict_round_trips_span_metadata(self):
        row = _bucket([1, 2], level=2, start=3, end=7).to_dict()
        assert row["level"] == 2
        assert row["count"] == 2
        assert (row["start"], row["end"]) == (3, 7)
        assert ExactCounter.from_dict(row["state"]).n == 2


class TestCanonicalize:
    def test_enforces_per_level_cap(self):
        for n in (1, 3, 7, 13, 40):
            buckets = [_bucket([i], start=i, end=i + 1) for i in range(n)]
            cap = 3
            canonicalize(buckets, cap)
            per_level = {}
            for b in buckets:
                per_level[b.level] = per_level.get(b.level, 0) + 1
            assert all(count <= cap for count in per_level.values()), per_level

    def test_preserves_mass_and_content(self):
        buckets = [_bucket([i % 5], start=i, end=i + 1) for i in range(23)]
        canonicalize(buckets, 2)
        assert sum(b.count for b in buckets) == 23
        merged = _total_counts(buckets)
        assert merged.n == 23
        assert merged.estimate(0) == 5

    def test_merges_two_oldest_of_overflowing_level(self):
        # cap=2, three level-0 buckets: the two OLDEST merge up, the
        # newest survives at level 0
        buckets = [_bucket([i], start=i, end=i + 1) for i in range(3)]
        canonicalize(buckets, 2)
        assert [b.level for b in buckets] == [1, 0]
        assert (buckets[0].start, buckets[0].end) == (0, 2)
        assert (buckets[1].start, buckets[1].end) == (2, 3)

    def test_overflow_cascades_to_coarser_levels(self):
        # cap=2: 7 unit buckets canonicalize into the EH ladder
        # {level 2: one 4-bucket, level 1: one 2-bucket, level 0: one}
        buckets = [_bucket([i], start=i, end=i + 1) for i in range(7)]
        canonicalize(buckets, 2)
        assert sorted((b.level, b.count) for b in buckets) == [
            (0, 1),
            (1, 2),
            (2, 4),
        ]

    def test_deterministic(self):
        def run():
            buckets = [
                _bucket([i % 3], start=i, end=i + 1) for i in range(17)
            ]
            canonicalize(buckets, 3)
            return [(b.level, b.count, b.start, b.end) for b in buckets]

        assert run() == run()

    def test_noop_when_within_cap(self):
        buckets = [_bucket([i], start=i, end=i + 1) for i in range(3)]
        before = [(b.level, b.start, b.end) for b in buckets]
        canonicalize(buckets, 5)
        assert [(b.level, b.start, b.end) for b in buckets] == before


class TestSortedUnion:
    def test_interleaves_by_span(self):
        mine = [_bucket([0], start=s, end=s + 1) for s in (0, 4, 8)]
        theirs = [_bucket([1], start=s, end=s + 1) for s in (2, 6)]
        union = sorted_union(mine, theirs)
        assert [b.start for b in union] == [0, 2, 4, 6, 8]

    def test_ties_break_toward_mine(self):
        mine = [_bucket([0], start=1, end=2)]
        theirs = [_bucket([1], start=1, end=2)]
        union = sorted_union(mine, theirs)
        assert union[0] is mine[0]
        assert union[1] is theirs[0]

    def test_empty_sides(self):
        only = [_bucket([0], start=0, end=1)]
        assert sorted_union(only, []) == only
        assert sorted_union([], only) == only
        assert sorted_union([], []) == []


class TestSpaceBound:
    def test_bucket_count_is_logarithmic_in_mass(self):
        # the EH guarantee surfaced through the combinator: cap buckets
        # per level, O(log W) levels
        win = ExactCounter().windowed(eps=0.25, granularity=1)
        for i in range(4096):
            win.update(i)
        levels = math.log2(4096) + 2
        assert win.num_buckets <= win.cap * levels
        assert win.n == 4096

    def test_cap_tracks_eps(self):
        for eps, expected in ((1.0, 2), (0.5, 3), (0.25, 5), (0.1, 11)):
            win = ExactCounter().windowed(eps=eps)
            assert win.cap == expected
