"""Tests for the minimum-area oriented bounding box."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import min_area_bounding_box


def _box_contains(corners: np.ndarray, points: np.ndarray, tol=1e-9) -> bool:
    u = corners[1] - corners[0]
    v = corners[3] - corners[0]
    for p in points:
        d = p - corners[0]
        a = d @ u / (u @ u) if u @ u else 0.0
        b = d @ v / (v @ v) if v @ v else 0.0
        if not (-tol <= a <= 1 + tol and -tol <= b <= 1 + tol):
            return False
    return True


class TestMinAreaBoundingBox:
    def test_axis_aligned_rectangle(self):
        pts = np.array([[0, 0], [4, 0], [4, 1], [0, 1]], dtype=float)
        corners, area = min_area_bounding_box(pts)
        assert area == pytest.approx(4.0)
        assert _box_contains(corners, pts)

    def test_rotated_rectangle_recovered(self):
        base = np.array([[0, 0], [4, 0], [4, 1], [0, 1]], dtype=float)
        theta = 0.7
        rot = np.array(
            [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
        )
        pts = base @ rot.T
        corners, area = min_area_bounding_box(pts)
        assert area == pytest.approx(4.0, rel=1e-9)
        assert _box_contains(corners, pts)

    def test_box_tighter_than_axis_aligned(self):
        rng = np.random.default_rng(1)
        theta = rng.random(500) * 2 * np.pi
        pts = np.stack([3 * np.cos(theta), 0.5 * np.sin(theta)], axis=1)
        rot = np.array([[np.cos(0.5), -np.sin(0.5)], [np.sin(0.5), np.cos(0.5)]])
        pts = pts @ rot.T
        _corners, area = min_area_bounding_box(pts)
        aabb_area = np.prod(pts.max(axis=0) - pts.min(axis=0))
        assert area < aabb_area

    def test_contains_all_points(self):
        rng = np.random.default_rng(2)
        pts = rng.normal(size=(200, 2))
        corners, _area = min_area_bounding_box(pts)
        assert _box_contains(corners, pts, tol=1e-6)

    def test_degenerate_collinear(self):
        pts = np.array([[0, 0], [1, 1], [2, 2]], dtype=float)
        corners, area = min_area_bounding_box(pts)
        assert area == 0.0
        assert corners.shape == (4, 2)

    def test_single_point(self):
        corners, area = min_area_bounding_box(np.array([[3.0, 4.0]]))
        assert area == 0.0
        assert np.allclose(corners, [3.0, 4.0])

    def test_kernel_box_approximates_full_box(self):
        """eps-kernel preserves the min bounding box up to O(eps)."""
        from repro.kernels import EpsKernel

        rng = np.random.default_rng(3)
        theta = rng.random(3_000) * 2 * np.pi
        radius = np.sqrt(rng.random(3_000))
        pts = np.stack(
            [4 * radius * np.cos(theta), radius * np.sin(theta)], axis=1
        )
        kernel = EpsKernel(0.02).extend_points(pts)
        _c_full, area_full = min_area_bounding_box(pts)
        _c_kern, area_kern = min_area_bounding_box(kernel.kernel_points())
        assert area_kern <= area_full + 1e-9
        assert area_kern >= (1 - 0.15) * area_full
