"""Unit and behaviour tests for the mergeable eps-kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EmptySummaryError, MergeError, ParameterError, merge_all
from repro.kernels import (
    EpsKernel,
    compute_eps_kernel,
    diameter,
    directional_width,
    fat_frame,
    grid_directions,
)


def _cloud(seed: int, n: int = 2_000) -> np.ndarray:
    rng = np.random.default_rng(seed)
    theta = rng.random(n) * 2 * np.pi
    radius = np.sqrt(rng.random(n))
    return np.stack(
        [2.0 * radius * np.cos(theta), 0.7 * radius * np.sin(theta)], axis=1
    )


DIRECTIONS = [
    np.array([np.cos(a), np.sin(a)]) for a in np.linspace(0, np.pi, 37)
]


class TestGridDirections:
    def test_unit_vectors(self):
        dirs = grid_directions(8)
        assert np.allclose(np.linalg.norm(dirs, axis=1), 1.0)

    def test_count(self):
        assert grid_directions(5).shape == (5, 2)

    def test_invalid_m(self):
        with pytest.raises(ParameterError):
            grid_directions(0)


class TestEpsKernel:
    def test_invalid_epsilon(self):
        with pytest.raises(ParameterError):
            EpsKernel(0.0)

    def test_kernel_is_subset_of_input(self):
        pts = _cloud(1)
        kernel = EpsKernel(0.1).extend_points(pts)
        stored = kernel.kernel_points()
        point_set = {tuple(p) for p in pts}
        assert all(tuple(p) in point_set for p in stored)

    def test_size_bounded_by_direction_grid(self):
        kernel = EpsKernel(0.05).extend_points(_cloud(2))
        assert kernel.size() <= 2 * kernel.m

    def test_width_never_overestimates(self):
        pts = _cloud(3)
        kernel = EpsKernel(0.1).extend_points(pts)
        for u in DIRECTIONS:
            assert kernel.width(u) <= directional_width(pts, u) + 1e-12

    def test_width_error_within_eps_diameter(self):
        eps = 0.05
        pts = _cloud(4)
        kernel = EpsKernel(eps).extend_points(pts)
        diam = diameter(pts)
        for u in DIRECTIONS:
            assert directional_width(pts, u) - kernel.width(u) <= eps * diam

    def test_update_one_by_one_equals_bulk(self):
        pts = _cloud(5, n=200)
        a = EpsKernel(0.1)
        for p in pts:
            a.update(p)
        b = EpsKernel(0.1).extend_points(pts)
        assert np.allclose(
            a.kernel_points(), b.kernel_points()
        )

    def test_empty_width_raises(self):
        with pytest.raises(EmptySummaryError):
            EpsKernel(0.1).width([1, 0])

    def test_bad_point_shape_raises(self):
        with pytest.raises(ParameterError):
            EpsKernel(0.1).update([1.0, 2.0, 3.0])


class TestMerge:
    def test_merge_equals_sequential(self):
        """Slot-wise max is exact: merged kernel == one-shot kernel."""
        pts = _cloud(6)
        whole = EpsKernel(0.05).extend_points(pts)
        parts = [
            EpsKernel(0.05).extend_points(chunk)
            for chunk in np.array_split(pts, 7)
        ]
        merged = merge_all(parts, strategy="random", rng=1)
        assert merged.n == len(pts)
        assert np.allclose(merged.kernel_points(), whole.kernel_points())

    def test_guarantee_survives_deep_chains(self):
        eps = 0.05
        pts = _cloud(7)
        parts = [
            EpsKernel(eps).extend_points(chunk)
            for chunk in np.array_split(pts, 50)
        ]
        merged = merge_all(parts, strategy="chain")
        diam = diameter(pts)
        for u in DIRECTIONS:
            assert directional_width(pts, u) - merged.width(u) <= eps * diam

    def test_epsilon_mismatch_refused(self):
        with pytest.raises(MergeError, match="epsilon mismatch"):
            EpsKernel(0.1).merge(EpsKernel(0.2))

    def test_frame_presence_mismatch_refused(self):
        frame = fat_frame(_cloud(8))
        with pytest.raises(MergeError, match="frame mismatch"):
            EpsKernel(0.1).merge(EpsKernel(0.1, frame=frame))

    def test_different_frames_refused(self):
        f1 = fat_frame(_cloud(9))
        f2 = fat_frame(_cloud(10) * 3)
        with pytest.raises(MergeError, match="different reference frames"):
            EpsKernel(0.1, frame=f1).merge(EpsKernel(0.1, frame=f2))

    def test_shared_frame_gives_relative_guarantee_on_thin_data(self):
        """With a fat reference frame, thin point sets keep a *relative*
        width guarantee in the frame's space."""
        eps = 0.05
        rng = np.random.default_rng(11)
        theta = rng.random(3_000) * 2 * np.pi
        pts = np.stack([5 * np.cos(theta), 0.05 * np.sin(theta)], axis=1)
        frame = fat_frame(pts)
        parts = [
            EpsKernel(eps, frame=frame).extend_points(c)
            for c in np.array_split(pts, 6)
        ]
        merged = merge_all(parts, strategy="tree")
        from repro.kernels import apply_frame

        normalized = apply_frame(pts, frame)
        normalized_kernel = apply_frame(merged.kernel_points(), frame)
        for u in DIRECTIONS:
            full = directional_width(normalized, u)
            approx = directional_width(normalized_kernel, u)
            assert approx >= (1 - 4 * eps) * full


class TestOfflineKernel:
    def test_relative_guarantee(self):
        eps = 0.05
        pts = _cloud(12)
        kernel = compute_eps_kernel(pts, eps)
        for u in DIRECTIONS:
            assert directional_width(kernel, u) >= (1 - 2 * eps) * directional_width(
                pts, u
            )

    def test_kernel_is_small(self):
        kernel = compute_eps_kernel(_cloud(13, n=5_000), 0.05)
        assert len(kernel) <= 60
