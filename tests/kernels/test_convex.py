"""Unit tests for the 2-D geometry substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ParameterError
from repro.kernels import (
    apply_frame,
    convex_hull,
    diameter,
    directional_width,
    farthest_pair,
    fat_frame,
)


class TestConvexHull:
    def test_square(self):
        pts = np.array([[0, 0], [1, 0], [1, 1], [0, 1], [0.5, 0.5]], dtype=float)
        hull = convex_hull(pts)
        assert len(hull) == 4
        assert {tuple(p) for p in hull} == {(0, 0), (1, 0), (1, 1), (0, 1)}

    def test_collinear_returns_extremes(self):
        pts = np.array([[0, 0], [1, 1], [2, 2], [3, 3]], dtype=float)
        hull = convex_hull(pts)
        assert len(hull) == 2
        assert {tuple(p) for p in hull} == {(0, 0), (3, 3)}

    def test_single_point(self):
        hull = convex_hull(np.array([[2.0, 3.0]]))
        assert hull.shape == (1, 2)

    def test_duplicates_removed(self):
        pts = np.array([[0, 0], [0, 0], [1, 0], [0, 1]], dtype=float)
        assert len(convex_hull(pts)) == 3

    def test_hull_contains_extreme_in_every_direction(self):
        rng = np.random.default_rng(1)
        pts = rng.normal(size=(300, 2))
        hull = convex_hull(pts)
        for angle in np.linspace(0, 2 * np.pi, 16, endpoint=False):
            u = np.array([np.cos(angle), np.sin(angle)])
            assert (hull @ u).max() == pytest.approx((pts @ u).max())

    def test_empty_raises(self):
        with pytest.raises(ParameterError):
            convex_hull(np.empty((0, 2)))

    def test_bad_shape_raises(self):
        with pytest.raises(ParameterError):
            convex_hull(np.zeros((3, 3)))


class TestWidthAndDiameter:
    def test_unit_square_width(self):
        pts = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        assert directional_width(pts, [1, 0]) == pytest.approx(1.0)
        assert directional_width(pts, [1, 1]) == pytest.approx(np.sqrt(2))

    def test_direction_normalized(self):
        pts = np.array([[0, 0], [2, 0]], dtype=float)
        assert directional_width(pts, [10, 0]) == pytest.approx(2.0)

    def test_zero_direction_raises(self):
        with pytest.raises(ParameterError):
            directional_width(np.zeros((2, 2)), [0, 0])

    def test_diameter_of_segment(self):
        pts = np.array([[0, 0], [3, 4], [1, 1]], dtype=float)
        assert diameter(pts) == pytest.approx(5.0)

    def test_farthest_pair_endpoints(self):
        pts = np.array([[0, 0], [3, 4], [1, 1]], dtype=float)
        a, b = farthest_pair(pts)
        assert {tuple(a), tuple(b)} == {(0.0, 0.0), (3.0, 4.0)}

    def test_farthest_pair_single_point(self):
        a, b = farthest_pair(np.array([[1.0, 2.0]]))
        assert np.allclose(a, b)


class TestFatFrame:
    def test_image_is_bounded_and_fat(self):
        rng = np.random.default_rng(2)
        # an extremely thin ellipse
        theta = rng.random(500) * 2 * np.pi
        pts = np.stack([10 * np.cos(theta), 0.01 * np.sin(theta)], axis=1)
        frame = fat_frame(pts)
        image = apply_frame(pts, frame)
        extent = image.max(axis=0) - image.min(axis=0)
        assert extent.max() <= 2.5
        assert extent.min() >= 1.0  # both axes stretched to ~2

    def test_identity_on_unit_square_shape(self):
        pts = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        image = apply_frame(pts, fat_frame(pts))
        extent = image.max(axis=0) - image.min(axis=0)
        assert extent == pytest.approx([2.0, 2.0], abs=1e-9)

    def test_degenerate_single_point(self):
        frame = fat_frame(np.array([[5.0, 5.0]]))
        image = apply_frame(np.array([[5.0, 5.0]]), frame)
        assert np.isfinite(image).all()
