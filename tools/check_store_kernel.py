#!/usr/bin/env python3
"""Dead-duplication guard for the chain-kernel refactor.

The storage kernel (``repro.store.chain`` + ``repro.store.common`` +
the kind-generic ``repro.store.persistence``) exists so that the flat
store and the cube share ONE implementation of epoch chains, dyadic
roll-up compilation, window/slack resolution, and the snapshot/WAL
lifecycle.  This script fails CI if a known pre-refactor duplicate
creeps back in:

* ``_CubeGroup`` — the cube's private chain type that the kernel's
  :class:`~repro.store.chain.EpochChain` replaced;
* cube-local persistence (``def save_cube`` / ``def load_cube`` /
  ``def _cube_from_manifest`` outside ``persistence.py``) — both kinds
  go through the one kind-tagged container format;
* per-store roll-up compilers (``def _compile_rollup`` /
  ``def _rollup_steps`` outside ``chain.py``) — dyadic roll-up plans
  come from :func:`~repro.store.chain.compile_rollup_steps`;
* per-store window/slack arithmetic (``def _resolve_window`` outside
  ``chain.py``) — the PR 9 slack rule lives only in
  :func:`~repro.store.chain.resolve_window`.

Run from the repo root: ``python tools/check_store_kernel.py``.
Exit status 0 = clean, 1 = duplicates found (each printed as
``path:line: pattern``).
"""

from __future__ import annotations

import pathlib
import re
import sys

STORE_PKG = pathlib.Path("src/repro/store")

# pattern -> module (relative to src/repro/store) allowed to define it;
# None means the name must not appear as a definition anywhere
BANNED_DEFINITIONS = {
    r"class _CubeGroup\b": None,
    r"def save_cube\b": "persistence.py",
    r"def load_cube\b": "persistence.py",
    r"def save_store\b": "persistence.py",
    r"def load_store\b": "persistence.py",
    r"def _cube_from_manifest\b": None,
    r"def _store_from_manifest\b": "persistence.py",
    r"def _compile_rollup\w*\b": None,
    r"def _rollup_steps\b": None,
    r"def compile_rollup_steps\b": "chain.py",
    r"def _resolve_window\b": None,
    r"def resolve_window\b": "chain.py",
}


def main() -> int:
    if not STORE_PKG.is_dir():
        print(f"error: {STORE_PKG} not found (run from the repo root)")
        return 2
    violations = []
    for path in sorted(STORE_PKG.rglob("*.py")):
        rel = path.relative_to(STORE_PKG).as_posix()
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for pattern, allowed in BANNED_DEFINITIONS.items():
                if re.match(r"\s*" + pattern, line) and rel != allowed:
                    violations.append((path.as_posix(), lineno, pattern, allowed))
    for path, lineno, pattern, allowed in violations:
        where = f"only {allowed} may define this" if allowed else "kernel owns this"
        print(f"{path}:{lineno}: duplicated kernel surface {pattern!r} ({where})")
    if violations:
        print(
            f"\n{len(violations)} duplication(s): the chain kernel "
            "(chain.py/common.py/persistence.py) is the single home for "
            "roll-up compilation, window slack, and store persistence."
        )
        return 1
    print("store kernel clean: no duplicated chain/persistence surface")
    return 0


if __name__ == "__main__":
    sys.exit(main())
