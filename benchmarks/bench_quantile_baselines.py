"""E8: why mergeability is nontrivial — baseline degradation.

Three baselines against the fully mergeable summary, all at (roughly)
matched space, merged over m sorted shards along a chain (the
adversarial layout + topology):

- GK: deterministic, excellent sequentially, but every merge generation
  adds fresh error — error grows with m;
- MRL deterministic halving: bias accumulates across levels instead of
  cancelling;
- bottom-k random sample: mergeable, but needs Theta(1/eps^2) samples
  for the same guarantee — at matched space its error is much larger.

Run:  python benchmarks/bench_quantile_baselines.py
      pytest benchmarks/bench_quantile_baselines.py --benchmark-only
"""

from __future__ import annotations

import numpy as np

from repro import BottomKSample, GKQuantiles, MergeableQuantiles, MRLQuantiles
from repro.analysis import print_table, rank_errors
from repro.core import merge_chain
from repro.workloads import value_stream

N = 2**16
EPS = 0.01


def _merged(factory, shards):
    return merge_chain([factory(i).extend(s) for i, s in enumerate(shards)])


def run_experiment():
    data = value_stream(N, "uniform", rng=1)
    probes = np.quantile(data, np.linspace(0.02, 0.98, 49))
    reference = MergeableQuantiles.from_epsilon(EPS, rng=0).extend(data)
    size_budget = reference.size()
    rows = []
    for m in (4, 16, 64):
        shards = np.array_split(np.sort(data), m)  # adversarial placement
        candidates = {
            "mergeable (Sec 3.2)": lambda i: MergeableQuantiles.from_epsilon(
                EPS, rng=10 + i
            ),
            "GK (one-way merge)": lambda i: GKQuantiles(EPS),
            "MRL (deterministic)": lambda i: MRLQuantiles(
                max(16, size_budget // 8)
            ),
            "bottom-k sample": lambda i: BottomKSample(size_budget, rng=50 + i),
        }
        for name, factory in candidates.items():
            merged = _merged(factory, shards)
            report = rank_errors(merged, data, probes)
            rows.append([
                m, name, merged.size(),
                f"{report.max_error:.0f}", f"{report.mean_error:.0f}",
                f"{EPS * N:.0f}",
                "OK" if report.max_error <= EPS * N else "exceeds",
            ])
    print_table(
        ["shards m", "summary", "size", "max rank err", "mean rank err",
         "eps*n", "within eps*n?"],
        rows,
        caption=f"E8: chain merge over m sorted shards, n={N}, eps={EPS} — "
                "only the mergeable summary stays flat as m grows",
    )
    return rows


def test_e8_gk_chain_merge(benchmark):
    data = value_stream(2**13, "uniform", rng=2)
    shards = np.array_split(np.sort(data), 16)

    def run():
        return merge_chain([GKQuantiles(EPS).extend(s) for s in shards])

    merged = benchmark(run)
    assert merged.n == len(data)


def test_e8_sample_chain_merge(benchmark):
    data = value_stream(2**13, "uniform", rng=3)
    shards = np.array_split(np.sort(data), 16)

    def run():
        return merge_chain(
            [BottomKSample(1_000, rng=60 + i).extend(s) for i, s in enumerate(shards)]
        )

    merged = benchmark(run)
    assert merged.size() == 1_000


if __name__ == "__main__":
    run_experiment()
