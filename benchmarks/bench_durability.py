"""E25: durability benchmarks — WAL overhead, replay, incremental saves.

Measures what the crash-safety layer costs and what it buys:

1. WAL ingest overhead vs the plain in-memory path: fsync-per-batch
   (``fsync_every=1``, every returned ingest is durable), batched
   fsync (``fsync_every=8``), and log-only (``fsync_every=0``);
2. recovery: WAL replay rate over the last snapshot, across tail
   lengths (how long a crashed store takes to reconverge);
3. snapshot commit: the atomic first save vs an incremental re-save
   (committed segments are immutable and skipped) — time and the
   fraction of containers actually rewritten.

Standalone (no pytest-benchmark), writes the JSON artifact for CI::

    PYTHONPATH=src python benchmarks/bench_durability.py --quick \
        --out BENCH_durability.json

CI regression gate — machine-independent ratios (WAL efficiency vs the
plain path, replay rate vs ingest rate, incremental-save speedup)
checked against the snapshot, exit non-zero past a 2x regression::

    PYTHONPATH=src python benchmarks/bench_durability.py --quick \
        --out BENCH_durability.json \
        --check benchmarks/BENCH_durability_snapshot.json
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.store import SegmentStore
from repro.workloads import zipf_stream


def _batches(n_batches: int, batch_size: int):
    items = zipf_stream(n_batches * batch_size, alpha=1.2, universe=2_000, rng=3)
    out = []
    for b in range(n_batches):
        chunk = items[b * batch_size : (b + 1) * batch_size]
        records = [{"value": int(v)} for v in chunk]
        keys = [float(b) + i / batch_size for i in range(batch_size)]
        out.append((records, keys))
    return out


def _fresh_store(width: float = 1.0) -> SegmentStore:
    store = SegmentStore(width=width, codec="binary.v1")
    store.add_member("hot", "misra_gries", field="value", k=32)
    return store


def _time_best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ---------------------------------------------------------------------------
# section 1: WAL ingest overhead
# ---------------------------------------------------------------------------

def bench_wal_overhead(n_batches: int, batch_size: int, repeats: int, workdir: Path) -> dict:
    batches = _batches(n_batches, batch_size)

    def run_plain():
        store = _fresh_store()
        for records, keys in batches:
            store.ingest(records, keys)

    def run_wal(fsync_every: int, tag: str):
        def inner():
            wal_dir = workdir / f"wal-{tag}"
            shutil.rmtree(wal_dir, ignore_errors=True)
            store = _fresh_store()
            store.enable_wal(str(wal_dir), fsync_every=fsync_every)
            for records, keys in batches:
                store.ingest(records, keys)
            store.wal.close()
        return inner

    plain = _time_best_of(run_plain, repeats)
    unbuffered = _time_best_of(run_wal(1, "unbuffered"), repeats)
    batched = _time_best_of(run_wal(8, "batched"), repeats)
    log_only = _time_best_of(run_wal(0, "logonly"), repeats)
    rate = n_batches / plain
    return {
        "n_batches": int(n_batches),
        "batch_size": int(batch_size),
        "plain_seconds": plain,
        "plain_batches_per_second": rate,
        "wal_unbuffered_seconds": unbuffered,
        "wal_batched_seconds": batched,
        "wal_log_only_seconds": log_only,
        "unbuffered_overhead": unbuffered / plain,
        "batched_overhead": batched / plain,
        "log_only_overhead": log_only / plain,
    }


# ---------------------------------------------------------------------------
# section 2: recovery replay rate vs WAL tail length
# ---------------------------------------------------------------------------

def bench_replay(n_batches: int, batch_size: int, workdir: Path) -> list:
    rows = []
    for tail in (n_batches // 4, n_batches // 2, n_batches):
        target = workdir / f"replay-{tail}"
        shutil.rmtree(target, ignore_errors=True)
        store = _fresh_store()
        store.ingest([{"value": 0}], [0.0])
        store.save(target)  # tiny committed snapshot
        durable = SegmentStore.open_durable(target, fsync_every=0)
        for records, keys in _batches(tail, batch_size):
            durable.ingest(records, keys)
        durable.wal.close()

        t0 = time.perf_counter()
        recovered = SegmentStore.open(target)  # replays the whole tail
        seconds = time.perf_counter() - t0
        assert recovered.wal_seq == tail
        rows.append(
            {
                "wal_batches": int(tail),
                "replay_seconds": seconds,
                "replay_batches_per_second": tail / seconds,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# section 3: atomic snapshot commit — full vs incremental
# ---------------------------------------------------------------------------

def bench_save(n_batches: int, batch_size: int, repeats: int, workdir: Path) -> dict:
    store = _fresh_store()
    for records, keys in _batches(n_batches, batch_size):
        store.ingest(records, keys)
    store.compact()

    full_dir = workdir / "save-full"

    def full_save():
        shutil.rmtree(full_dir, ignore_errors=True)
        store._snapshot = 0  # forget the previous commit: stage everything
        store.save(full_dir)

    full_seconds = _time_best_of(full_save, repeats)
    first = store.save(full_dir)

    # touch one epoch, then re-save: only the replaced base segment and
    # the invalidated roll-up chain should be rewritten
    store.ingest([{"value": 1}], [0.5])
    second = store.save(full_dir)
    incr_seconds = _time_best_of(lambda: store.save(full_dir), max(repeats, 3))
    return {
        "segments": int(first["segments"]),
        "full_save_seconds": full_seconds,
        "full_save_written": int(first["segments"]),
        "incremental_save_seconds": incr_seconds,
        "incremental_save_written": int(second["written"]),
        "incremental_written_fraction": second["written"] / max(1, second["segments"]),
        "incremental_speedup": full_seconds / incr_seconds,
    }


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def run_report(args) -> dict:
    workdir = Path(tempfile.mkdtemp(prefix="bench-durability-"))
    try:
        return {
            "experiment": "E25-durability",
            "quick": bool(args.quick),
            "n_batches": int(args.batches),
            "batch_size": int(args.batch_size),
            "repeats": int(args.repeats),
            "sections": {
                "wal": bench_wal_overhead(
                    args.batches, args.batch_size, args.repeats, workdir
                ),
                "replay": bench_replay(args.batches, args.batch_size, workdir),
                "save": bench_save(
                    args.batches, args.batch_size, args.repeats, workdir
                ),
            },
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _smoke_metrics(report: dict) -> dict:
    """Machine-independent bigger-is-better ratios gated vs the snapshot."""
    sections = report["sections"]
    wal = sections["wal"]
    replay_rate = sections["replay"][-1]["replay_batches_per_second"]
    return {
        # throughput kept relative to the plain path (1.0 = free WAL)
        "wal_batched_efficiency": 1.0 / wal["batched_overhead"],
        "wal_unbuffered_efficiency": 1.0 / wal["unbuffered_overhead"],
        # replay should reconverge about as fast as plain ingest
        "replay_vs_ingest": replay_rate / wal["plain_batches_per_second"],
        "incremental_save_speedup": sections["save"]["incremental_speedup"],
    }


def check_against_snapshot(report: dict, snapshot_path: str, factor: float = 2.0):
    """Return regression messages (empty = pass); ratios only, no seconds."""
    with open(snapshot_path) as handle:
        snapshot = json.load(handle)
    current = _smoke_metrics(report)
    baseline = _smoke_metrics(snapshot)
    failures = []
    for key, base in baseline.items():
        if key not in current:
            failures.append(f"missing smoke metric {key!r}")
            continue
        now = current[key]
        if now < base / factor:
            failures.append(
                f"{key}: {now:.2f}x vs snapshot {base:.2f}x "
                f"(fell below 1/{factor:.0f} of snapshot)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="durability benchmarks (E25)")
    parser.add_argument("--batches", type=int, default=256)
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick", action="store_true",
        help="small streams, one repeat (CI smoke run)",
    )
    parser.add_argument("--out", default="BENCH_durability.json")
    parser.add_argument(
        "--check", default=None, metavar="SNAPSHOT",
        help="compare smoke ratios against this snapshot JSON; exit 1 on "
             "a >2x regression",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.batches, args.batch_size, args.repeats = 48, 512, 1

    report = run_report(args)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)

    wal = report["sections"]["wal"]
    print(
        f"wal: {wal['n_batches']} batches of {wal['batch_size']} — "
        f"plain {wal['plain_seconds']*1e3:.1f} ms, "
        f"fsync-every-batch {wal['unbuffered_overhead']:.2f}x, "
        f"batched(8) {wal['batched_overhead']:.2f}x, "
        f"log-only {wal['log_only_overhead']:.2f}x"
    )
    for row in report["sections"]["replay"]:
        print(
            f"replay: {row['wal_batches']:>4} batches in "
            f"{row['replay_seconds']*1e3:8.2f} ms "
            f"({row['replay_batches_per_second']:,.0f} batches/s)"
        )
    save = report["sections"]["save"]
    print(
        f"save: full {save['full_save_seconds']*1e3:.1f} ms "
        f"({save['segments']} containers) vs incremental "
        f"{save['incremental_save_seconds']*1e3:.1f} ms "
        f"({save['incremental_save_written']} rewritten, "
        f"{save['incremental_speedup']:.1f}x faster)"
    )
    print(f"wrote {args.out}")

    if args.check:
        failures = check_against_snapshot(report, args.check)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"snapshot check against {args.check}: ok")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
