"""E22 (operational): wall-time scaling of builds, merges and queries.

Complements the per-operation timings of E11 with *scaling shape*:
build time should grow linearly in n (amortized O(log k) per update for
MG), merge time should be independent of n (it touches only summary
state), and query time should depend only on summary size.  Printed as
measured seconds across a sweep so regressions in asymptotics — not
just constants — are visible.

Run:  python benchmarks/bench_scalability.py
      pytest benchmarks/bench_scalability.py --benchmark-only
"""

from __future__ import annotations

import time

from repro import MergeableQuantiles, MisraGries
from repro.analysis import print_table
from repro.workloads import value_stream, zipf_stream


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_experiment():
    rows = []
    for exponent in (14, 16, 18):
        n = 2**exponent
        items = zipf_stream(n, alpha=1.2, universe=10**6, rng=exponent).tolist()
        values = value_stream(n, "uniform", rng=exponent)

        mg_a, build_mg = _timed(lambda: MisraGries(256).extend(items[: n // 2]))
        mg_b, _ = _timed(lambda: MisraGries(256).extend(items[n // 2 :]))
        _, merge_mg = _timed(lambda: mg_a.merge(mg_b))
        _, query_mg = _timed(lambda: [mg_a.estimate(i) for i in range(100)])

        mq_a, build_mq = _timed(
            lambda: MergeableQuantiles(256, rng=1).extend(values[: n // 2])
        )
        mq_b, _ = _timed(
            lambda: MergeableQuantiles(256, rng=2).extend(values[n // 2 :])
        )
        _, merge_mq = _timed(lambda: mq_a.merge(mq_b))
        _, query_mq = _timed(lambda: mq_a.quantile(0.99))

        rows.append([
            f"2^{exponent}",
            f"{build_mg:.3f}", f"{merge_mg * 1000:.2f}", f"{query_mg * 1000:.2f}",
            f"{build_mq:.3f}", f"{merge_mq * 1000:.2f}", f"{query_mq * 1000:.2f}",
        ])
    print_table(
        ["n", "MG build (s, half n)", "MG merge (ms)", "MG 100 queries (ms)",
         "MQ build (s, half n)", "MQ merge (ms)", "MQ quantile (ms)"],
        rows,
        caption="E22: scaling shape — builds linear in n; merges and "
                "queries depend only on summary size (k=256 / s=256)",
    )
    return rows


def test_e22_mg_build_scales(benchmark):
    items = zipf_stream(2**14, rng=1).tolist()
    summary = benchmark(lambda: MisraGries(256).extend(items))
    assert summary.n == len(items)


def test_e22_merge_independent_of_n(benchmark):
    import copy

    big = MisraGries(64).extend(zipf_stream(2**16, rng=2).tolist())
    small = MisraGries(64).extend(zipf_stream(2**10, rng=3).tolist())
    merged = benchmark(lambda: copy.deepcopy(big).merge(small))
    assert merged.size() <= 64


if __name__ == "__main__":
    run_experiment()
