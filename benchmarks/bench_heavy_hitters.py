"""E4: heavy-hitter quality after merging — MG/SS vs linear sketches.

Compares the deterministic mergeable summaries (MG, SS) against the
trivially mergeable linear sketches (CountMin, CountSketch) at matched
*space*: precision/recall of phi-heavy-hitter reporting and per-item
error, over skew levels.  The paper's point: MG achieves eps with 1/eps
counters deterministically; CountMin needs (e/eps)*log(1/delta) cells
plus shared randomness for the same additive error.

Run:  python benchmarks/bench_heavy_hitters.py
      pytest benchmarks/bench_heavy_hitters.py --benchmark-only
"""

from __future__ import annotations

from collections import Counter

from repro import CountMin, CountSketch, MisraGries, SpaceSaving
from repro.analysis import frequency_errors, print_table
from repro.core import merge_all
from repro.frequency import evaluate_heavy_hitters
from repro.workloads import chunk_evenly, zipf_stream

N = 2**17
SHARDS = 16
PHI = 0.01
K = 128  # MG/SS budget; sketches get the same cell count


def _candidates():
    return {
        "MisraGries(k=128)": lambda i: MisraGries(K),
        "SpaceSaving(k=128)": lambda i: SpaceSaving(K),
        # same space: 128 cells = 32 wide x 4 deep
        "CountMin(32x4)": lambda i: CountMin(32, 4, seed=99),
        "CountSketch(25x5)": lambda i: CountSketch(25, 5, seed=99),
    }


class _SketchHH:
    """Heavy-hitter shim for linear sketches (scan the true candidates).

    Linear sketches answer point queries only; real deployments pair
    them with a candidate-tracking structure.  For benchmarking we give
    them the *generous* option of scanning all distinct items, so their
    reported quality is an upper bound.
    """

    def __init__(self, sketch, items):
        self._sketch = sketch
        self._items = items
        self.n = sketch.n

    def heavy_hitters(self, phi):
        threshold = phi * self.n
        return {
            item: self._sketch.estimate(item)
            for item in self._items
            if self._sketch.estimate(item) >= threshold
        }


def run_experiment():
    rows = []
    for alpha in (0.8, 1.1, 1.5):
        data = zipf_stream(N, alpha=alpha, universe=100_000, rng=int(alpha * 10))
        truth = Counter(data.tolist())
        shards = chunk_evenly(data, SHARDS)
        for name, factory in _candidates().items():
            parts = [factory(i).extend(s.tolist()) for i, s in enumerate(shards)]
            merged = merge_all(parts, strategy="tree")
            if isinstance(merged, (CountMin, CountSketch)):
                hh_view = _SketchHH(merged, list(truth))
            else:
                hh_view = merged
            report = evaluate_heavy_hitters(hh_view, truth, PHI)
            err = frequency_errors(merged, truth)
            rows.append([
                f"zipf({alpha})", name, merged.size(),
                f"{report.recall:.3f}", f"{report.precision:.3f}",
                err.max_error, f"{err.mean_error:.1f}",
            ])
    print_table(
        ["workload", "summary", "size", "recall", "precision",
         "max err", "mean err"],
        rows,
        caption=f"E4: phi={PHI} heavy hitters after {SHARDS}-way tree merge, n={N}",
    )
    return rows


def test_e4_mg_heavy_hitter_query(benchmark):
    data = zipf_stream(2**15, rng=20)
    mg = MisraGries(K).extend(data.tolist())
    result = benchmark(lambda: mg.heavy_hitters(PHI))
    assert isinstance(result, dict)


def test_e4_countmin_point_queries(benchmark):
    data = zipf_stream(2**15, rng=21)
    cm = CountMin(32, 4, seed=1).extend(data.tolist())
    probes = list(range(100))

    def query_all():
        return [cm.estimate(p) for p in probes]

    estimates = benchmark(query_all)
    assert len(estimates) == 100


if __name__ == "__main__":
    run_experiment()
