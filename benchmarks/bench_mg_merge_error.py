"""E2 (Theorem, Section 2): MG merge error <= n/(k+1) under any topology.

Sweeps k and the merge topology over Zipf workloads, measuring the
worst per-item estimation error at the aggregation root and comparing
it against the theorem's bound — the merged bound must match the
single-stream bound (that is the definition of mergeability).

Run:  python benchmarks/bench_mg_merge_error.py
      pytest benchmarks/bench_mg_merge_error.py --benchmark-only
"""

from __future__ import annotations

from collections import Counter

from repro import MisraGries
from repro.analysis import frequency_errors, mg_error_bound, print_table
from repro.distributed import (
    ContiguousPartitioner,
    build_topology,
    run_aggregation,
)
from repro.workloads import adversarial_mg_stream, zipf_stream

N = 2**18
NODES = 32
TOPOLOGIES = ("balanced", "chain", "star", "random")


def run_experiment():
    rows = []
    workloads = {
        "zipf(1.1)": zipf_stream(N, alpha=1.1, universe=50_000, rng=1),
        "zipf(1.5)": zipf_stream(N, alpha=1.5, universe=50_000, rng=2),
        "adversarial": adversarial_mg_stream(N, k=64, rng=3),
    }
    for workload_name, data in workloads.items():
        truth = Counter(data.tolist())
        for k in (16, 64, 256):
            sequential = MisraGries(k).extend(data.tolist())
            seq_error = frequency_errors(sequential, truth).max_error
            for topology in TOPOLOGIES:
                schedule = build_topology(topology, NODES, rng=4)
                result = run_aggregation(
                    data, ContiguousPartitioner(), lambda: MisraGries(k), schedule
                )
                report = frequency_errors(result.summary, truth)
                bound = mg_error_bound(k, N)
                rows.append([
                    workload_name, k, topology, schedule.depth,
                    report.max_error, seq_error, f"{bound:.0f}",
                    "OK" if report.max_error <= bound else "VIOLATED",
                ])
    print_table(
        ["workload", "k", "topology", "depth", "merged max err",
         "sequential max err", "bound n/(k+1)", "verdict"],
        rows,
        caption=f"E2: Misra-Gries merge error vs topology, n={N}, {NODES} nodes",
    )
    return rows


def test_e2_mg_merge_chain(benchmark):
    data = zipf_stream(2**15, rng=5)
    parts_data = [data[i::8] for i in range(8)]

    def merge_chain_run():
        parts = [MisraGries(64).extend(c) for c in parts_data]
        acc = parts[0]
        for p in parts[1:]:
            acc = acc.merge(p)
        return acc

    merged = benchmark(merge_chain_run)
    assert merged.deduction <= mg_error_bound(64, len(data))


def test_e2_mg_single_merge_operation(benchmark):
    data = zipf_stream(2**15, rng=6)
    a = MisraGries(256).extend(data[: 2**14].tolist())
    b = MisraGries(256).extend(data[2**14 :].tolist())

    def one_merge():
        import copy

        return copy.deepcopy(a).merge(b)

    merged = benchmark(one_merge)
    assert merged.n == len(data)


if __name__ == "__main__":
    run_experiment()
