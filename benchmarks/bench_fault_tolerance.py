"""E20: fault tolerance — answer quality and bytes vs loss rate.

Sweeps message-loss rates (with duplicates riding along) over the same
balanced aggregation tree under two delivery stacks:

- **naive** — fire-and-forget, no retries, no dedup: the configuration
  every pre-fault-tolerance deployment actually runs;
- **retry+ledger** — exponential-backoff redelivery plus per-parent
  merge ledgers (exactly-once merges).

For each configuration we report coverage (fraction of records the root
summary actually covers), bytes shipped (retries are not free), and the
observed error of the root answer **measured against the full-data
ground truth** — for Misra-Gries (heavy hitters) and KLL (quantiles).
The punchline mirrors the fault-tolerant-runtime design: retries buy
coverage back at a modest byte premium, the ledger keeps duplicates
from double-counting, and whatever loss remains is *reported* as
degraded coverage instead of silently shipping a wrong answer.

Run:  python benchmarks/bench_fault_tolerance.py
      pytest benchmarks/bench_fault_tolerance.py --benchmark-only
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro import KLLQuantiles, MisraGries
from repro.analysis import print_table
from repro.distributed import (
    ContiguousPartitioner,
    FaultModel,
    RetryPolicy,
    balanced_tree,
    run_aggregation,
)
from repro.workloads import zipf_stream

N = 2**15
NODES = 32
MG_K = 256
KLL_K = 128

NAIVE = RetryPolicy(max_attempts=1)
RESILIENT = RetryPolicy(max_attempts=8)


def _mg_error(result, truth, top_items) -> float:
    return max(
        abs(result.summary.estimate(item) - truth[item]) for item in top_items
    )


def _kll_error(result, data_sorted) -> float:
    n = len(data_sorted)
    worst = 0.0
    for q in (0.1, 0.25, 0.5, 0.75, 0.9):
        x = data_sorted[int(q * (n - 1))]
        true_rank = float(np.searchsorted(data_sorted, x, side="right"))
        worst = max(worst, abs(result.summary.rank(x) - true_rank))
    return worst


def run_experiment():
    freq_data = zipf_stream(N, alpha=1.2, universe=10_000, rng=1)
    truth = Counter(freq_data.tolist())
    top_items = [item for item, _ in truth.most_common(20)]
    quant_data = np.random.default_rng(2).random(N)
    quant_sorted = np.sort(quant_data)

    rows = []
    for loss in (0.0, 0.1, 0.3, 0.5):
        for label, policy, exactly_once in (
            ("naive", NAIVE, False),
            ("retry+ledger", RESILIENT, True),
        ):
            faults = FaultModel(loss=loss, duplicate=0.2, rng=3)
            mg = run_aggregation(
                freq_data, ContiguousPartitioner(), lambda: MisraGries(MG_K),
                balanced_tree(NODES), serialize=True, fault_model=faults,
                retry_policy=policy, exactly_once=exactly_once,
            )
            faults = FaultModel(loss=loss, duplicate=0.2, rng=3)
            kll = run_aggregation(
                quant_data, ContiguousPartitioner(),
                lambda: KLLQuantiles(KLL_K, rng=4),
                balanced_tree(NODES), serialize=True, fault_model=faults,
                retry_policy=policy, exactly_once=exactly_once,
            )
            rows.append([
                f"{loss:.0%}", label,
                f"{mg.coverage:.0%}",
                f"{mg.bytes_shipped}",
                f"{_mg_error(mg, truth, top_items)}",
                f"{kll.coverage:.0%}",
                f"{kll.bytes_shipped}",
                f"{_kll_error(kll, quant_sorted):.0f}",
            ])
    print_table(
        ["loss", "delivery", "MG cover", "MG bytes", "MG max err",
         "KLL cover", "KLL bytes", "KLL max rank err"],
        rows,
        caption=(
            f"E20: loss sweep with 20% duplicates, n={N}, {NODES} nodes — "
            "retry+ledger restores coverage (and with it the full-data "
            "guarantee) for a modest byte premium; naive delivery both "
            "drops subtrees and double-counts duplicates"
        ),
    )
    return rows


def test_e20_resilient_beats_naive_under_loss(benchmark):
    data = zipf_stream(2**13, alpha=1.2, universe=2_000, rng=5)

    def run():
        return run_aggregation(
            data, ContiguousPartitioner(), lambda: MisraGries(64),
            balanced_tree(8), serialize=True,
            fault_model=FaultModel(loss=0.3, duplicate=0.2, rng=6),
            retry_policy=RESILIENT,
        )

    result = benchmark(run)
    assert result.summary.n == result.delivered_records
    assert result.fault_stats.duplicates_merged == 0


def test_e20_naive_underdelivers(benchmark):
    data = zipf_stream(2**13, alpha=1.2, universe=2_000, rng=7)

    def run():
        return run_aggregation(
            data, ContiguousPartitioner(), lambda: MisraGries(64),
            balanced_tree(8), serialize=True,
            fault_model=FaultModel(loss=0.5, rng=8),
            retry_policy=NAIVE, exactly_once=False,
        )

    result = benchmark(run)
    assert result.coverage < 1.0


if __name__ == "__main__":
    run_experiment()
