"""E3 (Lemmas 2.2/2.3): SpaceSaving mergeability via the MG isomorphism.

Two claims are validated:

1. the isomorphism itself — classic SpaceSaving(k) state equals the
   Misra-Gries(k-1) state shifted by the SS minimum, measured over many
   streams;
2. merged SpaceSaving keeps the n/k over-estimation bound under every
   topology, exactly like MG.

Run:  python benchmarks/bench_ss_merge_error.py
      pytest benchmarks/bench_ss_merge_error.py --benchmark-only
"""

from __future__ import annotations

from collections import Counter

from repro import SpaceSaving
from repro.analysis import frequency_errors, print_table, ss_error_bound
from repro.distributed import (
    ContiguousPartitioner,
    build_topology,
    run_aggregation,
)
from repro.frequency import verify_isomorphism
from repro.workloads import uniform_stream, zipf_stream

N = 2**17
NODES = 32


def run_experiment():
    # claim 1: the isomorphism
    iso_rows = []
    for seed in range(5):
        stream = zipf_stream(20_000, alpha=1.3, universe=2_000, rng=seed).tolist()
        for k in (8, 32, 128):
            report = verify_isomorphism(stream, k)
            iso_rows.append([
                seed, k, report["shift"],
                "exact" if report["matches"] else "ties-only",
                "OK" if report["bounds_consistent"] else "VIOLATED",
            ])
    print_table(
        ["stream seed", "k", "SS min shift", "state match", "bound consistency"],
        iso_rows,
        caption="E3a: MG(k-1) vs classic SS(k) isomorphism (Lemma 2.2/2.3)",
    )

    # claim 2: merged SS error
    rows = []
    workloads = {
        "zipf(1.2)": zipf_stream(N, alpha=1.2, universe=50_000, rng=7),
        "uniform": uniform_stream(N, universe=5_000, rng=8),
    }
    for workload_name, data in workloads.items():
        truth = Counter(data.tolist())
        for k in (16, 64, 256):
            for topology in ("balanced", "chain", "random"):
                schedule = build_topology(topology, NODES, rng=9)
                result = run_aggregation(
                    data, ContiguousPartitioner(), lambda: SpaceSaving(k), schedule
                )
                report = frequency_errors(result.summary, truth)
                bound = ss_error_bound(k, N)
                rows.append([
                    workload_name, k, topology, report.max_error,
                    f"{bound:.0f}",
                    "OK" if report.max_error <= bound else "VIOLATED",
                ])
    print_table(
        ["workload", "k", "topology", "merged max err", "bound n/k", "verdict"],
        rows,
        caption=f"E3b: SpaceSaving merge error vs topology, n={N}, {NODES} nodes",
    )
    return rows


def test_e3_ss_build(benchmark):
    data = zipf_stream(2**14, rng=10).tolist()
    result = benchmark(lambda: SpaceSaving(128).extend(data))
    assert result.n == len(data)


def test_e3_ss_merge_tree(benchmark):
    data = zipf_stream(2**15, rng=11)
    chunks = [data[i::16] for i in range(16)]

    def run():
        from repro.core import merge_tree

        return merge_tree([SpaceSaving(64).extend(c) for c in chunks])

    merged = benchmark(run)
    assert merged.deduction <= ss_error_bound(64, len(data))


if __name__ == "__main__":
    run_experiment()
