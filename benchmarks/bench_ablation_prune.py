"""E12 (ablation / extension): MG prune rules — paper vs Cafaro closed form.

The Agarwal et al. prune subtracts the (k+1)-st largest combined value
from every counter; Cafaro, Tempesta & Pulimeno later showed a
closed-form prune (emulating a Frequent run over the combined counters)
with the same per-item worst case but lower *total* error.  Both rules
preserve the inductive mergeability invariant (the test suite proves
this property-based); this experiment quantifies the total-error gap on
realistic workloads and checks the per-item bound holds for both.

This is an extension benchmark — the PODS'12 claims only cover the
"paper" rule.

Run:  python benchmarks/bench_ablation_prune.py
      pytest benchmarks/bench_ablation_prune.py --benchmark-only
"""

from __future__ import annotations

from collections import Counter

from repro import MisraGries
from repro.analysis import mg_error_bound, print_table
from repro.core import merge_all
from repro.workloads import chunk_evenly, uniform_stream, zipf_stream

N = 2**17
SHARDS = 32


def _total_error(summary, truth):
    return sum(count - summary.estimate(item) for item, count in truth.items())


def run_experiment():
    workloads = {
        "zipf(0.8)": zipf_stream(N, alpha=0.8, universe=50_000, rng=1),
        "zipf(1.2)": zipf_stream(N, alpha=1.2, universe=50_000, rng=2),
        "uniform": uniform_stream(N, universe=5_000, rng=3),
    }
    rows = []
    for workload_name, data in workloads.items():
        truth = Counter(data.tolist())
        shards = chunk_evenly(data, SHARDS)
        for k in (32, 128):
            results = {}
            for rule in ("paper", "cafaro"):
                parts = [
                    MisraGries(k, prune_rule=rule).extend(s.tolist())
                    for s in shards
                ]
                merged = merge_all(parts, strategy="tree")
                results[rule] = {
                    "total": _total_error(merged, truth),
                    "max": max(
                        count - merged.estimate(item)
                        for item, count in truth.items()
                    ),
                }
            bound = mg_error_bound(k, N)
            improvement = (
                1 - results["cafaro"]["total"] / results["paper"]["total"]
                if results["paper"]["total"]
                else 0.0
            )
            rows.append([
                workload_name, k,
                results["paper"]["total"], results["cafaro"]["total"],
                f"{improvement:+.1%}",
                results["paper"]["max"], results["cafaro"]["max"],
                f"{bound:.0f}",
            ])
    print_table(
        ["workload", "k", "total err (paper)", "total err (cafaro)",
         "cafaro improvement", "max err (paper)", "max err (cafaro)",
         "per-item bound"],
        rows,
        caption=f"E12: prune-rule ablation, n={N}, {SHARDS}-way tree merge — "
                "both rules respect the per-item bound; cafaro lowers total error",
    )
    return rows


def run_merge_only_experiment():
    """Isolate the prune step: merge summaries over *disjoint* universes.

    When the operands share no items the combine always overflows and
    the prune rule alone determines the outcome (the regime of the
    Cafaro et al. analysis).  Reported: total survivor error of a
    single 2-way merge, per rule, over Zipf-shaped counter values.
    """
    import numpy as np

    rng = np.random.default_rng(9)
    rows = []
    for k in (16, 64, 256):
        for shape in ("zipf", "near-uniform"):
            paper_total = cafaro_total = 0
            trials = 20
            for _ in range(trials):
                if shape == "zipf":
                    values = (2_000 / np.arange(1, 2 * k + 1) ** 1.2).astype(int) + 1
                else:
                    values = rng.integers(90, 110, size=2 * k)
                rng.shuffle(values)
                left = {("L", i): int(v) for i, v in enumerate(values[:k])}
                right = {("R", i): int(v) for i, v in enumerate(values[k:])}
                combined = {**left, **right}
                from repro.frequency import prune_cafaro, prune_paper

                for rule, acc in (("paper", "paper_total"), ("cafaro", "cafaro_total")):
                    fn = prune_paper if rule == "paper" else prune_cafaro
                    pruned, _cut = fn(combined, k)
                    err = sum(
                        combined[item] - pruned.get(item, 0)
                        for item in pruned
                    )
                    if rule == "paper":
                        paper_total += err
                    else:
                        cafaro_total += err
            improvement = 1 - cafaro_total / paper_total if paper_total else 0.0
            rows.append([
                shape, k, paper_total // trials, cafaro_total // trials,
                f"{improvement:+.1%}",
            ])
    print_table(
        ["counter shape", "k", "survivor err (paper)", "survivor err (cafaro)",
         "cafaro improvement"],
        rows,
        caption="E12b: prune-only comparison on disjoint-universe merges "
                "(avg of 20 trials) — the regime where the closed form wins",
    )
    return rows


def test_e12_paper_prune_merge(benchmark):
    data = zipf_stream(2**14, rng=4)
    chunks = chunk_evenly(data, 16)

    def run():
        parts = [MisraGries(64, prune_rule="paper").extend(c.tolist()) for c in chunks]
        return merge_all(parts, strategy="tree")

    merged = benchmark(run)
    assert merged.deduction <= mg_error_bound(64, len(data))


def test_e12_cafaro_prune_merge(benchmark):
    data = zipf_stream(2**14, rng=4)
    chunks = chunk_evenly(data, 16)

    def run():
        parts = [
            MisraGries(64, prune_rule="cafaro").extend(c.tolist()) for c in chunks
        ]
        return merge_all(parts, strategy="tree")

    merged = benchmark(run)
    assert merged.deduction <= mg_error_bound(64, len(data))


if __name__ == "__main__":
    run_experiment()
    run_merge_only_experiment()
