"""E15: communication cost — serialized bytes shipped per aggregation.

The operational payoff of mergeable summaries is that every node ships
a *bounded* payload regardless of its data volume.  This experiment
runs the distributed simulator with wire-format serialization on and
reports total and per-hop bytes for each summary family versus shipping
exact state, across data scales — the exact counter's cost grows with
the data, the summaries' costs stay flat.

Run:  python benchmarks/bench_communication.py
      pytest benchmarks/bench_communication.py --benchmark-only
"""

from __future__ import annotations

from repro import (
    CountMin,
    ExactCounter,
    HyperLogLog,
    KMinValues,
    MergeableQuantiles,
    MisraGries,
)
from repro.analysis import print_table
from repro.core import dumps
from repro.distributed import ContiguousPartitioner, balanced_tree, run_aggregation
from repro.workloads import zipf_stream

NODES = 16


def run_experiment():
    rows = []
    for exponent in (14, 16, 18):
        n = 2**exponent
        data = zipf_stream(n, alpha=1.1, universe=10**6, rng=exponent)
        candidates = {
            "MisraGries(k=128)": lambda: MisraGries(128),
            "CountMin(128x4)": lambda: CountMin(128, 4, seed=1),
            "MergeableQuantiles(s=256)": lambda: MergeableQuantiles(256, rng=2),
            "KMV(k=512)": lambda: KMinValues(512, seed=3),
            "HLL(p=12)": lambda: HyperLogLog(p=12, seed=4),
            "ExactCounter (no summary)": ExactCounter,
        }
        for name, factory in candidates.items():
            result = run_aggregation(
                data,
                ContiguousPartitioner(),
                factory,
                balanced_tree(NODES),
                serialize=True,
            )
            rows.append([
                f"2^{exponent}", name,
                result.bytes_shipped,
                result.bytes_shipped // result.merges,
                result.summary.size(),
            ])
    print_table(
        ["n", "summary", "total bytes shipped", "bytes / hop", "root size"],
        rows,
        caption=f"E15: communication cost, {NODES}-node balanced tree, "
                "wire format on every hop — summaries stay flat, exact grows with n",
    )
    return rows


def test_e15_serialize_mg(benchmark):
    mg = MisraGries(256).extend(zipf_stream(2**14, rng=1).tolist())
    payload = benchmark(lambda: dumps(mg))
    assert len(payload) > 0


def test_e15_aggregation_with_wire_format(benchmark):
    data = zipf_stream(2**13, rng=2)

    def run():
        return run_aggregation(
            data,
            ContiguousPartitioner(),
            lambda: MisraGries(64),
            balanced_tree(8),
            serialize=True,
        )

    result = benchmark(run)
    assert result.bytes_shipped > 0


if __name__ == "__main__":
    run_experiment()
