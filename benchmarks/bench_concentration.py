"""E18: do the "with high probability" claims hold? (Monte-Carlo)

The randomized summaries promise error <= eps*n with probability
1 - delta.  This experiment runs 60 independent seeded trials per
configuration and reports the empirical error distribution and failure
rate, which must stay below delta (the paper's probabilistic claims,
actually measured rather than taken on faith).

Run:  python benchmarks/bench_concentration.py
      pytest benchmarks/bench_concentration.py --benchmark-only
"""

from __future__ import annotations

import numpy as np

from repro import BottomKSample, KLLQuantiles, MergeableQuantiles
from repro.analysis import print_table, run_trials
from repro.core import merge_random_tree
from repro.workloads import value_stream

N = 2**14
TRIALS = 60
EPS = 0.02
DELTA = 0.05


def _quantile_trial_factory(summary_factory):
    data = value_stream(N, "uniform", rng=123)
    data_sorted = np.sort(data)
    probes = np.quantile(data, np.linspace(0.05, 0.95, 19))
    shards = np.array_split(data_sorted, 16)

    def trial(seed: int) -> float:
        parts = [
            summary_factory(seed * 1000 + i).extend(shard)
            for i, shard in enumerate(shards)
        ]
        merged = merge_random_tree(parts, rng=seed)
        return max(
            abs(
                merged.rank(x)
                - float(np.searchsorted(data_sorted, x, side="right"))
            )
            for x in probes
        )

    return trial


def run_experiment():
    candidates = {
        "MergeableQuantiles (Sec 3.2)": lambda seed: MergeableQuantiles.from_epsilon(
            EPS, delta=DELTA, rng=seed
        ),
        "KLL": lambda seed: KLLQuantiles.from_epsilon(EPS, delta=DELTA, rng=seed),
        "BottomKSample (folklore)": lambda seed: BottomKSample.from_epsilon(
            EPS, rng=seed
        ),
    }
    rows = []
    for name, factory in candidates.items():
        stats = run_trials(
            _quantile_trial_factory(factory),
            seeds=range(TRIALS),
            threshold=EPS * N,
        )
        rows.append([
            name, stats.trials,
            f"{stats.mean:.0f}", f"{stats.p90:.0f}", f"{stats.maximum:.0f}",
            f"{EPS * N:.0f}",
            f"{stats.exceed_rate:.3f}", DELTA,
            "OK" if stats.within(DELTA) else "VIOLATED",
        ])
    print_table(
        ["summary", "trials", "mean err", "p90 err", "max err", "eps*n",
         "failure rate", "delta", "verdict"],
        rows,
        caption=f"E18: concentration over {TRIALS} independent trials, "
                f"n={N}, eps={EPS}, delta={DELTA}, 16 sorted shards, "
                "random merge trees",
    )
    return rows


def test_e18_one_trial(benchmark):
    trial = _quantile_trial_factory(
        lambda seed: MergeableQuantiles.from_epsilon(EPS, rng=seed)
    )
    error = benchmark(lambda: trial(7))
    assert error >= 0


def test_e18_run_trials_overhead(benchmark):
    stats = benchmark(
        lambda: run_trials(lambda seed: float(seed % 3), seeds=range(100), threshold=1.5)
    )
    assert stats.trials == 100
    assert 0 < stats.exceed_rate < 1


if __name__ == "__main__":
    run_experiment()
