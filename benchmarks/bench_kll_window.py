"""E16/E17 (extensions): KLL vs Section 3.2, and sliding-window MG.

E16 — KLL (Karnin-Lang-Liberty 2016) is the asymptotically optimal
descendant of the paper's Section 3.2 logarithmic-method summary: same
random-halving primitive, geometrically decaying level capacities.
This experiment measures the size/error frontier of both at matched
eps, sequentially and after adversarial chain merges — showing where
the line of work the paper started ended up.

E17 — sliding-window heavy hitters via time-bucketed MG summaries (the
paper's other future-work direction): validates the MG guarantee over
arbitrary query windows, the bounded space, and bucket-aligned
mergeability across nodes.

Run:  python benchmarks/bench_kll_window.py
      pytest benchmarks/bench_kll_window.py --benchmark-only
"""

from __future__ import annotations

import numpy as np

from repro import KLLQuantiles, MergeableQuantiles, WindowedMisraGries
from repro.analysis import print_table, rank_errors
from repro.core import merge_all, merge_chain
from repro.workloads import value_stream, zipf_stream

N = 2**16


def run_kll_experiment():
    rows = []
    data = value_stream(N, "uniform", rng=1)
    probes = np.quantile(data, np.linspace(0.02, 0.98, 49))
    for eps in (0.02, 0.01, 0.005):
        for name, factory in (
            ("Sec 3.2 log-method", lambda i: MergeableQuantiles.from_epsilon(eps, rng=10 + i)),
            ("KLL", lambda i: KLLQuantiles.from_epsilon(eps, rng=40 + i)),
        ):
            sequential = factory(0).extend(data)
            seq_report = rank_errors(sequential, data, probes)
            shards = np.array_split(np.sort(data), 32)
            merged = merge_chain(
                [factory(1 + i).extend(s) for i, s in enumerate(shards)]
            )
            merged_report = rank_errors(merged, data, probes)
            rows.append([
                eps, name, sequential.size(), merged.size(),
                f"{seq_report.max_error:.0f}", f"{merged_report.max_error:.0f}",
                f"{eps * N:.0f}",
                "OK" if max(seq_report.max_error, merged_report.max_error)
                <= eps * N else "VIOLATED",
            ])
    print_table(
        ["eps", "summary", "size (seq)", "size (merged)", "max err (seq)",
         "max err (merged)", "eps*n", "verdict"],
        rows,
        caption=f"E16: KLL vs the paper's Sec 3.2 structure, n={N}, "
                "32-way chain merge over sorted shards",
    )
    return rows


def run_window_experiment():
    k = 64
    bucket_width, num_buckets = 100.0, 20
    rows = []
    noise = zipf_stream(N, alpha=1.1, universe=5_000, rng=9) + 10
    for nodes in (1, 8):
        # two-phase traffic: item 0 hot early, item 1 hot late
        events = []
        for t in range(N):
            hot = 0 if t < N // 2 else 1
            item = hot if t % 2 == 0 else int(noise[t])
            events.append((item, float(t) * 2000.0 / N))
        parts = []
        bounds = np.linspace(0, len(events), nodes + 1).astype(int)
        for i in range(nodes):
            part = WindowedMisraGries(k, bucket_width, num_buckets)
            for item, t in events[bounds[i] : bounds[i + 1]]:
                part.observe(item, t)
            parts.append(part)
        merged = merge_all(parts, strategy="tree")
        recent = merged.query(window_end=1999.9, window_length=500.0)
        early_hh = 0 in recent.heavy_hitters(0.2)
        late_hh = 1 in recent.heavy_hitters(0.2)
        rows.append([
            nodes, merged.size(), k * num_buckets,
            recent.n, f"{recent.error_bound:.0f}",
            "yes" if late_hh else "NO", "no" if not early_hh else "YES(stale)",
        ])
    print_table(
        ["nodes", "stored counters", "space bound k*buckets", "window n",
         "window bound n/(k+1)", "late item reported", "stale item reported"],
        rows,
        caption="E17: sliding-window MG (bucketed), 500s window over "
                "2000s of two-phase traffic — only the in-window item reports",
    )
    return rows


def test_e16_kll_build(benchmark):
    data = value_stream(2**14, "uniform", rng=2)
    kll = benchmark(lambda: KLLQuantiles(256, rng=3).extend(data))
    assert kll.n == len(data)


def test_e16_kll_merge(benchmark):
    import copy

    data = value_stream(2**14, "uniform", rng=4)
    a = KLLQuantiles(256, rng=5).extend(data[: 2**13])
    b = KLLQuantiles(256, rng=6).extend(data[2**13 :])
    merged = benchmark(lambda: copy.deepcopy(a).merge(b))
    assert merged.n == len(data)


def test_e17_windowed_observe(benchmark):
    items = zipf_stream(5_000, rng=7).tolist()

    def run():
        w = WindowedMisraGries(32, bucket_width=10.0, num_buckets=10)
        for t, item in enumerate(items):
            w.observe(item, float(t) / 50)
        return w

    w = benchmark(run)
    assert w.size() <= 32 * 10


def test_e17_window_query(benchmark):
    w = WindowedMisraGries(32, bucket_width=10.0, num_buckets=10)
    items = zipf_stream(5_000, rng=8).tolist()
    for t, item in enumerate(items):
        w.observe(item, float(t) / 50)
    result = benchmark(lambda: w.query(window_end=99.0, window_length=50.0))
    assert result.n > 0


if __name__ == "__main__":
    run_kll_experiment()
    run_window_experiment()
