"""E11: update / merge / query throughput of every summary family.

Pure pytest-benchmark timings at fixed, representative parameters;
this is the operational cost table a practitioner reads before
deploying, and the regression guard for the implementations' amortized
complexity claims (MG updates are O(log k) amortized, kernel updates
O(1/sqrt(eps)), etc.).

The batched-ingestion section compares per-item ``update`` loops against
the vectorized ``update_batch`` fast paths.

Run:  pytest benchmarks/bench_throughput.py --benchmark-only

Standalone (no pytest-benchmark needed), writes a JSON trajectory
artifact for CI::

    PYTHONPATH=src python benchmarks/bench_throughput.py \
        --out BENCH_throughput.json
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
import time

import numpy as np
import pytest

from repro import (
    BottomKSample,
    CountMin,
    EpsApproximation,
    EpsKernel,
    GKQuantiles,
    HyperLogLog,
    KLLQuantiles,
    MergeableQuantiles,
    MisraGries,
    SpaceSaving,
)
from repro.workloads import value_stream, zipf_stream

N_ITEMS = 2**15
ITEMS = zipf_stream(N_ITEMS, alpha=1.2, universe=20_000, rng=1).tolist()
ITEMS_ARRAY = np.asarray(ITEMS, dtype=np.int64)
VALUES = value_stream(N_ITEMS, "uniform", rng=2)
POINTS = np.random.default_rng(3).random((2**13, 2))


# ---------------------------------------------------------------------------
# update throughput
# ---------------------------------------------------------------------------

def test_update_misra_gries(benchmark):
    benchmark(lambda: MisraGries(256).extend(ITEMS))


def test_update_space_saving(benchmark):
    benchmark(lambda: SpaceSaving(256).extend(ITEMS))


def test_update_count_min(benchmark):
    small = ITEMS[: 2**12]
    benchmark(lambda: CountMin(512, 4, seed=1).extend(small))


def test_update_gk(benchmark):
    benchmark(lambda: GKQuantiles(0.01).extend(VALUES))


def test_update_mergeable_quantiles(benchmark):
    benchmark(lambda: MergeableQuantiles(256, rng=4).extend(VALUES))


def test_update_bottom_k(benchmark):
    benchmark(lambda: BottomKSample(1_000, rng=5).extend(VALUES))


def test_update_eps_kernel_bulk(benchmark):
    benchmark(lambda: EpsKernel(0.01).extend_points(POINTS))


def test_update_eps_approximation(benchmark):
    benchmark(
        lambda: EpsApproximation("rectangles_2d", s=128, rng=6).extend_points(POINTS)
    )


# ---------------------------------------------------------------------------
# batched ingestion: per-item update loop vs update_batch fast path
# ---------------------------------------------------------------------------

#: name -> (factory, stream) pairs timed by the JSON artifact and the
#: pytest-benchmark entries below
BATCH_CASES = {
    "hyperloglog": (lambda: HyperLogLog(p=12, seed=1), ITEMS_ARRAY),
    "count_min": (lambda: CountMin(512, 4, seed=1), ITEMS_ARRAY),
    "kll_quantiles": (lambda: KLLQuantiles(k=200, rng=4), VALUES),
    "misra_gries": (lambda: MisraGries(256), ITEMS_ARRAY),
    "mergeable_quantiles": (lambda: MergeableQuantiles(256, rng=4), VALUES),
}


def _per_item_ingest(factory, stream):
    summary = factory()
    update = summary.update
    for item in stream:
        update(item)
    return summary


def _batched_ingest(factory, stream):
    summary = factory()
    summary.update_batch(stream)
    return summary


@pytest.mark.parametrize("name", sorted(BATCH_CASES))
def test_ingest_per_item(benchmark, name):
    factory, stream = BATCH_CASES[name]
    benchmark(_per_item_ingest, factory, stream)


@pytest.mark.parametrize("name", sorted(BATCH_CASES))
def test_ingest_batched(benchmark, name):
    factory, stream = BATCH_CASES[name]
    benchmark(_batched_ingest, factory, stream)


def _time_best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_batch_trajectory(n_items: int, repeats: int = 3) -> dict:
    """Time per-item vs batched ingestion; return the E11 artifact dict."""
    items = zipf_stream(n_items, alpha=1.2, universe=20_000, rng=1)
    values = value_stream(n_items, "uniform", rng=2)
    cases = {
        "hyperloglog": (lambda: HyperLogLog(p=12, seed=1), items),
        "count_min": (lambda: CountMin(512, 4, seed=1), items),
        "count_sketch": (
            lambda: __import__("repro").CountSketch(512, 5, seed=1),
            items,
        ),
        "kll_quantiles": (lambda: KLLQuantiles(k=200, rng=4), values),
        "misra_gries": (lambda: MisraGries(256), items),
        "space_saving": (lambda: SpaceSaving(256), items),
        "mergeable_quantiles": (lambda: MergeableQuantiles(256, rng=4), values),
        "bottom_k_sample": (lambda: BottomKSample(1_000, rng=5), values),
    }
    trajectory = []
    for name, (factory, stream) in cases.items():
        per_item = _time_best_of(lambda: _per_item_ingest(factory, stream), repeats)
        batched = _time_best_of(lambda: _batched_ingest(factory, stream), repeats)
        trajectory.append(
            {
                "summary": name,
                "n_items": int(n_items),
                "per_item_seconds": per_item,
                "batched_seconds": batched,
                "per_item_items_per_sec": n_items / per_item,
                "batched_items_per_sec": n_items / batched,
                "speedup": per_item / batched,
            }
        )
    return {
        "experiment": "E11-batched-ingestion",
        "n_items": int(n_items),
        "repeats": int(repeats),
        "trajectory": trajectory,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="per-item vs batched ingestion throughput"
    )
    parser.add_argument("--items", type=int, default=N_ITEMS)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small stream, one repeat (CI smoke run)",
    )
    parser.add_argument("--out", default="BENCH_throughput.json")
    args = parser.parse_args(argv)
    if args.quick:
        args.items, args.repeats = 2**12, 1
    report = run_batch_trajectory(args.items, args.repeats)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
    for row in report["trajectory"]:
        print(
            f"{row['summary']:>22}: per-item {row['per_item_seconds']*1e3:8.1f} ms"
            f"  batched {row['batched_seconds']*1e3:8.1f} ms"
            f"  speedup {row['speedup']:6.1f}x"
        )
    print(f"wrote {args.out}")
    return 0


# ---------------------------------------------------------------------------
# merge throughput
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def mg_pair():
    a = MisraGries(256).extend(ITEMS[: N_ITEMS // 2])
    b = MisraGries(256).extend(ITEMS[N_ITEMS // 2 :])
    return a, b


def test_merge_misra_gries(benchmark, mg_pair):
    a, b = mg_pair
    benchmark(lambda: copy.deepcopy(a).merge(b))


def test_merge_mergeable_quantiles(benchmark):
    a = MergeableQuantiles(256, rng=7).extend(VALUES[: N_ITEMS // 2])
    b = MergeableQuantiles(256, rng=8).extend(VALUES[N_ITEMS // 2 :])
    benchmark(lambda: copy.deepcopy(a).merge(b))


def test_merge_count_min(benchmark):
    a = CountMin(512, 4, seed=9).extend(ITEMS[: 2**12])
    b = CountMin(512, 4, seed=9).extend(ITEMS[2**12 : 2**13])
    benchmark(lambda: copy.deepcopy(a).merge(b))


def test_merge_eps_kernel(benchmark):
    a = EpsKernel(0.01).extend_points(POINTS[: len(POINTS) // 2])
    b = EpsKernel(0.01).extend_points(POINTS[len(POINTS) // 2 :])
    benchmark(lambda: copy.deepcopy(a).merge(b))


# ---------------------------------------------------------------------------
# query throughput
# ---------------------------------------------------------------------------

def test_query_mg_estimate(benchmark):
    mg = MisraGries(256).extend(ITEMS)
    benchmark(lambda: mg.estimate(0))


def test_query_quantile(benchmark):
    mq = MergeableQuantiles(256, rng=10).extend(VALUES)
    benchmark(lambda: mq.quantile(0.99))


def test_query_rank(benchmark):
    mq = MergeableQuantiles(256, rng=11).extend(VALUES)
    benchmark(lambda: mq.rank(0.5))


def test_query_serialization_roundtrip(benchmark):
    from repro.core import dumps, loads

    mg = MisraGries(256).extend(ITEMS)
    benchmark(lambda: loads(dumps(mg)))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
