"""E11: update / merge / query throughput of every summary family.

Pure pytest-benchmark timings at fixed, representative parameters;
this is the operational cost table a practitioner reads before
deploying, and the regression guard for the implementations' amortized
complexity claims (MG updates are O(log k) amortized, kernel updates
O(1/sqrt(eps)), etc.).

Run:  pytest benchmarks/bench_throughput.py --benchmark-only
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro import (
    BottomKSample,
    CountMin,
    EpsApproximation,
    EpsKernel,
    GKQuantiles,
    MergeableQuantiles,
    MisraGries,
    SpaceSaving,
)
from repro.workloads import value_stream, zipf_stream

N_ITEMS = 2**15
ITEMS = zipf_stream(N_ITEMS, alpha=1.2, universe=20_000, rng=1).tolist()
VALUES = value_stream(N_ITEMS, "uniform", rng=2)
POINTS = np.random.default_rng(3).random((2**13, 2))


# ---------------------------------------------------------------------------
# update throughput
# ---------------------------------------------------------------------------

def test_update_misra_gries(benchmark):
    benchmark(lambda: MisraGries(256).extend(ITEMS))


def test_update_space_saving(benchmark):
    benchmark(lambda: SpaceSaving(256).extend(ITEMS))


def test_update_count_min(benchmark):
    small = ITEMS[: 2**12]
    benchmark(lambda: CountMin(512, 4, seed=1).extend(small))


def test_update_gk(benchmark):
    benchmark(lambda: GKQuantiles(0.01).extend(VALUES))


def test_update_mergeable_quantiles(benchmark):
    benchmark(lambda: MergeableQuantiles(256, rng=4).extend(VALUES))


def test_update_bottom_k(benchmark):
    benchmark(lambda: BottomKSample(1_000, rng=5).extend(VALUES))


def test_update_eps_kernel_bulk(benchmark):
    benchmark(lambda: EpsKernel(0.01).extend_points(POINTS))


def test_update_eps_approximation(benchmark):
    benchmark(
        lambda: EpsApproximation("rectangles_2d", s=128, rng=6).extend_points(POINTS)
    )


# ---------------------------------------------------------------------------
# merge throughput
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def mg_pair():
    a = MisraGries(256).extend(ITEMS[: N_ITEMS // 2])
    b = MisraGries(256).extend(ITEMS[N_ITEMS // 2 :])
    return a, b


def test_merge_misra_gries(benchmark, mg_pair):
    a, b = mg_pair
    benchmark(lambda: copy.deepcopy(a).merge(b))


def test_merge_mergeable_quantiles(benchmark):
    a = MergeableQuantiles(256, rng=7).extend(VALUES[: N_ITEMS // 2])
    b = MergeableQuantiles(256, rng=8).extend(VALUES[N_ITEMS // 2 :])
    benchmark(lambda: copy.deepcopy(a).merge(b))


def test_merge_count_min(benchmark):
    a = CountMin(512, 4, seed=9).extend(ITEMS[: 2**12])
    b = CountMin(512, 4, seed=9).extend(ITEMS[2**12 : 2**13])
    benchmark(lambda: copy.deepcopy(a).merge(b))


def test_merge_eps_kernel(benchmark):
    a = EpsKernel(0.01).extend_points(POINTS[: len(POINTS) // 2])
    b = EpsKernel(0.01).extend_points(POINTS[len(POINTS) // 2 :])
    benchmark(lambda: copy.deepcopy(a).merge(b))


# ---------------------------------------------------------------------------
# query throughput
# ---------------------------------------------------------------------------

def test_query_mg_estimate(benchmark):
    mg = MisraGries(256).extend(ITEMS)
    benchmark(lambda: mg.estimate(0))


def test_query_quantile(benchmark):
    mq = MergeableQuantiles(256, rng=10).extend(VALUES)
    benchmark(lambda: mq.quantile(0.99))


def test_query_rank(benchmark):
    mq = MergeableQuantiles(256, rng=11).extend(VALUES)
    benchmark(lambda: mq.rank(0.5))


def test_query_serialization_roundtrip(benchmark):
    from repro.core import dumps, loads

    mg = MisraGries(256).extend(ITEMS)
    benchmark(lambda: loads(dumps(mg)))
