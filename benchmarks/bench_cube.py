"""E26: dimension-cube benchmarks — cell covers, latency, cell cost.

Measures what the cube buys over the flat per-key layout for
high-cardinality sub-population queries:

1. cells merged: the cube planner's cover (mask cells + dyadic time
   roll-ups) vs the naive one-merge-per-base-cell scan, on a workload
   with 10^5 distinct keys;
2. query latency p50/p99 for the grand total and a coarse ``group_by``,
   cube vs naive;
3. cell cost: a populated moment-sketch cell vs a KLL cell of
   comparable quantile utility (summary size and encoded bytes).

Standalone (no pytest-benchmark), writes the JSON artifact for CI::

    PYTHONPATH=src python benchmarks/bench_cube.py --quick --out BENCH_cube.json

CI regression gate — machine-independent ratios against the checked-in
snapshot (2x tolerance) plus the absolute acceptance floors (>= 10x
fewer cells, >= 5x lower latency)::

    PYTHONPATH=src python benchmarks/bench_cube.py --quick \
        --out BENCH_cube.json --check benchmarks/BENCH_cube_snapshot.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core import encode_summary
from repro.quantiles import KLLQuantiles, MomentSketch
from repro.store import CubeStore

COUNTRIES = 16

#: acceptance floors (ISSUE 8): enforced on every --check run, snapshot
#: or not — the cube must beat the naive per-key scan by at least this
FLOORS = {
    "total_cells_reduction": 10.0,
    "group_cells_reduction": 10.0,
    "total_query_speedup": 5.0,
    "group_query_speedup": 5.0,
}


def _build_cube(n_keys: int, n_records: int, epochs: int) -> CubeStore:
    rng = np.random.default_rng(7)
    users = rng.integers(0, n_keys, size=n_records)
    countries = rng.integers(0, COUNTRIES, size=n_records)
    values = rng.random(n_records) * 100.0
    cube = CubeStore(width=n_records / epochs, dims=("user", "country"))
    cube.add_member("lat", "moment_sketch", field="lat", k=10)
    records = [
        {"user": int(u), "country": int(c), "lat": float(v)}
        for u, c, v in zip(users, countries, values)
    ]
    cube.ingest(records)
    # materialize the masks the measured queries need: the grand total
    # and the per-country lattice (cheap: |countries| * epochs cells)
    cube.compact(
        budget=10**9,
        workload=[{"group_by": []}, {"group_by": ["country"]}],
    )
    return cube


def _latencies(fn, repeats: int) -> dict:
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return {
        "p50_seconds": float(np.percentile(samples, 50)),
        "p99_seconds": float(np.percentile(samples, 99)),
    }


def bench_queries(cube: CubeStore, repeats: int) -> dict:
    lo, hi = cube.key_span()

    def run(**kwargs):
        cube._views.clear()  # always measure a cold planner+merge pass
        return cube.query(lo, hi, **kwargs)

    total = run()
    total_naive = run(use_rollups=False)
    grouped = run(group_by=("country",))
    grouped_naive = run(group_by=("country",), use_rollups=False)
    rows = {
        "total": {
            "serving_mask": list(total.plan.serving_mask or []),
            "cells_merged": int(total.plan.cells_merged),
            "naive_cells": int(total_naive.plan.cells_merged),
            "cells_reduction": total_naive.plan.cells_merged
            / total.plan.cells_merged,
            "cube": _latencies(lambda: run(), repeats),
            "naive": _latencies(lambda: run(use_rollups=False), repeats),
        },
        "group_by_country": {
            "serving_mask": list(grouped.plan.serving_mask or []),
            "groups": len(grouped.keys()),
            "cells_merged": int(grouped.plan.cells_merged),
            "naive_cells": int(grouped_naive.plan.cells_merged),
            "cells_reduction": grouped_naive.plan.cells_merged
            / grouped.plan.cells_merged,
            "cube": _latencies(lambda: run(group_by=("country",)), repeats),
            "naive": _latencies(
                lambda: run(group_by=("country",), use_rollups=False), repeats
            ),
        },
    }
    for row in rows.values():
        row["query_speedup"] = (
            row["naive"]["p50_seconds"] / row["cube"]["p50_seconds"]
        )
    # sanity: both paths must agree on the grand total's mass
    assert total.members["lat"].n == total_naive.members["lat"].n
    return rows


def bench_cell_cost(n: int = 5_000) -> dict:
    """One populated cell per summary type, compared at rest."""
    values = np.random.default_rng(3).random(n).tolist()
    moment = MomentSketch(10).extend(values)
    kll = KLLQuantiles(128, rng=1).extend(values)
    out = {}
    for name, summary in (("moment_sketch", moment), ("kll_quantiles", kll)):
        payload = encode_summary(summary, codec="binary.v1")
        raw = payload.encode("utf-8") if isinstance(payload, str) else payload
        out[name] = {"size": int(summary.size()), "bytes": len(raw)}
    out["size_ratio"] = out["kll_quantiles"]["size"] / out["moment_sketch"]["size"]
    out["bytes_ratio"] = (
        out["kll_quantiles"]["bytes"] / out["moment_sketch"]["bytes"]
    )
    return out


def run_report(args) -> dict:
    t0 = time.perf_counter()
    cube = _build_cube(args.keys, args.records, args.epochs)
    build_seconds = time.perf_counter() - t0
    stats = cube.stats()
    return {
        "experiment": "E26-dimension-cube",
        "quick": bool(args.quick),
        "n_keys": int(args.keys),
        "n_records": int(args.records),
        "epochs": int(args.epochs),
        "repeats": int(args.repeats),
        "build_seconds": build_seconds,
        "groups": int(stats["groups"]),
        "base_cells": int(stats["base_cells"]),
        "masks": sorted(stats["masks"]),
        "sections": {
            "queries": bench_queries(cube, args.repeats),
            "cell_cost": bench_cell_cost(),
        },
    }


def _smoke_metrics(report: dict) -> dict:
    """Machine-independent ratios gated against the snapshot."""
    queries = report["sections"]["queries"]
    cost = report["sections"]["cell_cost"]
    return {
        "total_cells_reduction": queries["total"]["cells_reduction"],
        "group_cells_reduction": queries["group_by_country"]["cells_reduction"],
        "total_query_speedup": queries["total"]["query_speedup"],
        "group_query_speedup": queries["group_by_country"]["query_speedup"],
        "moment_vs_kll_bytes": cost["bytes_ratio"],
    }


def check_against_snapshot(report: dict, snapshot_path: str, factor: float = 2.0):
    """Regression messages (empty = pass): snapshot ratios + hard floors."""
    with open(snapshot_path) as handle:
        snapshot = json.load(handle)
    current = _smoke_metrics(report)
    baseline = _smoke_metrics(snapshot)
    failures = []
    for key, base in baseline.items():
        if key not in current:
            failures.append(f"missing smoke metric {key!r}")
            continue
        now = current[key]
        if now < base / factor:
            failures.append(
                f"{key}: {now:.2f}x vs snapshot {base:.2f}x "
                f"(fell below 1/{factor:.0f} of snapshot)"
            )
    for key, floor in FLOORS.items():
        if current.get(key, 0.0) < floor:
            failures.append(
                f"{key}: {current.get(key, 0.0):.2f}x is below the "
                f"acceptance floor of {floor:.0f}x"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="dimension-cube benchmarks (E26)")
    parser.add_argument("--keys", type=int, default=100_000,
                        help="distinct high-cardinality key values")
    parser.add_argument("--records", type=int, default=200_000)
    parser.add_argument("--epochs", type=int, default=64)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--quick", action="store_true",
        help="small cube, few repeats (CI smoke run)",
    )
    parser.add_argument("--out", default="BENCH_cube.json")
    parser.add_argument(
        "--check", default=None, metavar="SNAPSHOT",
        help="compare smoke ratios against this snapshot JSON and the "
             "acceptance floors; exit 1 on regression",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.keys, args.records, args.epochs, args.repeats = 10_000, 20_000, 32, 3

    report = run_report(args)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)

    print(
        f"cube: {report['n_records']} records, {report['n_keys']} distinct "
        f"keys x {COUNTRIES} countries over {report['epochs']} epochs -> "
        f"{report['groups']} groups, {report['base_cells']} base cells, "
        f"masks {report['masks']} (built in {report['build_seconds']:.1f} s)"
    )
    for label, row in report["sections"]["queries"].items():
        print(
            f"{label:>16}: {row['cells_merged']:>6} cells vs naive "
            f"{row['naive_cells']:>7} ({row['cells_reduction']:7.1f}x fewer)  "
            f"p50 {row['cube']['p50_seconds']*1e3:8.2f} ms vs "
            f"{row['naive']['p50_seconds']*1e3:8.2f} ms "
            f"({row['query_speedup']:5.1f}x)  "
            f"p99 {row['cube']['p99_seconds']*1e3:8.2f} / "
            f"{row['naive']['p99_seconds']*1e3:8.2f} ms"
        )
    cost = report["sections"]["cell_cost"]
    print(
        f"cell cost: moment_sketch {cost['moment_sketch']['bytes']} B "
        f"(size {cost['moment_sketch']['size']}) vs kll "
        f"{cost['kll_quantiles']['bytes']} B (size "
        f"{cost['kll_quantiles']['size']}) — {cost['bytes_ratio']:.1f}x smaller"
    )
    print(f"wrote {args.out}")

    if args.check:
        failures = check_against_snapshot(report, args.check)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"snapshot check against {args.check}: ok")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
