"""E24: segmented-store benchmarks — ingest, planner fan-in, query latency.

Measures the three layers added by the segment-store work:

1. keyed ingest throughput into a multi-member store (records/s) and
   the incremental cost of ``compact()``;
2. planner fan-in vs the naive scan across range widths — deterministic
   merge counts, checked against the ``2*ceil(log2 E) + 2`` bound;
3. range-query latency: pre-merged roll-ups vs naive one-merge-per-
   segment scan vs the warm LRU view cache;
4. codec payload sizes for one populated segment (json.v2 vs binary.v1).

Standalone (no pytest-benchmark), writes the JSON artifact for CI::

    PYTHONPATH=src python benchmarks/bench_store.py --quick --out BENCH_store.json

CI regression gate — compares machine-independent ratios (fan-in
reduction, rollup/cache speedups, codec compression) against the
checked-in snapshot and exits non-zero past a 2x regression::

    PYTHONPATH=src python benchmarks/bench_store.py --quick \
        --out BENCH_store.json --check benchmarks/BENCH_store_snapshot.json
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time

import numpy as np

from repro.core import encode_summary
from repro.store import SegmentStore, fan_in_bound
from repro.workloads import value_stream, zipf_stream


def _time_best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _records(n_items: int):
    items = zipf_stream(n_items, alpha=1.2, universe=5_000, rng=1)
    values = value_stream(n_items, "uniform", rng=2)
    records = [
        {"item": int(item), "value": float(value)}
        for item, value in zip(items, values)
    ]
    keys = [float(i) for i in range(n_items)]
    return records, keys


def _build_store(records, keys, epochs: int, view_capacity: int = 8) -> SegmentStore:
    store = SegmentStore(width=len(records) / epochs, view_capacity=view_capacity)
    store.add_member("hot", "misra_gries", field="item", k=64)
    store.add_member("latency", "kll_quantiles", field="value", k=128, rng=1)
    store.ingest(records, keys)
    return store


# ---------------------------------------------------------------------------
# section 1: ingest + compact throughput
# ---------------------------------------------------------------------------

def bench_ingest(n_items: int, epochs: int, repeats: int) -> dict:
    records, keys = _records(n_items)
    ingest_seconds = _time_best_of(
        lambda: _build_store(records, keys, epochs), repeats
    )
    store = _build_store(records, keys, epochs)
    compact_seconds = _time_best_of(store.compact, 1)  # first call does the work
    stats = store.stats()
    return {
        "n_records": int(n_items),
        "epochs": int(epochs),
        "ingest_seconds": ingest_seconds,
        "records_per_second": n_items / ingest_seconds,
        "compact_seconds": compact_seconds,
        "rollups_built": int(stats["rollups"]),
    }


# ---------------------------------------------------------------------------
# section 2: planner fan-in vs naive (deterministic)
# ---------------------------------------------------------------------------

def bench_planner(n_items: int, epochs: int) -> list:
    records, keys = _records(n_items)
    store = _build_store(records, keys, epochs)
    store.compact()
    width = store.width
    rows = []
    for span in (epochs // 8, epochs // 4, epochs // 2, epochs - 2):
        lo_epoch = 1
        lo, hi = lo_epoch * width, (lo_epoch + span) * width
        plan = store.plan(lo, hi)
        naive = store.plan(lo, hi, use_rollups=False)
        bound = fan_in_bound(span)
        assert plan.fan_in <= bound, (plan.fan_in, bound)
        rows.append(
            {
                "epochs_covered": int(span),
                "planner_merges": int(plan.fan_in),
                "naive_merges": int(naive.fan_in),
                "bound": int(bound),
                "reduction": naive.fan_in / plan.fan_in,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# section 3: query latency — roll-ups vs naive vs warm cache
# ---------------------------------------------------------------------------

def bench_query(n_items: int, epochs: int, repeats: int) -> dict:
    records, keys = _records(n_items)
    store = _build_store(records, keys, epochs, view_capacity=8)
    store.compact()
    width = store.width
    lo, hi = 1 * width, (epochs - 1) * width

    def cold_rollup():
        store._views.clear()
        store.query(lo, hi)

    def cold_naive():
        store._views.clear()
        store.query(lo, hi, use_rollups=False)

    rollup_seconds = _time_best_of(cold_rollup, repeats)
    naive_seconds = _time_best_of(cold_naive, repeats)
    store.query(lo, hi)  # materialize the cached view
    warm_seconds = _time_best_of(lambda: store.query(lo, hi), max(repeats, 3))
    return {
        "epochs_covered": int(epochs - 2),
        "naive_seconds": naive_seconds,
        "rollup_seconds": rollup_seconds,
        "warm_seconds": warm_seconds,
        "rollup_speedup": naive_seconds / rollup_seconds,
        "cache_speedup": rollup_seconds / warm_seconds,
    }


# ---------------------------------------------------------------------------
# section 4: segment codec payload sizes (deterministic)
# ---------------------------------------------------------------------------

def bench_codecs(n_items: int, epochs: int) -> dict:
    records, keys = _records(n_items)
    store = _build_store(records, keys, epochs)
    segment = store.segments()[0]
    sizes = {}
    for codec in ("json.v2", "binary.v1"):
        total = 0
        for summary in segment.members.values():
            payload = encode_summary(summary, codec=codec)
            total += len(payload.encode("utf-8") if isinstance(payload, str) else payload)
        sizes[codec] = total
    return {
        "segment_records": int(segment.count),
        "json_v2_bytes": int(sizes["json.v2"]),
        "binary_v1_bytes": int(sizes["binary.v1"]),
        "compression_ratio": sizes["json.v2"] / sizes["binary.v1"],
    }


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def run_report(args) -> dict:
    return {
        "experiment": "E24-segment-store",
        "quick": bool(args.quick),
        "n_items": int(args.items),
        "epochs": int(args.epochs),
        "repeats": int(args.repeats),
        "sections": {
            "ingest": bench_ingest(args.items, args.epochs, args.repeats),
            "planner": bench_planner(args.items, args.epochs),
            "query": bench_query(args.items, args.epochs, args.repeats),
            "codecs": bench_codecs(args.items, args.epochs),
        },
    }


def _smoke_metrics(report: dict) -> dict:
    """Machine-independent ratios gated against the snapshot."""
    sections = report["sections"]
    reductions = [row["reduction"] for row in sections["planner"]]
    return {
        "planner_reduction_gmean": float(math.exp(np.mean(np.log(reductions)))),
        "rollup_speedup": sections["query"]["rollup_speedup"],
        "cache_speedup": sections["query"]["cache_speedup"],
        "codec_compression_ratio": sections["codecs"]["compression_ratio"],
    }


def check_against_snapshot(report: dict, snapshot_path: str, factor: float = 2.0):
    """Return regression messages (empty = pass); ratios only, no seconds."""
    with open(snapshot_path) as handle:
        snapshot = json.load(handle)
    current = _smoke_metrics(report)
    baseline = _smoke_metrics(snapshot)
    failures = []
    for key, base in baseline.items():
        if key not in current:
            failures.append(f"missing smoke metric {key!r}")
            continue
        now = current[key]
        if now < base / factor:
            failures.append(
                f"{key}: {now:.2f}x vs snapshot {base:.2f}x "
                f"(fell below 1/{factor:.0f} of snapshot)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="segment-store benchmarks (E24)")
    parser.add_argument("--items", type=int, default=2**17)
    parser.add_argument("--epochs", type=int, default=256)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick", action="store_true",
        help="small streams, one repeat (CI smoke run)",
    )
    parser.add_argument("--out", default="BENCH_store.json")
    parser.add_argument(
        "--check", default=None, metavar="SNAPSHOT",
        help="compare smoke ratios against this snapshot JSON; exit 1 on "
             "a >2x regression",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.items, args.epochs, args.repeats = 2**14, 64, 1

    report = run_report(args)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)

    ingest = report["sections"]["ingest"]
    print(
        f"ingest: {ingest['n_records']} records into {ingest['epochs']} epochs "
        f"in {ingest['ingest_seconds']*1e3:.1f} ms "
        f"({ingest['records_per_second']:,.0f} rec/s); "
        f"compact built {ingest['rollups_built']} roll-ups "
        f"in {ingest['compact_seconds']*1e3:.1f} ms"
    )
    for row in report["sections"]["planner"]:
        print(
            f"planner: {row['epochs_covered']:>4} epochs -> "
            f"{row['planner_merges']:>2} merges (bound {row['bound']:>2}) "
            f"vs naive {row['naive_merges']:>4}  ({row['reduction']:5.1f}x fewer)"
        )
    query = report["sections"]["query"]
    print(
        f"query: naive {query['naive_seconds']*1e3:8.2f} ms  "
        f"rollup {query['rollup_seconds']*1e3:8.2f} ms "
        f"({query['rollup_speedup']:5.2f}x)  "
        f"warm {query['warm_seconds']*1e6:8.1f} us "
        f"({query['cache_speedup']:,.0f}x)"
    )
    codecs = report["sections"]["codecs"]
    print(
        f"codecs: one segment json.v2 {codecs['json_v2_bytes']} B vs "
        f"binary.v1 {codecs['binary_v1_bytes']} B "
        f"({codecs['compression_ratio']:.2f}x smaller)"
    )
    print(f"wrote {args.out}")

    if args.check:
        failures = check_against_snapshot(report, args.check)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"snapshot check against {args.check}: ok")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
