"""E27: sliding-window benchmarks — ingest overhead, query vs rebuild.

Measures what the exponential-histogram combinator costs on the write
path and buys on the read path:

1. ingest overhead: per-item update throughput of a windowed summary
   (bucket seals + cascade canonicalization amortized across the
   granule) vs the flat base summary;
2. window-query latency: merging the <= cap * log2(W) live bucket
   summaries vs naively rebuilding the window from the retained raw
   items, at ~2^10 live buckets (the acceptance point) — for the full
   stream and for a trailing quarter-window.

Standalone (no pytest-benchmark), writes the JSON artifact for CI::

    PYTHONPATH=src python benchmarks/bench_windows.py --quick --out BENCH_windows.json

CI regression gate — machine-independent ratios against the checked-in
snapshot (2x tolerance) plus the absolute acceptance floors (>= 2^10
live buckets, >= 10x query speedup over the naive rebuild)::

    PYTHONPATH=src python benchmarks/bench_windows.py --quick \
        --out BENCH_windows.json --check benchmarks/BENCH_windows_snapshot.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.frequency import CountMin

UNIVERSE = 997

#: acceptance floors (ISSUE): enforced on every --check run, snapshot or
#: not — the histogram must actually be at the 2^10-bucket operating
#: point and the bucket merge must beat the from-scratch rebuild by 10x
FLOORS = {
    "live_buckets": 1024.0,
    "window_query_speedup": 10.0,
}


def _flat(depth: int) -> CountMin:
    return CountMin(64, depth, seed=1)


def _items(n: int) -> list:
    return [int(v) for v in np.arange(n) % UNIVERSE]


def _latencies(fn, repeats: int) -> dict:
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return {
        "p50_seconds": float(np.percentile(samples, 50)),
        "p99_seconds": float(np.percentile(samples, 99)),
    }


def bench_ingest(items: list, eps: float, granularity: int, depth: int):
    """Per-item update loops: windowed combinator vs the flat base.

    Returns the populated windowed summary so the query section reuses
    the (expensive) ingest instead of paying it twice.
    """
    win = _flat(depth).windowed(eps=eps, granularity=granularity)
    t0 = time.perf_counter()
    for item in items:
        win.update(item)
    windowed_seconds = time.perf_counter() - t0

    flat = _flat(depth)
    t0 = time.perf_counter()
    for item in items:
        flat.update(item)
    flat_seconds = time.perf_counter() - t0

    assert win.n == flat.n == len(items)
    row = {
        "items": len(items),
        "windowed_seconds": windowed_seconds,
        "flat_seconds": flat_seconds,
        "windowed_items_per_second": len(items) / windowed_seconds,
        "flat_items_per_second": len(items) / flat_seconds,
        # > 1.0 means the windowed path is slower; the EH promise is
        # that this stays a small constant, not a log factor
        "ingest_overhead": windowed_seconds / flat_seconds,
    }
    return win, row


def bench_queries(win, items: list, repeats: int) -> dict:
    """Bucket-merge window query vs rebuilding from the covered slice.

    The naive competitor gets every advantage: the raw items are
    already in memory and it rebuilds through the vectorized
    ``update_batch`` path — the speedup measured here is purely
    "merge cap * log2(W) sketches" vs "re-summarize W items".
    """
    rows = {}
    for label, window in (
        ("full_window", None),
        ("recent_quarter", len(items) / 4),
    ):
        view = win.window_query(window=window)
        covered = items[view.covered_start : view.covered_end]
        rebuild = win._spawn().extend(covered)
        # both paths summarize exactly the covered bucket-aligned span
        assert view.summary.n == rebuild.n == len(covered)
        rows[label] = {
            "buckets_covered": int(view.buckets_covered),
            "covered_items": len(covered),
            "query": _latencies(
                lambda w=window: win.window_query(window=w), repeats
            ),
            "rebuild": _latencies(
                lambda c=covered: win._spawn().extend(c), repeats
            ),
        }
    for row in rows.values():
        row["query_speedup"] = (
            row["rebuild"]["p50_seconds"] / row["query"]["p50_seconds"]
        )
    return rows


def run_report(args) -> dict:
    items = _items(args.items)
    win, ingest = bench_ingest(items, args.eps, args.granularity, args.depth)
    return {
        "experiment": "E27-sliding-windows",
        "quick": bool(args.quick),
        "n_items": int(args.items),
        "eps": float(args.eps),
        "granularity": int(args.granularity),
        "depth": int(args.depth),
        "repeats": int(args.repeats),
        "live_buckets": int(win.num_buckets),
        "max_level": int(win.max_level),
        "sections": {
            "ingest": ingest,
            "queries": bench_queries(win, items, args.repeats),
        },
    }


def _smoke_metrics(report: dict) -> dict:
    """Machine-independent ratios gated against the snapshot."""
    queries = report["sections"]["queries"]
    ingest = report["sections"]["ingest"]
    return {
        "live_buckets": float(report["live_buckets"]),
        "window_query_speedup": queries["full_window"]["query_speedup"],
        "recent_query_speedup": queries["recent_quarter"]["query_speedup"],
        # windowed throughput as a fraction of flat (higher is better,
        # ~0.8 expected): gated so the write path cannot silently rot
        "ingest_throughput_ratio": 1.0 / ingest["ingest_overhead"],
    }


def check_against_snapshot(report: dict, snapshot_path: str, factor: float = 2.0):
    """Regression messages (empty = pass): snapshot ratios + hard floors."""
    with open(snapshot_path) as handle:
        snapshot = json.load(handle)
    current = _smoke_metrics(report)
    baseline = _smoke_metrics(snapshot)
    failures = []
    for key, base in baseline.items():
        if key not in current:
            failures.append(f"missing smoke metric {key!r}")
            continue
        now = current[key]
        if now < base / factor:
            failures.append(
                f"{key}: {now:.2f}x vs snapshot {base:.2f}x "
                f"(fell below 1/{factor:.0f} of snapshot)"
            )
    for key, floor in FLOORS.items():
        if current.get(key, 0.0) < floor:
            failures.append(
                f"{key}: {current.get(key, 0.0):.2f} is below the "
                f"acceptance floor of {floor:.0f}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="sliding-window benchmarks (E27)"
    )
    parser.add_argument("--items", type=int, default=2**19)
    parser.add_argument(
        "--eps", type=float, default=0.002,
        help="EH accuracy knob; per-level cap is ceil(1/eps) + 1",
    )
    parser.add_argument("--granularity", type=int, default=256)
    parser.add_argument("--depth", type=int, default=5,
                        help="CountMin rows in the base summary")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--quick", action="store_true",
        help="half-size stream, few repeats (CI smoke run)",
    )
    parser.add_argument("--out", default="BENCH_windows.json")
    parser.add_argument(
        "--check", default=None, metavar="SNAPSHOT",
        help="compare smoke ratios against this snapshot JSON and the "
             "acceptance floors; exit 1 on regression",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.items, args.granularity, args.repeats = 2**18, 128, 3

    report = run_report(args)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)

    ingest = report["sections"]["ingest"]
    print(
        f"windows: {report['n_items']} items, eps={report['eps']} "
        f"granularity={report['granularity']} -> {report['live_buckets']} "
        f"live buckets across {report['max_level'] + 1} levels"
    )
    print(
        f"   ingest: windowed {ingest['windowed_items_per_second']:,.0f} "
        f"items/s vs flat {ingest['flat_items_per_second']:,.0f} items/s "
        f"({ingest['ingest_overhead']:.2f}x overhead)"
    )
    for label, row in report["sections"]["queries"].items():
        print(
            f"{label:>15}: {row['buckets_covered']:>5} buckets / "
            f"{row['covered_items']} items  "
            f"query p50 {row['query']['p50_seconds']*1e3:7.2f} ms vs "
            f"rebuild {row['rebuild']['p50_seconds']*1e3:8.2f} ms "
            f"({row['query_speedup']:5.1f}x)  "
            f"p99 {row['query']['p99_seconds']*1e3:7.2f} / "
            f"{row['rebuild']['p99_seconds']*1e3:8.2f} ms"
        )
    print(f"wrote {args.out}")

    if args.check:
        failures = check_against_snapshot(report, args.check)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"snapshot check against {args.check}: ok")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
