"""E19: delivery semantics — at-least-once retries vs summary algebra.

Real aggregation fabrics retry; without exactly-once bookkeeping a
child summary can be merged twice.  The two algebraic families behave
very differently:

- **lattice** summaries (KMV, HyperLogLog, Bloom, EpsKernel — merges
  are idempotent joins) absorb duplicates with *zero* error;
- **additive** summaries (MG, CountMin, quantile summaries) double-count
  the duplicated subtree; their guarantees still hold *relative to the
  inflated n*, but estimates drift from the true counts by the
  duplicated mass.

This experiment injects duplicate deliveries at increasing rates and
measures the induced error — quantifying why production systems pair
additive sketches with exactly-once transports (or dedup tokens) while
lattice sketches run happily over fire-and-forget delivery.

Run:  python benchmarks/bench_delivery_semantics.py
      pytest benchmarks/bench_delivery_semantics.py --benchmark-only
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro import HyperLogLog, KMinValues, MisraGries
from repro.analysis import print_table
from repro.distributed import ContiguousPartitioner, balanced_tree, run_aggregation
from repro.workloads import zipf_stream

N = 2**16
NODES = 32


def run_experiment():
    data = zipf_stream(N, alpha=1.2, universe=30_000, rng=1)
    truth = Counter(data.tolist())
    true_distinct = len(truth)
    top_items = [item for item, _ in truth.most_common(20)]
    rows = []
    for dup_p in (0.0, 0.1, 0.3):
        # additive: Misra-Gries frequency estimates
        mg_result = run_aggregation(
            data, ContiguousPartitioner(), lambda: MisraGries(256),
            balanced_tree(NODES), duplicate_probability=dup_p, rng=2,
        )
        mg_err = max(
            abs(mg_result.summary.estimate(item) - truth[item])
            for item in top_items
        )
        rows.append([
            f"{dup_p:.0%}", "MisraGries (additive)",
            mg_result.duplicated_deliveries,
            f"n drift: {mg_result.summary.n - N:+d}",
            f"{mg_err}",
        ])
        # lattice: distinct counts
        for name, factory in (
            ("KMV (lattice)", lambda: KMinValues(1024, seed=3)),
            ("HyperLogLog (lattice)", lambda: HyperLogLog(p=12, seed=3)),
        ):
            result = run_aggregation(
                data, ContiguousPartitioner(), factory,
                balanced_tree(NODES), duplicate_probability=dup_p, rng=2,
            )
            clean = run_aggregation(
                data, ContiguousPartitioner(), factory, balanced_tree(NODES)
            )
            drift = abs(result.summary.distinct() - clean.summary.distinct())
            rows.append([
                f"{dup_p:.0%}", name,
                result.duplicated_deliveries,
                f"estimate drift: {drift:.1f}",
                f"{abs(result.summary.distinct() - true_distinct):.0f}",
            ])
    print_table(
        ["dup rate", "summary", "dup deliveries", "state drift vs clean run",
         "error vs truth"],
        rows,
        caption=f"E19: at-least-once delivery, n={N}, {NODES} nodes — "
                "lattice summaries are immune, additive ones drift by the "
                "duplicated mass",
    )
    return rows


def test_e19_clean_run_baseline(benchmark):
    data = zipf_stream(2**14, rng=4)

    def run():
        return run_aggregation(
            data, ContiguousPartitioner(), lambda: MisraGries(64),
            balanced_tree(8),
        )

    result = benchmark(run)
    assert result.duplicated_deliveries == 0


def test_e19_faulty_run(benchmark):
    data = zipf_stream(2**14, rng=5)

    def run():
        return run_aggregation(
            data, ContiguousPartitioner(), lambda: HyperLogLog(p=10, seed=1),
            balanced_tree(8), duplicate_probability=0.5, rng=6,
        )

    result = benchmark(run)
    assert result.summary.n >= len(data)


if __name__ == "__main__":
    run_experiment()
