"""E13/E14 (extensions): distinct counting and time-decayed heavy hitters.

E13 — the paper's Section 1 cites F0 sketches as known mergeable
summaries; this experiment validates that claim end-to-end for KMV and
HyperLogLog: merged estimates must equal sequential estimates (lossless
lattice merges) and stay within the sketches' relative-error envelopes.

E14 — the paper's future-work direction: exponentially time-decayed
Misra-Gries.  Validates that (a) the decayed error bound
``N_decayed/(k+1)`` holds under merging of summaries with *different*
reference times, and (b) the summary tracks shifting item popularity
that an undecayed MG misses.

Run:  python benchmarks/bench_distinct_decay.py
      pytest benchmarks/bench_distinct_decay.py --benchmark-only
"""

from __future__ import annotations

import numpy as np

from repro import DecayedMisraGries, HyperLogLog, KMinValues, MisraGries
from repro.analysis import print_table
from repro.core import merge_all
from repro.workloads import zipf_stream

N = 2**17


def run_distinct_experiment():
    rows = []
    rng = np.random.default_rng(1)
    for cardinality in (1_000, 50_000, 500_000):
        items = rng.integers(0, cardinality * 2, size=N).tolist()
        true_d = len(set(items))
        for name, factory in (
            ("KMV(k=1024)", lambda: KMinValues(1024, seed=7)),
            ("HLL(p=12)", lambda: HyperLogLog(p=12, seed=7)),
        ):
            sequential = factory().extend(items)
            parts = [factory().extend(items[i::16]) for i in range(16)]
            merged = merge_all(parts, strategy="random", rng=2)
            lossless = sequential.distinct() == merged.distinct()
            rel = abs(merged.distinct() - true_d) / true_d
            rows.append([
                f"~{cardinality}", name, merged.size(),
                f"{merged.distinct():.0f}", true_d,
                f"{rel:.4f}", f"{3 * merged.relative_error:.4f}",
                "yes" if lossless else "NO",
                "OK" if rel <= 3 * merged.relative_error else "VIOLATED",
            ])
    print_table(
        ["cardinality", "sketch", "size", "merged estimate", "true distinct",
         "rel err", "3x expected", "merge lossless", "verdict"],
        rows,
        caption=f"E13: distinct counting under 16-way random merges, n={N}",
    )
    return rows


def run_decay_experiment():
    half_life = 1_000.0
    k = 32
    rows = []
    # regime change: item A dominates early, item B late
    events = []
    for t in range(20_000):
        events.append(("A" if t < 10_000 else "B", float(t)))
        events.append((f"noise{t % 500}", float(t)))

    # distributed: shard by time ranges (different reference times)
    for shards in (1, 4, 16):
        bounds = np.linspace(0, len(events), shards + 1).astype(int)
        parts = []
        for i in range(shards):
            part = DecayedMisraGries(k, half_life)
            for item, t in events[bounds[i] : bounds[i + 1]]:
                part.observe(item, t)
            parts.append(part)
        merged = merge_all(parts, strategy="tree")
        now = merged.reference_time
        decayed_truth = {}
        for item, t in events:
            decayed_truth[item] = decayed_truth.get(item, 0.0) + 0.5 ** (
                (now - t) / half_life
            )
        max_err = max(
            decayed_truth[item] - merged.estimate(item) for item in decayed_truth
        )
        hh = merged.heavy_hitters(0.2)
        rows.append([
            shards, f"{merged.decayed_total:.0f}",
            f"{max_err:.1f}", f"{merged.error_bound:.1f}",
            "OK" if max_err <= merged.error_bound + 1e-6 else "VIOLATED",
            "B" in hh and "A" not in hh,
        ])
    # contrast: undecayed MG still reports A as heavy
    plain = MisraGries(k)
    for item, _t in events:
        plain.update(item)
    rows_caption = (
        f"E14: decayed MG (half-life={half_life:.0f}), regime change at t=10000 — "
        f"plain MG reports A as top ({'A' in plain.heavy_hitters(0.2)}), "
        "decayed must report only B"
    )
    print_table(
        ["shards", "decayed total", "max err", "bound N_d/(k+1)", "verdict",
         "only-B heavy"],
        rows,
        caption=rows_caption,
    )
    return rows


def test_e13_kmv_build(benchmark):
    items = zipf_stream(2**14, rng=3).tolist()
    sketch = benchmark(lambda: KMinValues(1024, seed=1).extend(items))
    assert sketch.size() <= 1024


def test_e13_hll_build(benchmark):
    items = zipf_stream(2**14, rng=4).tolist()
    sketch = benchmark(lambda: HyperLogLog(p=12, seed=1).extend(items))
    assert sketch.n == len(items)


def test_e13_hll_merge(benchmark):
    import copy

    items = zipf_stream(2**14, rng=5).tolist()
    a = HyperLogLog(p=12, seed=1).extend(items[: 2**13])
    b = HyperLogLog(p=12, seed=1).extend(items[2**13 :])
    merged = benchmark(lambda: copy.deepcopy(a).merge(b))
    assert merged.n == len(items)


def test_e14_decayed_observe(benchmark):
    def run():
        dmg = DecayedMisraGries(32, half_life=100.0)
        for t in range(5_000):
            dmg.observe(t % 100, float(t))
        return dmg

    dmg = benchmark(run)
    assert dmg.size() <= 32


if __name__ == "__main__":
    run_distinct_experiment()
    run_decay_experiment()
