"""E20: non-linearity costs mergeability — conservative-update CountMin.

Conservative update is the standard streaming trick for tightening
CountMin, but it makes the sketch non-linear: summing tables is no
longer the sketch of the union.  This experiment sweeps the shard count
and measures the total over-estimation of (a) plain CountMin (linear —
merged table identical to sequential at any shard count), (b) merged
conservative-update sketches (advantage erodes as shards multiply),
against the sequential conservative-update gold standard.

The broader point is the paper's: properties proved for a *streaming*
summary do not automatically survive the merge operator; mergeability
has to be designed in (as MG's combine+prune is) or paid for.

Run:  python benchmarks/bench_conservative_update.py
      pytest benchmarks/bench_conservative_update.py --benchmark-only
"""

from __future__ import annotations

from collections import Counter

from repro.analysis import print_table
from repro.core import merge_chain
from repro.frequency import ConservativeCountMin, CountMin
from repro.workloads import uniform_stream, zipf_stream

N = 2**15
GEOMETRY = dict(width=32, depth=4, seed=7)


def _total_overcount(sketch, truth):
    return sum(sketch.estimate(item) - count for item, count in truth.items())


def run_experiment():
    workloads = {
        "zipf(1.1)": zipf_stream(N, alpha=1.1, universe=20_000, rng=1),
        "uniform": uniform_stream(N, universe=2_000, rng=2),
    }
    rows = []
    for name, stream in workloads.items():
        truth = Counter(stream.tolist())
        cm_seq = CountMin(**GEOMETRY).extend(stream.tolist())
        cu_seq = ConservativeCountMin(**GEOMETRY).extend(stream.tolist())
        cm_total = _total_overcount(cm_seq, truth)
        cu_total = _total_overcount(cu_seq, truth)
        rows.append([
            name, "sequential", cu_total, cm_total,
            f"{1 - cu_total / cm_total:.1%}",
        ])
        for shards in (16, 64, 256):
            cu_merged = merge_chain(
                [
                    ConservativeCountMin(**GEOMETRY).extend(
                        stream[i::shards].tolist()
                    )
                    for i in range(shards)
                ]
            )
            cu_m_total = _total_overcount(cu_merged, truth)
            rows.append([
                name, f"{shards}-way merge", cu_m_total, cm_total,
                f"{1 - cu_m_total / cm_total:.1%}",
            ])
    print_table(
        ["workload", "mode", "CU total overcount", "CM total overcount",
         "CU advantage"],
        rows,
        caption=f"E20: conservative update vs plain CountMin, n={N}, "
                f"{GEOMETRY['width']}x{GEOMETRY['depth']} — the advantage "
                "erodes with shard count (CM is unaffected: it is linear)",
    )
    return rows


def test_e20_cu_build(benchmark):
    stream = zipf_stream(2**13, rng=3).tolist()
    sketch = benchmark(lambda: ConservativeCountMin(64, 4, seed=1).extend(stream))
    assert sketch.n == len(stream)


def test_e20_cu_merge(benchmark):
    import copy

    stream = zipf_stream(2**13, rng=4)
    a = ConservativeCountMin(64, 4, seed=1).extend(stream[: 2**12].tolist())
    b = ConservativeCountMin(64, 4, seed=1).extend(stream[2**12 :].tolist())
    merged = benchmark(lambda: copy.deepcopy(a).merge(b))
    assert merged.n == len(stream)


if __name__ == "__main__":
    run_experiment()
