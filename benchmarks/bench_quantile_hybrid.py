"""E7 (Section 3.3): the hybrid summary's size is independent of n.

Sweeps n over three orders of magnitude at fixed eps and reports the
size of the hybrid vs the logarithmic-method summary: the latter grows
by one block per doubling of n, the hybrid's GK top absorbs the growth
(paper bound O((1/eps) log^1.5(1/eps))).  Realized rank error is
reported alongside to show the size cap does not cost accuracy beyond
the documented GK-merge deviation.

Run:  python benchmarks/bench_quantile_hybrid.py
      pytest benchmarks/bench_quantile_hybrid.py --benchmark-only
"""

from __future__ import annotations

import numpy as np

from repro import HybridQuantiles, MergeableQuantiles
from repro.analysis import print_table, quantile_hybrid_size, rank_errors
from repro.core import merge_tree
from repro.workloads import chunk_evenly, value_stream

EPS = 0.02


def run_experiment():
    rows = []
    for exponent in (13, 15, 17):
        n = 2**exponent
        data = value_stream(n, "uniform", rng=exponent)
        probes = np.quantile(data, np.linspace(0.05, 0.95, 19))

        hybrid = HybridQuantiles(EPS, rng=1).extend(data)
        log_method = MergeableQuantiles.from_epsilon(EPS, rng=2).extend(data)
        hybrid_report = rank_errors(hybrid, data, probes)
        log_report = rank_errors(log_method, data, probes)
        rows.append([
            f"2^{exponent}", "sequential",
            hybrid.size(), log_method.size(),
            quantile_hybrid_size(EPS),
            f"{hybrid_report.max_error:.0f}", f"{log_report.max_error:.0f}",
            f"{EPS * n:.0f}",
        ])

        # the same comparison after a 16-way merge
        shards = chunk_evenly(data, 16)
        hybrid_m = merge_tree(
            [HybridQuantiles(EPS, rng=100 + i).extend(s) for i, s in enumerate(shards)]
        )
        log_m = merge_tree(
            [
                MergeableQuantiles.from_epsilon(EPS, rng=200 + i).extend(s)
                for i, s in enumerate(shards)
            ]
        )
        rows.append([
            f"2^{exponent}", "16-way merge",
            hybrid_m.size(), log_m.size(),
            quantile_hybrid_size(EPS),
            f"{rank_errors(hybrid_m, data, probes).max_error:.0f}",
            f"{rank_errors(log_m, data, probes).max_error:.0f}",
            f"{EPS * n:.0f}",
        ])
    print_table(
        ["n", "mode", "hybrid size", "log-method size", "hybrid bound",
         "hybrid max err", "log max err", "eps*n"],
        rows,
        caption=f"E7: hybrid (Sec 3.3) vs logarithmic method (Sec 3.2), "
                f"eps={EPS} — hybrid size must flatten as n grows",
    )
    return rows


def test_e7_hybrid_build(benchmark):
    data = value_stream(2**14, "uniform", rng=3)
    result = benchmark(lambda: HybridQuantiles(EPS, rng=4).extend(data))
    assert result.n == len(data)


def test_e7_hybrid_merge(benchmark):
    data = value_stream(2**14, "uniform", rng=5)
    chunks = chunk_evenly(data, 8)

    def run():
        return merge_tree(
            [HybridQuantiles(EPS, rng=20 + i).extend(c) for i, c in enumerate(chunks)]
        )

    merged = benchmark(run)
    assert merged.n == len(data)


if __name__ == "__main__":
    run_experiment()
