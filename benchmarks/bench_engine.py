"""E25: merge-engine overhead — compiled plans vs the inline legacy loops.

PR-5 routes ``merge_all``, the distributed simulator, and store
compaction through one compiled :class:`~repro.engine.plan.MergePlan`
and one :func:`~repro.engine.execute_plan` runner.  The IR indirection
must be close to free; this benchmark measures it against in-process
replicas of the loops the engine replaced:

1. fold strategies (chain / tree / kway) over ``m`` parts: engine
   ``merge_all`` vs the inline fold, same merge sequence, with a
   byte-identity sanity check;
2. distributed aggregation: ``run_aggregation`` (plan-compiled) vs a
   manual build-then-schedule-replay;
3. store compaction: ``SegmentStore.compact`` (plan-compiled) vs an
   inline dyadic roll-up loop over ``merged_segment``.

Efficiency is ``legacy_seconds / engine_seconds`` (1.0 = free
abstraction; the target is staying above 0.9, i.e. <10% overhead).

Standalone, writes the JSON artifact for CI::

    PYTHONPATH=src python benchmarks/bench_engine.py --quick --out BENCH_engine.json

CI regression gate — machine-independent efficiency ratios against the
checked-in snapshot, non-zero exit past a 2x regression::

    PYTHONPATH=src python benchmarks/bench_engine.py --quick \
        --out BENCH_engine.json --check benchmarks/BENCH_engine_snapshot.json
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import sys
import time
from contextlib import contextmanager

from repro.core import dumps, merge_all
from repro.distributed import ContiguousPartitioner, build_topology, run_aggregation
from repro.frequency import MisraGries
from repro.store import SegmentStore
from repro.store.segment import merged_segment
from repro.workloads import zipf_stream


@contextmanager
def _gc_paused():
    """Keep the collector out of the timed region (both sides equally)."""
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _time_best_of(fn, repeats: int) -> float:
    best = float("inf")
    with _gc_paused():
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
    return best


def _paired_best(engine_fn, legacy_fn, repeats: int) -> tuple:
    """Interleave the two sides so load shifts hit both equally.

    Timing each side in its own block makes the efficiency ratio
    hostage to whatever else the machine was doing during that block;
    alternating engine/legacy within every repeat and taking each
    side's best keeps the comparison honest on a noisy box.
    """
    engine_best = legacy_best = float("inf")
    with _gc_paused():
        for _ in range(repeats):
            t0 = time.perf_counter()
            engine_fn()
            engine_best = min(engine_best, time.perf_counter() - t0)
            t0 = time.perf_counter()
            legacy_fn()
            legacy_best = min(legacy_best, time.perf_counter() - t0)
    return engine_best, legacy_best


# ---------------------------------------------------------------------------
# the inline loops the engine replaced
# ---------------------------------------------------------------------------


def _legacy_chain(parts):
    acc = parts[0]
    for other in parts[1:]:
        acc.merge(other)
    return acc


def _legacy_tree(parts):
    level = list(parts)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            level[i].merge(level[i + 1])
            nxt.append(level[i])
        if len(level) % 2 == 1:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def _legacy_kway(parts):
    return parts[0].merge_many(parts[1:])


LEGACY_FOLDS = {"chain": _legacy_chain, "tree": _legacy_tree, "kway": _legacy_kway}


# ---------------------------------------------------------------------------
# section 1: fold strategies
# ---------------------------------------------------------------------------


def bench_folds(parts_count: int, items_per: int, repeats: int) -> dict:
    feeds = [
        zipf_stream(items_per, alpha=1.2, universe=2_000, rng=10 + i).tolist()
        for i in range(parts_count)
    ]
    blueprints = [MisraGries(64).extend(feed).to_dict() for feed in feeds]

    def make_parts():
        return [MisraGries.from_dict(d) for d in blueprints]

    rows = {}
    for strategy, fold in LEGACY_FOLDS.items():
        assert dumps(merge_all(make_parts(), strategy=strategy)) == dumps(
            fold(make_parts())
        ), f"engine fold diverged from legacy loop for {strategy!r}"
        engine_seconds, legacy_seconds = _paired_best(
            lambda: merge_all(make_parts(), strategy=strategy),
            lambda: fold(make_parts()),
            repeats,
        )
        rows[strategy] = {
            "parts": int(parts_count),
            "engine_seconds": engine_seconds,
            "legacy_seconds": legacy_seconds,
            "efficiency": legacy_seconds / engine_seconds,
            "overhead_pct": (engine_seconds / legacy_seconds - 1.0) * 100.0,
        }
    return rows


# ---------------------------------------------------------------------------
# section 2: distributed aggregation
# ---------------------------------------------------------------------------


def bench_aggregation(leaves: int, n_items: int, repeats: int) -> dict:
    data = zipf_stream(n_items, alpha=1.2, universe=3_000, rng=5)
    schedule = build_topology("balanced", leaves, rng=1)
    partitioner = ContiguousPartitioner()

    def engine():
        return run_aggregation(
            data, partitioner, lambda: MisraGries(64), schedule
        ).summary

    def legacy():
        shards = partitioner.split(data, leaves)
        replicas = [MisraGries(64).extend(shard) for shard in shards]
        for dst, src in schedule.steps:
            replicas[dst].merge(replicas[src])
        return replicas[schedule.root]

    assert dumps(engine()) == dumps(legacy()), "simulator diverged from replay"
    engine_seconds, legacy_seconds = _paired_best(engine, legacy, repeats)
    return {
        "leaves": int(leaves),
        "n_items": int(n_items),
        "engine_seconds": engine_seconds,
        "legacy_seconds": legacy_seconds,
        "efficiency": legacy_seconds / engine_seconds,
        "overhead_pct": (engine_seconds / legacy_seconds - 1.0) * 100.0,
    }


# ---------------------------------------------------------------------------
# section 3: store compaction
# ---------------------------------------------------------------------------


def _fresh_store(epochs: int, per_epoch: int) -> SegmentStore:
    # the canonical serving schema: a heavy-hitter member plus a
    # quantile member per segment (paper sections 3 and 4)
    store = SegmentStore(width=1.0)
    store.add_member("hot", "misra_gries", field="item", k=64)
    store.add_member("q", "kll_quantiles", field="item", k=96, rng=17)
    items = zipf_stream(epochs * per_epoch, alpha=1.2, universe=2_000, rng=3)
    records = [{"item": int(item)} for item in items]
    keys = [float(i % epochs) + 0.5 for i in range(len(records))]
    store.ingest(records, keys)
    return store


def _legacy_compact(store: SegmentStore) -> int:
    """The pre-engine ``SegmentStore.compact`` loop, serial path.

    Replays the replaced implementation verbatim — same roll-up
    discovery, same segment-id allocation order, same install
    bookkeeping — so the comparison charges both sides the full cost
    of a real compaction.
    """
    lo, hi = min(store._base), max(store._base)
    span = hi - lo + 1
    levels = max(1, math.ceil(math.log2(span))) if span > 1 else 1
    built = 0
    for level in range(1, levels + 1):
        block = 1 << level
        half = block >> 1
        first = (lo // block) * block
        for start in range(first, hi + 1, block):
            if (level, start) in store._rollups:
                continue
            parts = [
                child
                for child_start in (start, start + half)
                for child in (store._child_node(level - 1, child_start),)
                if child is not None
            ]
            if not parts:
                continue
            store._rollups[(level, start)] = merged_segment(
                store._new_segment_id(level, start), level, start, parts
            )
            built += 1
    store._max_level = max(store._max_level, levels)
    if built:
        store._generation += 1
    return built


def _rollup_state(store: SegmentStore) -> dict:
    return {
        key: (
            segment.segment_id,
            segment.count,
            {name: dumps(summary) for name, summary in segment.members.items()},
        )
        for key, segment in store._rollups.items()
    }


def bench_compaction(epochs: int, per_epoch: int, repeats: int) -> dict:
    # both sides mutate their store, so each timed run gets its own
    engine_stores = [_fresh_store(epochs, per_epoch) for _ in range(repeats)]
    legacy_stores = [_fresh_store(epochs, per_epoch) for _ in range(repeats)]

    probe_engine, probe_legacy = _fresh_store(epochs, per_epoch), _fresh_store(
        epochs, per_epoch
    )
    probe_engine.compact()
    _legacy_compact(probe_legacy)
    assert _rollup_state(probe_engine) == _rollup_state(
        probe_legacy
    ), "engine compaction diverged from the pre-engine loop"

    engine_seconds = legacy_seconds = float("inf")
    with _gc_paused():
        for engine_store, legacy_store in zip(engine_stores, legacy_stores):
            t0 = time.perf_counter()
            engine_store.compact()
            engine_seconds = min(engine_seconds, time.perf_counter() - t0)
            t0 = time.perf_counter()
            _legacy_compact(legacy_store)
            legacy_seconds = min(legacy_seconds, time.perf_counter() - t0)
    rollups = engine_stores[0].num_rollups
    return {
        "epochs": int(epochs),
        "rollups": int(rollups),
        "engine_seconds": engine_seconds,
        "legacy_seconds": legacy_seconds,
        "efficiency": legacy_seconds / engine_seconds,
        "overhead_pct": (engine_seconds / legacy_seconds - 1.0) * 100.0,
    }


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def run_report(args) -> dict:
    return {
        "experiment": "E25-merge-engine-overhead",
        "quick": bool(args.quick),
        "repeats": int(args.repeats),
        "sections": {
            "folds": bench_folds(args.parts, args.items_per_part, args.repeats),
            "aggregation": bench_aggregation(
                args.leaves, args.items, args.repeats
            ),
            "compaction": bench_compaction(
                args.epochs, args.items_per_epoch, args.repeats
            ),
        },
    }


def _smoke_metrics(report: dict) -> dict:
    """Machine-independent efficiency ratios gated against the snapshot."""
    sections = report["sections"]
    metrics = {
        f"fold_{strategy}_efficiency": row["efficiency"]
        for strategy, row in sections["folds"].items()
    }
    metrics["aggregation_efficiency"] = sections["aggregation"]["efficiency"]
    metrics["compaction_efficiency"] = sections["compaction"]["efficiency"]
    return metrics


def check_against_snapshot(report: dict, snapshot_path: str, factor: float = 2.0):
    """Return regression messages (empty = pass); ratios only, no seconds."""
    with open(snapshot_path) as handle:
        snapshot = json.load(handle)
    current = _smoke_metrics(report)
    baseline = _smoke_metrics(snapshot)
    failures = []
    for key, base in baseline.items():
        if key not in current:
            failures.append(f"missing smoke metric {key!r}")
            continue
        now = current[key]
        if now < base / factor:
            failures.append(
                f"{key}: {now:.2f}x vs snapshot {base:.2f}x "
                f"(fell below 1/{factor:.0f} of snapshot)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="merge-engine overhead (E25)")
    parser.add_argument("--parts", type=int, default=64)
    parser.add_argument("--items-per-part", type=int, default=400)
    parser.add_argument("--leaves", type=int, default=32)
    parser.add_argument("--items", type=int, default=2**16)
    parser.add_argument("--epochs", type=int, default=64)
    parser.add_argument("--items-per-epoch", type=int, default=200)
    parser.add_argument("--repeats", type=int, default=9)
    parser.add_argument(
        "--quick", action="store_true",
        help="small streams, fewer repeats (CI smoke run)",
    )
    parser.add_argument("--out", default="BENCH_engine.json")
    parser.add_argument(
        "--check", default=None, metavar="SNAPSHOT",
        help="compare efficiency ratios against this snapshot JSON; exit 1 "
             "on a >2x regression",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.parts, args.items_per_part = 32, 200
        args.leaves, args.items = 16, 2**14
        args.epochs, args.items_per_epoch = 32, 100
        args.repeats = 5

    report = run_report(args)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)

    for strategy, row in report["sections"]["folds"].items():
        print(
            f"fold {strategy:<6} {row['parts']} parts: "
            f"engine {row['engine_seconds']*1e3:.2f} ms vs "
            f"legacy {row['legacy_seconds']*1e3:.2f} ms "
            f"(overhead {row['overhead_pct']:+.1f}%)"
        )
    agg = report["sections"]["aggregation"]
    print(
        f"aggregation {agg['leaves']} leaves over {agg['n_items']} items: "
        f"engine {agg['engine_seconds']*1e3:.2f} ms vs "
        f"legacy {agg['legacy_seconds']*1e3:.2f} ms "
        f"(overhead {agg['overhead_pct']:+.1f}%)"
    )
    comp = report["sections"]["compaction"]
    print(
        f"compaction {comp['epochs']} epochs -> {comp['rollups']} roll-ups: "
        f"engine {comp['engine_seconds']*1e3:.2f} ms vs "
        f"legacy {comp['legacy_seconds']*1e3:.2f} ms "
        f"(overhead {comp['overhead_pct']:+.1f}%)"
    )
    print(f"report -> {args.out}")

    if args.check:
        failures = check_against_snapshot(report, args.check)
        if failures:
            for message in failures:
                print(f"REGRESSION {message}", file=sys.stderr)
            return 1
        print(f"snapshot check passed ({args.check})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
