"""E5 (Section 3.1): equal-weight random merges keep rank error eps*n.

Builds 2^j equal base summaries and merges them in a balanced tree (the
model of Section 3.1), sweeping the number of levels; the rank error at
the root must stay below eps*n *independent of the number of levels* —
the cancellation-of-random-halvings phenomenon the section proves.

Run:  python benchmarks/bench_quantile_equal_weight.py
      pytest benchmarks/bench_quantile_equal_weight.py --benchmark-only
"""

from __future__ import annotations

import numpy as np

from repro import EqualWeightQuantiles
from repro.analysis import print_table, rank_errors
from repro.core import merge_tree
from repro.workloads import value_stream

EPS = 0.02
DELTA = 0.05


def _build_and_merge(data, s, seed):
    m = len(data) // s
    parts = [
        EqualWeightQuantiles(s, rng=seed * 1000 + i).extend(data[i * s : (i + 1) * s])
        for i in range(m)
    ]
    return merge_tree(parts)


def run_experiment():
    s = EqualWeightQuantiles.from_epsilon(EPS, DELTA).s
    rows = []
    for levels in (4, 6, 8):
        m = 2**levels
        n = s * m
        for dist in ("uniform", "lognormal"):
            data = value_stream(n, dist, rng=levels)
            worst = 0.0
            for seed in range(3):
                merged = _build_and_merge(data, s, seed)
                probes = np.quantile(data, np.linspace(0.02, 0.98, 49))
                report = rank_errors(merged, data, probes)
                worst = max(worst, report.max_error)
            rows.append([
                dist, levels, m, n, s,
                f"{worst:.0f}", f"{EPS * n:.0f}",
                "OK" if worst <= EPS * n else "VIOLATED",
            ])
    print_table(
        ["distribution", "merge levels", "shards", "n", "s",
         "worst rank err (3 seeds)", "eps*n", "verdict"],
        rows,
        caption=f"E5: equal-weight merges (Sec 3.1), eps={EPS}, delta={DELTA} "
                f"-> s={s}; error must not grow with levels",
    )
    return rows


def test_e5_equal_weight_merge_tree(benchmark):
    s = 128
    data = value_stream(s * 64, "uniform", rng=1)

    def run():
        return _build_and_merge(data, s, seed=2)

    merged = benchmark(run)
    assert merged.n == len(data)
    assert merged.size() == s


def test_e5_rank_query(benchmark):
    s = 256
    data = value_stream(s * 64, "uniform", rng=3)
    merged = _build_and_merge(data, s, seed=4)
    result = benchmark(lambda: merged.rank(0.5))
    assert 0 <= result <= len(data)


if __name__ == "__main__":
    run_experiment()
