"""E1 (paper Table 1): measured summary sizes vs the claimed bounds.

The paper's Table 1 lists, per problem, the summary size needed for
error ``eps * n`` under arbitrary merges.  This experiment builds every
summary at a sweep of ``eps``, runs it over a fixed workload with
merging, and reports measured size next to the theoretical bound.

Script mode prints the table; pytest mode benchmarks summary
construction at a representative eps.

Run:  python benchmarks/bench_table1_sizes.py
      pytest benchmarks/bench_table1_sizes.py --benchmark-only
"""

from __future__ import annotations

import numpy as np

from repro import (
    BottomKSample,
    EpsApproximation,
    EpsKernel,
    HybridQuantiles,
    MergeableQuantiles,
    MisraGries,
    SpaceSaving,
)
from repro.analysis import (
    eps_kernel_size_2d,
    mg_size_bound,
    print_table,
    quantile_hybrid_size,
    quantile_mergeable_size,
    sample_size_bound,
    ss_size_bound,
)
from repro.core import merge_all
from repro.workloads import chunk_evenly, value_stream, zipf_stream

N = 2**17
EPSILONS = [1 / 16, 1 / 64, 1 / 256]


def _merged_size(factory, data, shards=16, seed=0):
    parts = [factory(i).extend(chunk) for i, chunk in enumerate(chunk_evenly(data, shards))]
    return merge_all(parts, strategy="random", rng=seed).size()


def run_experiment():
    items = zipf_stream(N, alpha=1.2, universe=100_000, rng=1)
    values = value_stream(N, "uniform", rng=2)
    rng = np.random.default_rng(3)
    points = rng.random((N // 8, 2))

    rows = []
    for eps in EPSILONS:
        inv = f"1/{round(1 / eps)}"
        rows.append([
            "frequency / MG", inv,
            _merged_size(lambda i: MisraGries.from_epsilon(eps), items),
            mg_size_bound(eps), "ceil(1/eps)",
        ])
        rows.append([
            "frequency / SS", inv,
            _merged_size(lambda i: SpaceSaving.from_epsilon(eps), items),
            ss_size_bound(eps), "ceil(1/eps)",
        ])
        rows.append([
            "quantiles / mergeable", inv,
            _merged_size(
                lambda i: MergeableQuantiles.from_epsilon(eps, rng=10 + i), values
            ),
            quantile_mergeable_size(eps, 0.01, N), "(1/eps) log(eps n) sqrt(log 1/d)",
        ])
        rows.append([
            "quantiles / hybrid", inv,
            _merged_size(lambda i: HybridQuantiles(eps, rng=20 + i), values),
            quantile_hybrid_size(eps), "(1/eps) log^1.5(1/eps)",
        ])
        rows.append([
            "quantiles / sample", inv,
            _merged_size(lambda i: BottomKSample.from_epsilon(eps, rng=30 + i), values),
            sample_size_bound(eps), "1/eps^2",
        ])
    # geometric summaries at one eps (slower): eps = 1/16
    eps = 1 / 16
    rows.append([
        "eps-approx rect (d=2)", "1/16",
        EpsApproximation.from_epsilon("rectangles_2d", eps, rng=4)
        .extend_points(points)
        .size(),
        "-", "O~(eps^-2d/(d+1))",
    ])
    rows.append([
        "eps-kernel (d=2)", "1/16",
        EpsKernel(eps).extend_points(points).size(),
        2 * eps_kernel_size_2d(eps) * 4, "O(eps^-1/2) dirs x 2",
    ])
    print_table(
        ["summary", "eps", "measured size", "bound formula value", "paper bound"],
        rows,
        caption=f"E1 / Table 1: summary sizes after 16-way random-tree merge, n={N}",
    )
    return rows


def test_e1_mg_build(benchmark):
    items = zipf_stream(2**14, rng=1)
    result = benchmark(lambda: MisraGries(64).extend(items))
    assert result.size() <= 64


def test_e1_mergeable_quantile_build(benchmark):
    values = value_stream(2**14, "uniform", rng=2)
    result = benchmark(lambda: MergeableQuantiles(256, rng=3).extend(values))
    assert result.n == 2**14


def test_e1_sizes_respect_bounds(benchmark):
    items = zipf_stream(2**14, rng=4)

    def build_and_merge():
        parts = [
            MisraGries.from_epsilon(1 / 64).extend(c)
            for c in chunk_evenly(items, 8)
        ]
        return merge_all(parts, strategy="tree")

    merged = benchmark(build_and_merge)
    assert merged.size() <= mg_size_bound(1 / 64)


if __name__ == "__main__":
    run_experiment()
