"""E21 (composition): dyadic hierarchy — range counts and hierarchical HH.

Mergeable summaries compose: one MG summary per dyadic level of an
integer domain answers range-count and hierarchical-heavy-hitter
queries, and merging the composite is just a level-wise MG merge, so
every guarantee survives arbitrary merge sequences.  This experiment
measures, across merge topologies:

- range-count bracketing (lower <= truth <= upper) and realized error
  vs the ``2 * bits * n/(k+1)`` composition bound;
- hierarchical heavy-hitter recall (no-false-negative at every level).

Run:  python benchmarks/bench_hierarchical.py
      pytest benchmarks/bench_hierarchical.py --benchmark-only
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.analysis import print_table
from repro.core import merge_all
from repro.frequency import DyadicHierarchy
from repro.workloads import zipf_stream

BITS = 14
K = 64
N = 2**17


def run_experiment():
    stream = zipf_stream(N, alpha=1.1, universe=1 << BITS, rng=1).tolist()
    truth = Counter(stream)
    prefix_sums = np.zeros((1 << BITS) + 1, dtype=np.int64)
    for x, c in truth.items():
        prefix_sums[x + 1] += c
    prefix_sums = np.cumsum(prefix_sums)

    def true_range(lo, hi):
        return int(prefix_sums[hi + 1] - prefix_sums[lo])

    rng = np.random.default_rng(2)
    queries = [
        tuple(sorted(rng.integers(0, 1 << BITS, 2).tolist())) for _ in range(200)
    ]

    rows = []
    for strategy, shards in (("sequential", 1), ("tree", 16), ("chain", 64)):
        if shards == 1:
            hierarchy = DyadicHierarchy(K, BITS)
            for x in stream:
                hierarchy.update(x)
        else:
            parts = [DyadicHierarchy(K, BITS) for _ in range(shards)]
            for i, x in enumerate(stream):
                parts[i % shards].update(x)
            hierarchy = merge_all(parts, strategy=strategy)
        bracketing_ok = 0
        worst = 0
        for lo, hi in queries:
            true = true_range(lo, hi)
            low = hierarchy.range_count(lo, hi)
            high = hierarchy.range_count_upper(lo, hi)
            if low <= true <= high:
                bracketing_ok += 1
            worst = max(worst, true - low)
        # heavy-hitter recall over levels
        phi = 0.05
        reported = hierarchy.hierarchical_heavy_hitters(phi)
        missed = 0
        for level in range(BITS + 1):
            block_truth = Counter()
            for x, c in truth.items():
                block_truth[x >> level] += c
            for prefix, count in block_truth.items():
                if count >= phi * N and (level, prefix) not in reported:
                    missed += 1
        bound = 2 * BITS * N / (K + 1)
        rows.append([
            f"{strategy} ({shards} shards)", hierarchy.size(),
            f"{bracketing_ok}/{len(queries)}",
            worst, f"{bound:.0f}",
            "0 (guaranteed)" if missed == 0 else f"{missed} MISSED",
        ])
    print_table(
        ["mode", "size", "range brackets hold", "worst range undercount",
         "bound 2*bits*n/(k+1)", "HHH false negatives"],
        rows,
        caption=f"E21: dyadic hierarchy over [0, 2^{BITS}), n={N}, k={K} "
                "per level — composition survives merging",
    )
    return rows


def test_e21_hierarchy_build(benchmark):
    stream = zipf_stream(2**12, universe=1 << 10, rng=3).tolist()

    def run():
        h = DyadicHierarchy(32, 10)
        for x in stream:
            h.update(x)
        return h

    hierarchy = benchmark(run)
    assert hierarchy.n == len(stream)


def test_e21_range_query(benchmark):
    stream = zipf_stream(2**13, universe=1 << 12, rng=4).tolist()
    h = DyadicHierarchy(32, 12)
    for x in stream:
        h.update(x)
    count = benchmark(lambda: h.range_count(100, 3000))
    assert count >= 0


def test_e21_hierarchy_merge(benchmark):
    import copy

    stream = zipf_stream(2**12, universe=1 << 10, rng=5).tolist()
    a = DyadicHierarchy(32, 10)
    b = DyadicHierarchy(32, 10)
    for x in stream[: 2**11]:
        a.update(x)
    for x in stream[2**11 :]:
        b.update(x)
    merged = benchmark(lambda: copy.deepcopy(a).merge(b))
    assert merged.n == len(stream)


if __name__ == "__main__":
    run_experiment()
