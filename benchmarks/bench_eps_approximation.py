"""E9 (Section 4): eps-approximations of range spaces via merge-reduce.

For each range family (intervals, rectangles, halfplanes):

- measure the range-counting error of the merged approximation against
  exact counts (must be <= eps-level for the configured block size);
- compare against a random sample of the *same size* (the baseline the
  discrepancy-based construction beats);
- compare the two halving colorings (random pairs vs greedy).

Run:  python benchmarks/bench_eps_approximation.py
      pytest benchmarks/bench_eps_approximation.py --benchmark-only
"""

from __future__ import annotations

import numpy as np

from repro import EpsApproximation
from repro.analysis import print_table
from repro.core import merge_all
from repro.ranges import get_range_space

N = 2**14
SHARDS = 16
S = 256


def _test_ranges(space_name, pts, rng):
    space = get_range_space(space_name)
    if space_name == "intervals_1d":
        return space, [(-np.inf, b) for b in np.linspace(0.05, 0.95, 30)]
    if space_name == "rectangles_2d":
        return space, [
            (-np.inf, x, -np.inf, y) for x, y in rng.random((30, 2))
        ]
    ranges = space.canonical_ranges(pts, budget=30, rng=rng)
    return space, ranges


def _points(space_name, rng):
    if space_name == "intervals_1d":
        return rng.random(N)
    return rng.random((N, 2))


def _exact_count(space, pts, r):
    return space.count(space.check_points(pts), r)


def run_experiment():
    rng = np.random.default_rng(1)
    rows = []
    for space_name in ("intervals_1d", "rectangles_2d", "halfplanes_2d"):
        pts = _points(space_name, rng)
        space, ranges = _test_ranges(space_name, pts, rng)
        chunks = np.array_split(pts, SHARDS)
        for method in ("pair_random", "greedy"):
            parts = [
                EpsApproximation(space_name, s=S, method=method, rng=100 + i)
                .extend_points(c)
                for i, c in enumerate(chunks)
            ]
            merged = merge_all(parts, strategy="random", rng=2)
            worst = max(
                abs(merged.count(r) - _exact_count(space, pts, r)) for r in ranges
            )
            rows.append([
                space_name, method, merged.size(),
                f"{worst:.0f}", f"{worst / N:.4f}",
            ])
        # random-sample baseline at the same size
        sample_size = merged.size()
        idx = rng.choice(N, size=sample_size, replace=False)
        sample = np.asarray(pts)[idx]
        scale = N / sample_size
        worst = max(
            abs(scale * _exact_count(space, sample, r) - _exact_count(space, pts, r))
            for r in ranges
        )
        rows.append([
            space_name, "random sample (baseline)", sample_size,
            f"{worst:.0f}", f"{worst / N:.4f}",
        ])
    print_table(
        ["range space", "method", "size", "worst count err", "err / n"],
        rows,
        caption=f"E9: eps-approximation error after {SHARDS}-way merge, "
                f"n={N}, s={S} — merge-reduce beats same-size sampling",
    )
    return rows


def test_e9_build_rectangles(benchmark):
    rng = np.random.default_rng(3)
    pts = rng.random((2**12, 2))

    def run():
        return EpsApproximation("rectangles_2d", s=128, rng=4).extend_points(pts)

    ea = benchmark(run)
    assert ea.n == len(pts)


def test_e9_greedy_halving(benchmark):
    from repro.ranges import halve_points

    rng = np.random.default_rng(5)
    pts = rng.random((512, 2))
    space = get_range_space("rectangles_2d")
    kept = benchmark(lambda: halve_points(pts, space, rng=6, method="greedy"))
    assert len(kept) == 256


def test_e9_count_query(benchmark):
    rng = np.random.default_rng(7)
    pts = rng.random((2**13, 2))
    ea = EpsApproximation("rectangles_2d", s=128, rng=8).extend_points(pts)
    count = benchmark(lambda: ea.count((-np.inf, 0.5, -np.inf, 0.5)))
    assert 0 <= count <= len(pts)


if __name__ == "__main__":
    run_experiment()
