"""E6 (Section 3.2): fully mergeable quantiles — error independent of
the merge sequence.

The adversary controls both the data placement (value-sorted shards:
every node owns a disjoint range) and the merge tree (chain vs balanced
vs random, plus wildly unequal shard sizes).  A mergeable summary must
deliver the same eps*n rank error in every cell of the sweep.

Run:  python benchmarks/bench_quantile_mergeable.py
      pytest benchmarks/bench_quantile_mergeable.py --benchmark-only
"""

from __future__ import annotations

import numpy as np

from repro import MergeableQuantiles
from repro.analysis import print_table, rank_errors
from repro.distributed import (
    ContiguousPartitioner,
    SkewedSizePartitioner,
    SortedPartitioner,
    build_topology,
    run_aggregation,
)
from repro.workloads import value_stream

N = 2**16
NODES = 32
EPS = 0.02


def run_experiment():
    data = value_stream(N, "uniform", rng=1)
    probes = np.quantile(data, np.linspace(0.02, 0.98, 49))
    partitioners = {
        "contiguous": ContiguousPartitioner(),
        "sorted (adversarial)": SortedPartitioner(),
        "skewed sizes": SkewedSizePartitioner(alpha=1.2, rng=2),
    }
    rows = []
    for part_name, partitioner in partitioners.items():
        for topology in ("balanced", "chain", "random"):
            schedule = build_topology(topology, NODES, rng=3)
            result = run_aggregation(
                data,
                partitioner,
                lambda: MergeableQuantiles.from_epsilon(EPS, rng=4),
                schedule,
            )
            report = rank_errors(result.summary, data, probes)
            rows.append([
                part_name, topology, schedule.depth,
                result.summary.size(),
                f"{report.max_error:.0f}", f"{EPS * N:.0f}",
                "OK" if report.max_error <= EPS * N else "VIOLATED",
            ])
    print_table(
        ["partition", "topology", "depth", "root size", "max rank err",
         "eps*n", "verdict"],
        rows,
        caption=f"E6: fully mergeable quantiles (Sec 3.2), n={N}, "
                f"{NODES} nodes, eps={EPS} — error must be flat across cells",
    )
    return rows


def test_e6_merge_chain(benchmark):
    data = value_stream(2**14, "uniform", rng=5)
    chunks = np.array_split(np.sort(data), 16)

    def run():
        from repro.core import merge_chain

        parts = [
            MergeableQuantiles(128, rng=10 + i).extend(c)
            for i, c in enumerate(chunks)
        ]
        return merge_chain(parts)

    merged = benchmark(run)
    assert merged.n == len(data)


def test_e6_quantile_query(benchmark):
    data = value_stream(2**15, "uniform", rng=6)
    summary = MergeableQuantiles.from_epsilon(0.01, rng=7).extend(data)
    value = benchmark(lambda: summary.quantile(0.99))
    assert 0 <= value <= 1


if __name__ == "__main__":
    run_experiment()
