"""E10 (Section 5): eps-kernels for directional width under merging.

Three point-cloud shapes (disc, thin ellipse, clustered) summarized by
the mergeable grid kernel; at every direction of a dense probe grid the
width error must stay within eps * diameter (raw frame) and within the
relative bound when a shared fat reference frame is supplied — and a
merged kernel must equal the one-shot kernel exactly (slot-wise max is
lossless).

Run:  python benchmarks/bench_eps_kernel.py
      pytest benchmarks/bench_eps_kernel.py --benchmark-only
"""

from __future__ import annotations

import numpy as np

from repro import EpsKernel
from repro.analysis import print_table
from repro.core import merge_all
from repro.kernels import compute_eps_kernel, diameter, directional_width, fat_frame

N = 8_000
EPS = 0.02
PROBES = [np.array([np.cos(a), np.sin(a)]) for a in np.linspace(0, np.pi, 181)]


def _clouds(rng):
    theta = rng.random(N) * 2 * np.pi
    radius = np.sqrt(rng.random(N))
    disc = np.stack([radius * np.cos(theta), radius * np.sin(theta)], axis=1)
    ellipse = disc * np.array([8.0, 0.5])
    centers = rng.random((6, 2)) * 10
    clustered = centers[rng.integers(0, 6, N)] + rng.normal(0, 0.3, (N, 2))
    return {"disc": disc, "thin ellipse": ellipse, "clustered": clustered}


def run_experiment():
    rng = np.random.default_rng(1)
    rows = []
    for shape, pts in _clouds(rng).items():
        diam = diameter(pts)
        whole = EpsKernel(EPS).extend_points(pts)
        parts = [EpsKernel(EPS).extend_points(c) for c in np.array_split(pts, 16)]
        merged = merge_all(parts, strategy="random", rng=2)
        lossless = np.allclose(
            np.sort(merged.kernel_points(), axis=0),
            np.sort(whole.kernel_points(), axis=0),
        )
        worst_abs = max(
            directional_width(pts, u) - merged.width(u) for u in PROBES
        )
        offline = compute_eps_kernel(pts, EPS)
        worst_rel_offline = max(
            1 - directional_width(offline, u) / directional_width(pts, u)
            for u in PROBES
        )
        rows.append([
            shape, merged.size(), "yes" if lossless else "NO",
            f"{worst_abs:.4f}", f"{EPS * diam:.4f}",
            len(offline), f"{worst_rel_offline:.4f}",
        ])
    print_table(
        ["cloud", "kernel size", "merge lossless", "width err (merged)",
         "eps*diam bound", "offline kernel size", "offline rel err"],
        rows,
        caption=f"E10: eps-kernels, n={N}, eps={EPS}, 16-way random merge",
    )
    return rows


def run_frame_experiment():
    """Relative guarantee with a shared reference frame on thin data."""
    rng = np.random.default_rng(3)
    theta = rng.random(N) * 2 * np.pi
    pts = np.stack([10 * np.cos(theta), 0.1 * np.sin(theta)], axis=1)
    frame = fat_frame(pts)
    parts = [
        EpsKernel(EPS, frame=frame).extend_points(c)
        for c in np.array_split(pts, 8)
    ]
    merged = merge_all(parts, strategy="tree")
    from repro.kernels import apply_frame

    normalized = apply_frame(pts, frame)
    normalized_kernel = apply_frame(merged.kernel_points(), frame)
    worst_rel = max(
        1 - directional_width(normalized_kernel, u) / directional_width(normalized, u)
        for u in PROBES
    )
    print_table(
        ["frame", "kernel size", "worst relative width err", "target ~4*eps"],
        [["shared fat frame", merged.size(), f"{worst_rel:.4f}", f"{4 * EPS:.4f}"]],
        caption="E10b: relative guarantee on a thin ellipse with a shared frame",
    )
    return worst_rel


def test_e10_kernel_build(benchmark):
    rng = np.random.default_rng(4)
    pts = rng.random((N, 2))
    kernel = benchmark(lambda: EpsKernel(EPS).extend_points(pts))
    assert kernel.n == N


def test_e10_kernel_merge(benchmark):
    rng = np.random.default_rng(5)
    pts = rng.random((N, 2))
    parts_proto = [EpsKernel(EPS).extend_points(c) for c in np.array_split(pts, 16)]

    def run():
        import copy

        parts = [copy.deepcopy(p) for p in parts_proto]
        return merge_all(parts, strategy="tree")

    merged = benchmark(run)
    assert merged.n == N


def test_e10_width_query(benchmark):
    rng = np.random.default_rng(6)
    kernel = EpsKernel(EPS).extend_points(rng.random((N, 2)))
    width = benchmark(lambda: kernel.width(np.array([1.0, 1.0])))
    assert width > 0


if __name__ == "__main__":
    run_experiment()
    run_frame_experiment()
