"""E23: merge-runtime benchmarks — parallel aggregation, k-way merges,
cached query views, and the KLL compress-cost guard.

Times the layers added by the merge-runtime work:

1. ``run_aggregation`` worker sweep over a 64-leaf balanced tree
   (legacy scalar path vs ``executor=1/2/4``), with the run's
   ``degraded_to_serial`` flag on every row — a "parallel" number that
   silently ran serial is a lie;
2. k-way ``merge_many`` vs the sequential pairwise fold at fan-ins
   4/16/64 for one type per merge shape (stack-and-sum, register max,
   compaction concat, counter combine);
3. cold vs warm batched ``quantiles(qs)`` against the cached sorted
   view;
4. the ``KLLQuantiles._compress`` scan-cost counter, normalized per
   item — a deterministic, machine-independent linearity guard;
5. ``wave_dispatch`` — the persistent runtime's IPC accounting: round
   trips per wave, command bytes shipped per merge (plan-step ids, not
   summaries), and how much bulk state moved through shared memory
   instead of the pipes.  ``cmd_bytes_per_merge`` is machine-independent
   and snapshot-gated;
6. ``parallel_gate`` — the honesty gate: ``workers=4`` must beat serial
   by >= 2x on the gate workload.  Enforced (with ``--check``) only on
   boxes with >= 4 CPUs; smaller boxes print an explicit
   ``PARALLEL-GATE SKIPPED`` marker instead of silently passing.

Standalone (no pytest-benchmark), writes the JSON artifact for CI::

    PYTHONPATH=src python benchmarks/bench_merge_runtime.py \
        --quick --out BENCH_merge.json

CI regression gate — compares the quick run's machine-independent
ratios against the checked-in snapshot and exits non-zero when any
smoke metric regresses by more than 2x::

    PYTHONPATH=src python benchmarks/bench_merge_runtime.py \
        --quick --out BENCH_merge.json \
        --check benchmarks/BENCH_merge_snapshot.json
"""

from __future__ import annotations

import argparse
import copy
import json
import os
import sys
import time

import numpy as np

from repro import (
    CountMin,
    HyperLogLog,
    KLLQuantiles,
    MergeableQuantiles,
    MisraGries,
)
from repro.core.merge import merge_chain
from repro.core.parallel import ParallelExecutor
from repro.distributed import ContiguousPartitioner, balanced_tree, run_aggregation
from repro.workloads import value_stream, zipf_stream


def _time_best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ---------------------------------------------------------------------------
# section 1: run_aggregation worker sweep
# ---------------------------------------------------------------------------

def bench_parallel_aggregation(n_items: int, repeats: int) -> list:
    data = zipf_stream(n_items, alpha=1.2, universe=20_000, rng=1)
    values = value_stream(n_items, "uniform", rng=2)
    cases = {
        "misra_gries": (data, lambda: MisraGries(256)),
        "mergeable_quantiles": (values, lambda i: MergeableQuantiles(256, rng=i)),
    }
    rows = []
    for name, (stream, factory) in cases.items():
        serial = None
        for workers in (None, 1, 2, 4):
            last = {}

            def once():
                result = run_aggregation(
                    stream,
                    ContiguousPartitioner(),
                    factory,
                    balanced_tree(64),
                    executor=workers,
                )
                last["degraded"] = result.degraded_to_serial
                last["events"] = list(result.degradation_events)

            seconds = _time_best_of(once, repeats)
            if workers is None:
                serial = seconds
            rows.append(
                {
                    "summary": name,
                    "workers": workers,
                    "seconds": seconds,
                    "speedup_vs_legacy": serial / seconds,
                    "degraded_to_serial": last["degraded"],
                    "degradation_events": last["events"],
                }
            )
    return rows


# ---------------------------------------------------------------------------
# section 2: k-way merge_many vs sequential fold
# ---------------------------------------------------------------------------

def _kway_cases(n_items: int):
    items = zipf_stream(n_items, alpha=1.2, universe=20_000, rng=3)
    values = value_stream(n_items, "uniform", rng=4)
    return {
        "count_min": (items, lambda i: CountMin(512, 4, seed=1)),
        "hyperloglog": (items, lambda i: HyperLogLog(p=12, seed=1)),
        "misra_gries": (items, lambda i: MisraGries(256)),
        "kll_quantiles": (values, lambda i: KLLQuantiles(200, rng=100 + i)),
        "mergeable_quantiles": (values, lambda i: MergeableQuantiles(256, rng=100 + i)),
    }


def bench_kway_merge(n_items: int, fanins, repeats: int) -> list:
    rows = []
    for name, (stream, factory) in _kway_cases(n_items).items():
        for fanin in fanins:
            shards = np.array_split(np.asarray(stream), fanin)
            # build once; merges only mutate the destination, so each
            # trial deep-copies just parts[0] (identical overhead on
            # both sides)
            parts = [
                factory(i).extend(shard.tolist()) for i, shard in enumerate(shards)
            ]

            fold_seconds = _time_best_of(
                lambda: merge_chain([copy.deepcopy(parts[0])] + parts[1:]), repeats
            )
            kway_seconds = _time_best_of(
                lambda: copy.deepcopy(parts[0]).merge_many(parts[1:]), repeats
            )
            rows.append(
                {
                    "summary": name,
                    "fanin": int(fanin),
                    "fold_seconds": fold_seconds,
                    "kway_seconds": kway_seconds,
                    "speedup": fold_seconds / kway_seconds,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# section 3: cold vs warm cached-view queries
# ---------------------------------------------------------------------------

def bench_query_cache(n_items: int, n_queries: int, repeats: int) -> list:
    values = value_stream(n_items, "uniform", rng=5)
    qs = np.linspace(0.001, 0.999, n_queries).tolist()
    cases = {
        "mergeable_quantiles": lambda: MergeableQuantiles(256, rng=6).extend(values),
        "kll_quantiles": lambda: KLLQuantiles(200, rng=7).extend(values),
    }
    rows = []
    for name, build in cases.items():
        summary = build()

        def no_cache():
            # pre-cache behavior: every scalar query re-walked and
            # re-sorted the sample state
            for q in qs:
                summary.invalidate_view()
                summary.quantile(q)

        def warm():
            summary.quantiles(qs)

        no_cache_seconds = _time_best_of(no_cache, repeats)
        summary.quantiles(qs)  # materialize the view once
        warm_seconds = _time_best_of(warm, repeats)
        rows.append(
            {
                "summary": name,
                "n_queries": int(n_queries),
                "no_cache_seconds": no_cache_seconds,
                "warm_seconds": warm_seconds,
                "speedup": no_cache_seconds / warm_seconds,
                "view_stats": summary.view_stats,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# section 4: KLL compress scan-cost guard (deterministic)
# ---------------------------------------------------------------------------

def bench_kll_compress(n_items: int) -> dict:
    sketch = KLLQuantiles(64, rng=8)
    sketch.extend(value_stream(n_items, "uniform", rng=9))
    return {
        "n_items": int(n_items),
        "compress_steps": int(sketch._compress_steps),
        "steps_per_item": sketch._compress_steps / n_items,
    }


# ---------------------------------------------------------------------------
# section 5: persistent-runtime wave-dispatch overhead
# ---------------------------------------------------------------------------

def bench_wave_dispatch(n_items: int) -> dict:
    """IPC accounting of one resident-runtime aggregation.

    A 64-leaf CountMin(512, 4) tree: each summary's table alone is
    512*4*8 = 16 KiB, so shipping summaries over the pipes would cost
    ~1 MiB of command traffic for the 63 merges.  The runtime ships
    plan-step ids instead; ``cmd_bytes_per_merge`` (machine-independent,
    snapshot-gated) is the proof.
    """
    data = zipf_stream(n_items, alpha=1.2, universe=20_000, rng=10)
    pool = ParallelExecutor(max_workers=4)
    result = run_aggregation(
        data,
        ContiguousPartitioner(),
        lambda i: CountMin(512, 4, seed=1),
        balanced_tree(64),
        executor=pool,
    )
    stats = result.runtime_stats
    if stats is None:
        return {
            "available": False,
            "degraded_to_serial": result.degraded_to_serial,
            "degradation_events": list(result.degradation_events),
        }
    merges = result.merges
    waves = stats["dispatch_rounds"]  # one round-trip per wave, builds included
    summary_bytes = 512 * 4 * 8
    return {
        "available": True,
        "degraded_to_serial": result.degraded_to_serial,
        "merges": int(merges),
        "dispatch_rounds": int(waves),
        "round_trips_per_wave": 1,  # by construction: scatter + gather once
        "messages_sent": int(stats["messages_sent"]),
        "cmd_bytes": int(stats["cmd_bytes"]),
        "cmd_bytes_per_merge": stats["cmd_bytes"] / merges,
        "naive_pipe_bytes_per_merge": float(summary_bytes),
        "pipe_savings_factor": summary_bytes / (stats["cmd_bytes"] / merges),
        "ack_bytes": int(stats["ack_bytes"]),
        "synced_slots": int(stats["synced_slots"]),
        "sync_shm_bytes": int(stats["sync_shm_bytes"]),
        "exported_bytes": int(stats["exported_bytes"]),
        "worker_crashes": int(stats["worker_crashes"]),
    }


# ---------------------------------------------------------------------------
# section 6: the workers=4 > 2x honesty gate
# ---------------------------------------------------------------------------

#: gate threshold: workers=4 must beat serial by at least this factor
GATE_SPEEDUP = 2.0
#: the gate only makes sense with real cores to spread over
GATE_MIN_CPUS = 4


def bench_parallel_gate(repeats: int) -> dict:
    """Measure workers=4 vs serial on the gate workload.

    The workload is fixed-size (never shrunk by ``--quick``): a 64-leaf
    MisraGries(256) aggregation over 2**17 zipf items — enough build
    and merge work that four real cores must win by >= 2x through the
    persistent runtime.  On boxes with fewer than four CPUs the
    measurement still runs (and is recorded) but the gate is *skipped
    with an explicit marker*, never silently passed.
    """
    cpus = os.cpu_count() or 1
    data = zipf_stream(2**17, alpha=1.2, universe=50_000, rng=12)

    def run(workers):
        return run_aggregation(
            data,
            ContiguousPartitioner(),
            lambda: MisraGries(256),
            balanced_tree(64),
            executor=workers,
        )

    serial_seconds = _time_best_of(lambda: run(1), repeats)
    degraded = {}

    def parallel_run():
        result = run(4)
        degraded["flag"] = result.degraded_to_serial
        degraded["events"] = list(result.degradation_events)

    parallel_seconds = _time_best_of(parallel_run, repeats)
    speedup = serial_seconds / parallel_seconds
    return {
        "cpus": int(cpus),
        "enforced": cpus >= GATE_MIN_CPUS,
        "required_speedup": GATE_SPEEDUP,
        "serial_seconds": serial_seconds,
        "workers4_seconds": parallel_seconds,
        "speedup": speedup,
        "degraded_to_serial": degraded["flag"],
        "degradation_events": degraded["events"],
    }


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def run_report(args) -> dict:
    return {
        "experiment": "E23-merge-runtime",
        "quick": bool(args.quick),
        "n_items": int(args.items),
        "repeats": int(args.repeats),
        "sections": {
            "parallel_aggregation": bench_parallel_aggregation(
                args.items, args.repeats
            ),
            "kway_merge": bench_kway_merge(args.items, args.fanins, args.repeats),
            "query_cache": bench_query_cache(
                args.items, args.queries, args.repeats
            ),
            "kll_compress": bench_kll_compress(args.items),
            "wave_dispatch": bench_wave_dispatch(args.items),
            "parallel_gate": bench_parallel_gate(args.repeats),
        },
    }


#: smoke metrics compared against the snapshot: (getter, higher_is_better)
def _smoke_metrics(report: dict) -> dict:
    sections = report["sections"]
    # individual quick-size k-way timings jitter ~2x on loaded CI boxes;
    # the geometric mean over all (type, fanin) rows is what gets gated
    speedups = [row["speedup"] for row in sections["kway_merge"]]
    metrics = {
        "kway_speedup_gmean": float(np.exp(np.mean(np.log(speedups)))),
    }
    for row in sections["query_cache"]:
        metrics[f"query_cache_speedup:{row['summary']}"] = row["speedup"]
    metrics["kll_steps_per_item"] = sections["kll_compress"]["steps_per_item"]
    dispatch = sections.get("wave_dispatch", {})
    if dispatch.get("available"):
        # lower is better: commands must stay plan-step-id sized
        metrics["cmd_bytes_per_merge"] = dispatch["cmd_bytes_per_merge"]
    return metrics


def check_against_snapshot(report: dict, snapshot_path: str, factor: float = 2.0):
    """Return a list of regression messages (empty = pass).

    Wall-clock seconds are not comparable across machines, so the gate
    uses ratios (speedups) and the deterministic KLL step count: a
    speedup may not fall below snapshot/factor, and steps_per_item may
    not exceed snapshot*factor.
    """
    with open(snapshot_path) as handle:
        snapshot = json.load(handle)
    current = _smoke_metrics(report)
    baseline = _smoke_metrics(snapshot)
    failures = []
    for key, base in baseline.items():
        if key not in current:
            failures.append(f"missing smoke metric {key!r}")
            continue
        now = current[key]
        if key in ("kll_steps_per_item", "cmd_bytes_per_merge"):
            if now > base * factor:
                failures.append(
                    f"{key}: {now:.2f} vs snapshot {base:.2f} "
                    f"(>{factor:.0f}x regression)"
                )
        elif now < base / factor:
            failures.append(
                f"{key}: {now:.2f}x vs snapshot {base:.2f}x "
                f"(fell below 1/{factor:.0f} of snapshot)"
            )
    failures.extend(check_parallel_gate(report))
    return failures


def check_parallel_gate(report: dict):
    """Enforce workers=4 > 2x serial — only where four CPUs exist.

    On smaller boxes the skip is loud (``PARALLEL-GATE SKIPPED``), so a
    CI fleet quietly downgraded to 2-CPU runners cannot make the gate
    evaporate unnoticed.
    """
    gate = report["sections"].get("parallel_gate")
    if gate is None:
        return ["parallel_gate section missing from the report"]
    if not gate["enforced"]:
        print(
            f"PARALLEL-GATE SKIPPED: need >= {GATE_MIN_CPUS} CPUs to "
            f"enforce workers=4 > {gate['required_speedup']:.0f}x, this box "
            f"has {gate['cpus']} (measured {gate['speedup']:.2f}x anyway)",
            file=sys.stderr,
        )
        return []
    failures = []
    if gate["degraded_to_serial"]:
        failures.append(
            "parallel_gate: the workers=4 run degraded to serial: "
            + "; ".join(gate["degradation_events"])
        )
    if gate["speedup"] < gate["required_speedup"]:
        failures.append(
            f"parallel_gate: workers=4 speedup {gate['speedup']:.2f}x "
            f"< required {gate['required_speedup']:.1f}x "
            f"(serial {gate['serial_seconds']*1e3:.0f} ms, "
            f"workers=4 {gate['workers4_seconds']*1e3:.0f} ms)"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="merge-runtime benchmarks (E23)")
    parser.add_argument("--items", type=int, default=2**16)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--queries", type=int, default=512)
    parser.add_argument(
        "--fanins", type=int, nargs="+", default=[4, 16, 64],
        help="merge fan-ins for the k-way section",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small streams, one repeat (CI smoke run)",
    )
    parser.add_argument("--out", default="BENCH_merge.json")
    parser.add_argument(
        "--check", default=None, metavar="SNAPSHOT",
        help="compare smoke ratios against this snapshot JSON; exit 1 on "
             "a >2x regression",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.items, args.repeats, args.queries = 2**13, 1, 128

    report = run_report(args)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)

    for row in report["sections"]["parallel_aggregation"]:
        label = "legacy" if row["workers"] is None else f"{row['workers']}w"
        flag = "  DEGRADED-TO-SERIAL" if row["degraded_to_serial"] else ""
        print(
            f"aggregate {row['summary']:>22} {label:>7}: "
            f"{row['seconds']*1e3:8.1f} ms  ({row['speedup_vs_legacy']:5.2f}x){flag}"
        )
    for row in report["sections"]["kway_merge"]:
        print(
            f"kway {row['summary']:>22} fanin={row['fanin']:<3}: "
            f"fold {row['fold_seconds']*1e3:8.1f} ms  "
            f"kway {row['kway_seconds']*1e3:8.1f} ms  "
            f"({row['speedup']:5.2f}x)"
        )
    for row in report["sections"]["query_cache"]:
        print(
            f"cache {row['summary']:>21}: no-cache {row['no_cache_seconds']*1e3:8.2f} ms  "
            f"warm {row['warm_seconds']*1e3:8.2f} ms  "
            f"({row['speedup']:8.1f}x)"
        )
    kll = report["sections"]["kll_compress"]
    print(
        f"kll_compress: {kll['compress_steps']} level visits / "
        f"{kll['n_items']} items = {kll['steps_per_item']:.4f} per item"
    )
    dispatch = report["sections"]["wave_dispatch"]
    if dispatch["available"]:
        print(
            f"wave_dispatch: {dispatch['dispatch_rounds']} round-trips for "
            f"{dispatch['merges']} merges "
            f"(1 per wave, {dispatch['messages_sent']} messages); "
            f"{dispatch['cmd_bytes_per_merge']:.0f} cmd bytes/merge vs "
            f"{dispatch['naive_pipe_bytes_per_merge']:.0f} if summaries "
            f"rode the pipes ({dispatch['pipe_savings_factor']:.0f}x less); "
            f"{dispatch['sync_shm_bytes']} sync + "
            f"{dispatch['exported_bytes']} exported bytes via shared memory"
        )
    else:
        print(
            "wave_dispatch: runtime unavailable on this box: "
            + "; ".join(dispatch["degradation_events"])
        )
    gate = report["sections"]["parallel_gate"]
    print(
        f"parallel_gate: cpus={gate['cpus']} "
        f"serial {gate['serial_seconds']*1e3:.0f} ms, "
        f"workers=4 {gate['workers4_seconds']*1e3:.0f} ms "
        f"({gate['speedup']:.2f}x; "
        + ("enforced" if gate["enforced"] else "not enforced: <4 CPUs")
        + ")"
    )
    print(f"wrote {args.out}")

    if args.check:
        failures = check_against_snapshot(report, args.check)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"snapshot check against {args.check}: ok")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
