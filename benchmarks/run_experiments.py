"""Run every experiment (E1-E12) and print all paper-style tables.

The timing side of the harness lives in pytest-benchmark
(``pytest benchmarks/ --benchmark-only``); this driver produces the
accuracy/size tables recorded in EXPERIMENTS.md.

Run:  python benchmarks/run_experiments.py           # all experiments
      python benchmarks/run_experiments.py E2 E6     # a subset
"""

from __future__ import annotations

import sys
import time

import bench_ablation_prune
import bench_communication
import bench_concentration
import bench_conservative_update
import bench_delivery_semantics
import bench_distinct_decay
import bench_eps_approximation
import bench_eps_kernel
import bench_heavy_hitters
import bench_hierarchical
import bench_kll_window
import bench_mg_merge_error
import bench_quantile_baselines
import bench_scalability
import bench_quantile_equal_weight
import bench_quantile_hybrid
import bench_quantile_mergeable
import bench_ss_merge_error
import bench_table1_sizes

EXPERIMENTS = {
    "E1": bench_table1_sizes.run_experiment,
    "E2": bench_mg_merge_error.run_experiment,
    "E3": bench_ss_merge_error.run_experiment,
    "E4": bench_heavy_hitters.run_experiment,
    "E5": bench_quantile_equal_weight.run_experiment,
    "E6": bench_quantile_mergeable.run_experiment,
    "E7": bench_quantile_hybrid.run_experiment,
    "E8": bench_quantile_baselines.run_experiment,
    "E9": bench_eps_approximation.run_experiment,
    "E10": bench_eps_kernel.run_experiment,
    "E10b": bench_eps_kernel.run_frame_experiment,
    "E12": bench_ablation_prune.run_experiment,
    "E12b": bench_ablation_prune.run_merge_only_experiment,
    "E13": bench_distinct_decay.run_distinct_experiment,
    "E14": bench_distinct_decay.run_decay_experiment,
    "E15": bench_communication.run_experiment,
    "E16": bench_kll_window.run_kll_experiment,
    "E17": bench_kll_window.run_window_experiment,
    "E18": bench_concentration.run_experiment,
    "E19": bench_delivery_semantics.run_experiment,
    "E20": bench_conservative_update.run_experiment,
    "E21": bench_hierarchical.run_experiment,
    "E22": bench_scalability.run_experiment,
}


def main(argv: list[str]) -> None:
    selected = argv or list(EXPERIMENTS)
    for name in selected:
        runner = EXPERIMENTS.get(name)
        if runner is None:
            print(f"unknown experiment {name!r}; available: {list(EXPERIMENTS)}")
            continue
        start = time.perf_counter()
        print(f"===== {name} " + "=" * 50)
        runner()
        print(f"[{name} done in {time.perf_counter() - start:.1f}s]\n")


if __name__ == "__main__":
    main(sys.argv[1:])
